"""Abstract domains of the dataflow analyses.

The forward analyses run over two tiny finite lattices:

* :class:`BoolInterval` — the possible values of one signal, as an
  interval ``{lo..hi}`` over ``{0, 1}``: the three elements ``{0}``,
  ``{1}``, and ``{0,1}`` ordered by inclusion.  Joins are interval
  hulls, so every transfer function over it is trivially monotone.
* :class:`SumInterval` — the reachable weighted input sums of one gate,
  ``[lo, hi]`` over the integers.  It is not stored per signal (the gate
  recomputes it from its fanin ``BoolInterval`` values), but it is the
  quantity the interval analysis reasons about: a gate whose sum
  interval clears (or never reaches) its threshold is a proven constant.

Both lattices have finite height (2 and ``O(sum |w|)`` respectively,
the latter bounded per gate by its own weights), which together with the
acyclicity of threshold networks gives the fixpoint engine its
termination guarantee (see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BoolInterval:
    """The set of values a Boolean signal may take: ``{lo..hi}``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo <= self.hi <= 1):
            raise ValueError(f"invalid Boolean interval [{self.lo}, {self.hi}]")

    @classmethod
    def constant(cls, value: bool | int) -> "BoolInterval":
        return ONE if value else ZERO

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    @property
    def value(self) -> int | None:
        """The constant value, or None for the unknown element."""
        return self.lo if self.lo == self.hi else None

    def join(self, other: "BoolInterval") -> "BoolInterval":
        """Least upper bound (interval hull)."""
        return BoolInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __le__(self, other: "BoolInterval") -> bool:
        """Lattice order: interval inclusion."""
        return other.lo <= self.lo and self.hi <= other.hi

    def __str__(self) -> str:
        if self.is_constant:
            return str(self.lo)
        return "?"


#: The three lattice elements.
ZERO = BoolInterval(0, 0)
ONE = BoolInterval(1, 1)
UNKNOWN = BoolInterval(0, 1)


@dataclass(frozen=True)
class SumInterval:
    """Reachable weighted-sum bounds ``[lo, hi]`` of one gate."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty sum interval [{self.lo}, {self.hi}]")

    def contains_threshold(self, threshold: int) -> bool:
        """True when ``threshold`` lies in the half-open ``(lo, hi]``.

        A threshold inside this range separates reachable sums below it
        from reachable sums at or above it, so the gate output is not
        decided by the interval alone.
        """
        return self.lo < threshold <= self.hi

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def weighted_sum_interval(
    weights: tuple[int, ...], values: tuple[BoolInterval, ...]
) -> SumInterval:
    """Bounds of ``sum(w_i * x_i)`` with each ``x_i`` in its interval."""
    lo = 0
    hi = 0
    for w, v in zip(weights, values):
        a = w * v.lo
        b = w * v.hi
        if a > b:
            a, b = b, a
        lo += a
        hi += b
    return SumInterval(lo, hi)
