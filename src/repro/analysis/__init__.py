"""Whole-network dataflow analysis over threshold DAGs.

A generic forward/backward fixpoint engine (:mod:`repro.analysis.engine`)
with three concrete analyses:

* weighted-sum intervals (:mod:`repro.analysis.interval`) — proven
  constant gates, stuck outputs, activation bounds;
* observability/controllability don't-cares
  (:mod:`repro.analysis.dontcare`) — exact on the packed substrate for
  small-support networks, interval-abstracted beyond it;
* verified redundancy removal (:mod:`repro.analysis.redundancy`) — every
  candidate re-checked by packed equivalence before it is reported.

:func:`analyze_threshold_network` runs all three and rolls the margin
accounting into a :class:`RobustnessCertificate`.
"""

from repro.analysis.certificate import (
    GateCertificate,
    RobustnessCertificate,
    build_certificate,
)
from repro.analysis.domains import BoolInterval, SumInterval
from repro.analysis.dontcare import DontCareResult, dontcare_analysis
from repro.analysis.engine import (
    FixpointResult,
    FixpointStats,
    backward_fixpoint,
    forward_fixpoint,
)
from repro.analysis.interval import IntervalResult, interval_analysis
from repro.analysis.redundancy import (
    RemovalFinding,
    apply_removals,
    find_candidates,
    rebuild_with,
    threshold_to_boolean,
    verify_removals,
)
from repro.analysis.report import (
    AnalysisOptions,
    AnalysisResult,
    analyze_threshold_network,
    format_analysis_report,
)

__all__ = [
    "AnalysisOptions",
    "AnalysisResult",
    "BoolInterval",
    "DontCareResult",
    "FixpointResult",
    "FixpointStats",
    "GateCertificate",
    "IntervalResult",
    "RemovalFinding",
    "RobustnessCertificate",
    "SumInterval",
    "analyze_threshold_network",
    "apply_removals",
    "backward_fixpoint",
    "build_certificate",
    "dontcare_analysis",
    "find_candidates",
    "format_analysis_report",
    "forward_fixpoint",
    "interval_analysis",
    "rebuild_with",
    "threshold_to_boolean",
    "verify_removals",
]
