"""Redundant-fanin and redundant-gate detection with verified removal.

Candidates come from three sources, in decreasing strength:

* **constant gates** — interval-proven constants (fanin > 0; zero-fanin
  constants are deliberate synthesis artifacts, not redundancy);
* **unobservable gates** — connected but provably invisible at every
  primary output (exact don't-care mode only);
* **redundant fanins** — connection ``i`` of gate ``g`` such that
  dropping weight ``w_i`` (threshold unchanged) leaves the gate's truth
  table unchanged on every reachable-and-observable local minterm:
  ``table[m] == table[m & ~bit_i]`` for all care minterms ``m``.

Candidate generation is a *filter*, not a proof: every candidate is
re-verified by a packed equivalence check of the rewritten network
against the original before it is reported (``verify_removals``) or
applied (``apply_removals``).  Applied findings are accumulated greedily
and the cumulative rewrite is re-verified against the original after
each acceptance, so the final network is equivalence-checked end to end
— zero false positives by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.analysis.dontcare import DontCareResult
from repro.analysis.interval import IntervalResult
from repro.boolean.bitset import MAX_TABLE_VARS
from repro.core.threshold import (
    MultiThresholdVector,
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.network.network import BooleanNetwork
from repro.network.simulate import equivalent_threshold_networks

#: Zero-fanin constant vectors: ``<;0>`` fires on the empty sum
#: (``0 >= 0``), ``<;1>`` never does.
CONST_ONE = WeightThresholdVector((), 0)
CONST_ZERO = WeightThresholdVector((), 1)


@dataclass(frozen=True)
class RemovalFinding:
    """One removal candidate, possibly verified."""

    kind: str  # "constant-gate" | "unobservable-gate" | "redundant-fanin"
    gate: str
    fanin: str | None = None
    value: int | None = None
    verified: bool = False

    @property
    def message(self) -> str:
        if self.kind == "constant-gate":
            return (
                f"gate {self.gate!r} is provably constant {self.value}; "
                "its logic cone is removable"
            )
        if self.kind == "unobservable-gate":
            return (
                f"gate {self.gate!r} is unobservable at every primary "
                "output; it is removable"
            )
        return (
            f"fanin {self.fanin!r} of gate {self.gate!r} is redundant; "
            "its connection is removable"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "gate": self.gate,
            "fanin": self.fanin,
            "value": self.value,
            "verified": self.verified,
        }


def _drop_fanin(gate: ThresholdGate, fanin: str) -> ThresholdGate:
    """The gate with one input connection removed, threshold unchanged."""
    idx = gate.inputs.index(fanin)
    weights = gate.vector.weights[:idx] + gate.vector.weights[idx + 1 :]
    vector: WeightThresholdVector | MultiThresholdVector
    if isinstance(gate.vector, MultiThresholdVector):
        vector = MultiThresholdVector(weights, gate.vector.thresholds)
    else:
        vector = WeightThresholdVector(weights, gate.vector.threshold)
    return dc_replace(
        gate,
        inputs=gate.inputs[:idx] + gate.inputs[idx + 1 :],
        vector=vector,
    )


def _constant_gate(gate: ThresholdGate, value: int) -> ThresholdGate:
    return dc_replace(
        gate,
        inputs=(),
        vector=CONST_ONE if value else CONST_ZERO,
    )


def _replacement(
    network: ThresholdNetwork,
    current: dict[str, ThresholdGate],
    finding: RemovalFinding,
) -> ThresholdGate | None:
    """The replacement gate a finding implies, or None if inapplicable."""
    gate = current.get(finding.gate) or network.gate(finding.gate)
    if finding.kind == "constant-gate":
        return _constant_gate(gate, finding.value or 0)
    if finding.kind == "unobservable-gate":
        return _constant_gate(gate, 0)
    if finding.fanin not in gate.inputs:
        return None  # already dropped or gate already replaced wholesale
    return _drop_fanin(gate, finding.fanin)


def rebuild_with(
    network: ThresholdNetwork,
    replacements: dict[str, ThresholdGate],
    cleanup: bool = True,
) -> ThresholdNetwork:
    """A copy of ``network`` with some gates swapped out."""
    out = ThresholdNetwork(network.name)
    for pi in network.inputs:
        out.add_input(pi)
    for name in network.topological_order():
        out.add_gate(replacements.get(name, network.gate(name)))
    for po in network.outputs:
        out.add_output(po)
    out.gate_lines = dict(network.gate_lines)
    if cleanup:
        out.cleanup()
    return out


def find_candidates(
    network: ThresholdNetwork,
    interval: IntervalResult,
    dontcare: DontCareResult,
    max_table_vars: int = MAX_TABLE_VARS,
) -> list[RemovalFinding]:
    """Unverified removal candidates, strongest kind first per gate."""
    findings: list[RemovalFinding] = []
    claimed: set[str] = set()
    for name, value in sorted(interval.constant_gates.items()):
        if network.gate(name).fanin == 0:
            continue
        findings.append(
            RemovalFinding(kind="constant-gate", gate=name, value=value)
        )
        claimed.add(name)
    for name in dontcare.unobservable_gates:
        if name in claimed:
            continue
        findings.append(RemovalFinding(kind="unobservable-gate", gate=name))
        claimed.add(name)
    for name in network.topological_order():
        if name in claimed:
            continue
        gate = network.gate(name)
        if not 0 < gate.fanin <= max_table_vars:
            continue
        table = gate.vector.table().to_int()
        points = 1 << gate.fanin
        care = dontcare.care_observable.get(name, (1 << points) - 1)
        for i, fanin in enumerate(gate.inputs):
            bit = 1 << i
            if all(
                not (care >> m) & 1
                or (table >> m) & 1 == (table >> (m & ~bit)) & 1
                for m in range(points)
                if m & bit
            ):
                findings.append(
                    RemovalFinding(
                        kind="redundant-fanin", gate=name, fanin=fanin
                    )
                )
    return findings


def verify_removals(
    network: ThresholdNetwork,
    candidates: list[RemovalFinding],
    vectors: int = 4096,
    seed: int = 0,
) -> list[RemovalFinding]:
    """Each candidate equivalence-checked *individually* against the source.

    Returns the same findings with ``verified`` set; unverifiable
    candidates are kept (marked unverified) so callers can see — and CI
    can fail on — filter/check disagreements.
    """
    out: list[RemovalFinding] = []
    for finding in candidates:
        replacement = _replacement(network, {}, finding)
        if replacement is None:
            out.append(finding)
            continue
        rewritten = rebuild_with(network, {finding.gate: replacement})
        ok = equivalent_threshold_networks(
            network, rewritten, vectors=vectors, seed=seed
        )
        out.append(dc_replace(finding, verified=ok))
    return out


def apply_removals(
    network: ThresholdNetwork,
    findings: list[RemovalFinding],
    vectors: int = 4096,
    seed: int = 0,
) -> tuple[ThresholdNetwork, list[RemovalFinding]]:
    """Greedily apply findings, re-verifying the cumulative rewrite.

    After each tentative acceptance the *whole* rewritten network is
    equivalence-checked against the original; a failure reverts that
    finding.  Returns the final network (the original object if nothing
    applied) and the list of findings actually applied.
    """
    accepted: dict[str, ThresholdGate] = {}
    applied: list[RemovalFinding] = []
    for finding in findings:
        replacement = _replacement(network, accepted, finding)
        if replacement is None:
            continue
        trial = dict(accepted)
        trial[finding.gate] = replacement
        rewritten = rebuild_with(network, trial)
        if equivalent_threshold_networks(
            network, rewritten, vectors=vectors, seed=seed
        ):
            accepted = trial
            applied.append(dc_replace(finding, verified=True))
    if not accepted:
        return network, []
    return rebuild_with(network, accepted), applied


def threshold_to_boolean(network: ThresholdNetwork) -> BooleanNetwork:
    """A Boolean-network mirror of a threshold network (golden reference).

    Every gate becomes an SOP node carrying the gate's own truth table,
    so the mirror is equivalent by construction — the packed golden
    compare ``tels analyze --apply`` runs against it checks the rewritten
    threshold network, not the conversion.
    """
    out = BooleanNetwork(network.name)
    for pi in network.inputs:
        out.add_input(pi)
    for name in network.topological_order():
        out.add_node(name, network.gate(name).local_function())
    for po in network.outputs:
        out.add_output(po)
    return out
