"""Robustness certificates: machine-checked margin accounting per network.

Every synthesized gate records the defect tolerances it was solved with
(Eq. 1); gate models may demand more (the flash backend's drift floor
``ceil(drift * max|w|)``).  The certificate recomputes every gate's
worst-case ON/OFF margins through its gate model, compares them against
the required floors, and derives two network-wide facts:

* **slack** — ``min(margin - required)`` over all gates and both sides;
  non-negative slack proves every gate honors its recorded (and
  device-implied) tolerances.
* **perturbation bound** — the largest ``eps`` such that *any* additive
  per-weight perturbation with ``max |eps_i| < bound`` provably leaves
  every network output unchanged.  A gate's weighted sum moves by at
  most ``fanin * eps``, so ``bound = min over gates of
  min(on_margin, off_margin) / fanin`` (Section VI-C's noise model, made
  a theorem instead of an experiment).

Gates too wide to enumerate (``fanin > max_enumeration_fanin``) are
listed as skipped rather than silently trusted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.threshold import ThresholdNetwork


@dataclass(frozen=True)
class GateCertificate:
    """Margin accounting for one gate."""

    gate: str
    fanin: int
    on_margin: int | None
    off_margin: int | None
    required_on: int
    required_off: int

    @property
    def slack(self) -> int | None:
        """Tightest margin minus its requirement; None when one-sided."""
        slacks = []
        if self.on_margin is not None:
            slacks.append(self.on_margin - self.required_on)
        if self.off_margin is not None:
            slacks.append(self.off_margin - self.required_off)
        return min(slacks) if slacks else None

    @property
    def perturbation_bound(self) -> float:
        """Largest provably tolerated per-weight noise for this gate."""
        if self.fanin == 0:
            return math.inf  # no weights to perturb
        margins = [
            m for m in (self.on_margin, self.off_margin) if m is not None
        ]
        if not margins:
            return math.inf  # constant gate: nothing can flip it
        return min(margins) / self.fanin

    def to_dict(self) -> dict:
        return {
            "gate": self.gate,
            "fanin": self.fanin,
            "on_margin": self.on_margin,
            "off_margin": self.off_margin,
            "required_on": self.required_on,
            "required_off": self.required_off,
            "slack": self.slack,
        }


@dataclass(frozen=True)
class RobustnessCertificate:
    """Network-wide margin facts, derived gate by gate."""

    network: str
    gate_model: str
    gates: tuple[GateCertificate, ...]
    #: Gates too wide to enumerate — explicitly not covered.
    skipped: tuple[str, ...]
    constant_gates: tuple[str, ...]
    stuck_outputs: tuple[tuple[str, int], ...]

    @property
    def min_slack(self) -> int | None:
        slacks = [g.slack for g in self.gates if g.slack is not None]
        return min(slacks) if slacks else None

    @property
    def weakest_gate(self) -> str | None:
        worst: GateCertificate | None = None
        for cert in self.gates:
            if cert.slack is None:
                continue
            if worst is None or cert.slack < (worst.slack or 0):
                worst = cert
        return worst.gate if worst else None

    @property
    def meets_tolerances(self) -> bool:
        """Every covered gate honors its recorded + model-required floors."""
        return all(
            g.slack is None or g.slack >= 0 for g in self.gates
        )

    @property
    def perturbation_bound(self) -> float:
        """Network-level provable per-weight noise tolerance."""
        bounds = [g.perturbation_bound for g in self.gates]
        return min(bounds) if bounds else math.inf

    @property
    def complete(self) -> bool:
        """True when no gate had to be skipped."""
        return not self.skipped

    def to_dict(self) -> dict:
        bound = self.perturbation_bound
        return {
            "network": self.network,
            "gate_model": self.gate_model,
            "gates": len(self.gates),
            "skipped": list(self.skipped),
            "min_slack": self.min_slack,
            "weakest_gate": self.weakest_gate,
            "meets_tolerances": self.meets_tolerances,
            "perturbation_bound": (
                None if math.isinf(bound) else round(bound, 6)
            ),
            "constant_gates": list(self.constant_gates),
            "stuck_outputs": [
                {"output": name, "value": value}
                for name, value in self.stuck_outputs
            ],
        }


def build_certificate(
    network: ThresholdNetwork,
    gate_model: str = "ltg",
    constant_gates: dict[str, int] | None = None,
    stuck_outputs: dict[str, int] | None = None,
    max_enumeration_fanin: int = 16,
) -> RobustnessCertificate:
    """Recompute every gate's margins and roll them up network-wide."""
    from repro.gates import get_model

    model = get_model(gate_model)
    drift_floor = getattr(model, "required_margin", None)
    certs: list[GateCertificate] = []
    skipped: list[str] = []
    for gate in network.gates():
        if gate.fanin > max_enumeration_fanin:
            skipped.append(gate.name)
            continue
        on_margin, off_margin = model.gate_margins(gate)
        required_on = gate.delta_on
        required_off = gate.delta_off
        if drift_floor is not None:
            floor = drift_floor(gate.vector.weights)
            required_on = max(required_on, floor)
            required_off = max(required_off, floor)
        certs.append(
            GateCertificate(
                gate=gate.name,
                fanin=gate.fanin,
                on_margin=on_margin,
                off_margin=off_margin,
                required_on=required_on,
                required_off=required_off,
            )
        )
    return RobustnessCertificate(
        network=network.name,
        gate_model=gate_model,
        gates=tuple(certs),
        skipped=tuple(skipped),
        constant_gates=tuple(sorted(constant_gates or ())),
        stuck_outputs=tuple(sorted((stuck_outputs or {}).items())),
    )
