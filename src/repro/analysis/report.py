"""The analysis driver: run all three passes and package the results.

:func:`analyze_threshold_network` is the one entry point the CLI, lint
bridge, synthesis engine, serve daemon, and benchmark harness all share:
interval analysis → don't-care analysis → redundancy candidates →
per-candidate packed verification → robustness certificate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.certificate import RobustnessCertificate, build_certificate
from repro.analysis.dontcare import DontCareResult, dontcare_analysis
from repro.analysis.interval import IntervalResult, interval_analysis
from repro.analysis.redundancy import (
    RemovalFinding,
    find_candidates,
    verify_removals,
)
from repro.boolean.bitset import MAX_TABLE_VARS
from repro.core.threshold import ThresholdNetwork


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of one analysis run."""

    gate_model: str = "ltg"
    #: Exhaustive-simulation ceiling (#PI) for the exact don't-care pass.
    max_table_vars: int = MAX_TABLE_VARS
    #: Enumeration ceiling (fanin) for per-gate margin certificates.
    max_enumeration_fanin: int = 16
    #: Random vectors for equivalence checks past the exhaustive limit.
    vectors: int = 4096
    seed: int = 0
    #: Equivalence-check every removal candidate before reporting it.
    verify: bool = True


@dataclass
class AnalysisResult:
    """Everything one analysis run proved about one network."""

    network: str
    gate_model: str
    interval: IntervalResult
    dontcare: DontCareResult
    certificate: RobustnessCertificate
    findings: list[RemovalFinding] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def verified_findings(self) -> list[RemovalFinding]:
        return [f for f in self.findings if f.verified]

    @property
    def unverified_findings(self) -> list[RemovalFinding]:
        return [f for f in self.findings if not f.verified]

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "gate_model": self.gate_model,
            "certificate": self.certificate.to_dict(),
            "findings": [f.to_dict() for f in self.findings],
            "verified_findings": len(self.verified_findings),
            "unverified_findings": len(self.unverified_findings),
            "dontcare_exact": self.dontcare.exact,
            "fixpoint": {
                "signals": self.interval.stats.signals,
                "visits": self.interval.stats.visits,
                "updates": self.interval.stats.updates,
            },
            "wall_s": round(self.wall_s, 6),
        }


def analyze_threshold_network(
    network: ThresholdNetwork,
    options: AnalysisOptions | None = None,
) -> AnalysisResult:
    """Run interval, don't-care, and redundancy analysis over ``network``."""
    opts = options or AnalysisOptions()
    start = time.perf_counter()
    ivl = interval_analysis(network)
    dc = dontcare_analysis(
        network, max_table_vars=opts.max_table_vars, interval=ivl
    )
    candidates = find_candidates(
        network, ivl, dc, max_table_vars=opts.max_table_vars
    )
    if opts.verify:
        candidates = verify_removals(
            network, candidates, vectors=opts.vectors, seed=opts.seed
        )
    cert = build_certificate(
        network,
        gate_model=opts.gate_model,
        constant_gates=ivl.constant_gates,
        stuck_outputs=ivl.stuck_outputs,
        max_enumeration_fanin=opts.max_enumeration_fanin,
    )
    return AnalysisResult(
        network=network.name,
        gate_model=opts.gate_model,
        interval=ivl,
        dontcare=dc,
        certificate=cert,
        findings=candidates,
        wall_s=time.perf_counter() - start,
    )


def format_analysis_report(result: AnalysisResult) -> str:
    """Human-readable analysis summary (the ``tels analyze`` text body)."""
    cert = result.certificate
    lines = [
        f"analysis of {result.network} (gate model {result.gate_model})",
        f"  fixpoint: {result.interval.stats.signals} signals, "
        f"{result.interval.stats.visits} visits, "
        f"{result.interval.stats.updates} updates",
        f"  don't-cares: {'exact' if result.dontcare.exact else 'interval-abstracted'}"
        + (
            f" over {result.dontcare.width} vectors"
            if result.dontcare.exact
            else ""
        ),
    ]
    slack = cert.min_slack
    lines.append(
        "  certificate: "
        + (
            f"min slack {slack} (weakest gate {cert.weakest_gate}), "
            if slack is not None
            else "no enumerable gates, "
        )
        + (
            "meets tolerances"
            if cert.meets_tolerances
            else "VIOLATES tolerances"
        )
        + ("" if cert.complete else f", {len(cert.skipped)} gate(s) skipped")
    )
    bound = cert.perturbation_bound
    if bound != float("inf"):
        lines.append(f"  perturbation bound: {bound:.4f} per weight")
    for out, value in cert.stuck_outputs:
        lines.append(f"  stuck output: {out} = {value}")
    if result.findings:
        lines.append(
            f"  removal candidates: {len(result.findings)} "
            f"({len(result.verified_findings)} verified)"
        )
        for f in result.findings:
            status = "verified" if f.verified else "UNVERIFIED"
            lines.append(f"    [{status}] {f.message}")
    else:
        lines.append("  removal candidates: none")
    return "\n".join(lines)
