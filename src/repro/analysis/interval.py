"""Weighted-sum interval analysis over threshold networks.

The forward pass abstracts every signal to a :class:`BoolInterval` and
every gate to the interval of weighted input sums those values allow.  A
gate whose sum interval contains no crossable threshold is a **proven
constant** — the single-threshold case reduces to ``lo >= T`` (constant
1) or ``hi < T`` (constant 0); a multi-threshold gate is constant when
no ``T_j`` lies in ``(lo, hi]``, its value the crossing parity at
``lo``.  Constants propagate: a proven-constant gate feeds ``{0}`` or
``{1}`` into its readers, which may in turn collapse *their* sum
intervals, all within the one fixpoint.

Primary outputs driven by a constant signal are **stuck outputs** —
either a deliberate constant cone or a symptom worth surfacing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.analysis.domains import (
    UNKNOWN,
    BoolInterval,
    SumInterval,
    weighted_sum_interval,
)
from repro.analysis.engine import FixpointStats, forward_fixpoint
from repro.core.threshold import (
    MultiThresholdVector,
    ThresholdGate,
    ThresholdNetwork,
)


def gate_transfer(
    gate: ThresholdGate, fanins: tuple[BoolInterval, ...]
) -> BoolInterval:
    """The interval-abstract output of one gate."""
    sums = weighted_sum_interval(gate.vector.weights, fanins)
    return _fires_interval(gate, sums)


def _fires_interval(gate: ThresholdGate, sums: SumInterval) -> BoolInterval:
    vector = gate.vector
    if isinstance(vector, MultiThresholdVector):
        if any(sums.contains_threshold(t) for t in vector.thresholds):
            return UNKNOWN
        crossed = sum(1 for t in vector.thresholds if sums.lo >= t)
        return BoolInterval.constant(crossed % 2 == 1)
    if sums.contains_threshold(vector.threshold):
        return UNKNOWN
    return BoolInterval.constant(sums.lo >= vector.threshold)


@dataclass
class IntervalResult:
    """Converged interval facts for one network."""

    #: Abstract value of every signal (inputs and gates).
    values: dict[str, BoolInterval] = field(default_factory=dict)
    #: Reachable weighted-sum bounds per gate.
    sums: dict[str, SumInterval] = field(default_factory=dict)
    #: Gates proven constant, with their value.
    constant_gates: dict[str, int] = field(default_factory=dict)
    #: Primary outputs proven constant, with their value.
    stuck_outputs: dict[str, int] = field(default_factory=dict)
    stats: FixpointStats = field(default_factory=FixpointStats)


def interval_analysis(
    network: ThresholdNetwork,
    input_values: Mapping[str, BoolInterval] | None = None,
) -> IntervalResult:
    """Run the forward interval fixpoint over ``network``.

    ``input_values`` optionally pins primary inputs to constants (an
    environment constraint); unnamed inputs default to unknown.
    """
    pins = dict(input_values or {})
    seeds = {pi: pins.get(pi, UNKNOWN) for pi in network.inputs}
    fixed = forward_fixpoint(
        network, gate_transfer, seeds, BoolInterval.join
    )
    result = IntervalResult(values=fixed.values, stats=fixed.stats)
    for name in network.topological_order():
        gate = network.gate(name)
        fanins = tuple(fixed.values[f] for f in gate.inputs)
        result.sums[name] = weighted_sum_interval(
            gate.vector.weights, fanins
        )
        value = fixed.values[name].value
        if value is not None:
            result.constant_gates[name] = value
    for out in network.outputs:
        value = fixed.values.get(out, UNKNOWN).value
        if value is not None:
            result.stuck_outputs[out] = value
    return result
