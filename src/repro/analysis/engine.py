"""A generic forward/backward worklist fixpoint engine over threshold DAGs.

The concrete analyses (intervals, observability) are transfer functions;
this module owns the iteration strategy: seed every gate in topological
order (forward) or reverse topological order (backward), then re-enqueue
the affected neighbours whenever a signal's abstract value changes, until
the worklist drains.

Termination: a :class:`~repro.core.threshold.ThresholdNetwork` is acyclic
(``topological_order`` raises on a cycle), every domain we run has finite
height, and every transfer function is monotone — each signal's value can
therefore change at most ``height`` times, so the worklist empties after
``O(edges * height)`` visits.  On a DAG the seeding order already visits
definitions before (forward) or after (backward) their uses, so in
practice each pass converges in a single sweep; the worklist machinery is
kept so the engine stays correct for any monotone transfer function,
whatever order it is seeded in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping
from typing import Generic, TypeVar

from repro.core.threshold import ThresholdGate, ThresholdNetwork

V = TypeVar("V")

#: A forward transfer: gate plus its fanin values -> the gate's value.
ForwardTransfer = Callable[[ThresholdGate, "tuple[V, ...]"], V]

#: A backward transfer: (reader gate, reader's value, fanin name) -> the
#: contribution the reader demands from that fanin.
BackwardTransfer = Callable[[ThresholdGate, V, str], V]


@dataclass
class FixpointStats:
    """How much work one fixpoint run did (for traces and benchmarks)."""

    signals: int = 0
    visits: int = 0
    updates: int = 0


@dataclass
class FixpointResult(Generic[V]):
    """Converged per-signal values plus the iteration accounting."""

    values: dict[str, V]
    stats: FixpointStats = field(default_factory=FixpointStats)


def forward_fixpoint(
    network: ThresholdNetwork,
    transfer: ForwardTransfer,
    input_values: Mapping[str, V],
    join: Callable[[V, V], V],
) -> FixpointResult:
    """Propagate abstract values from primary inputs toward the outputs.

    ``input_values`` must cover every primary input; gate values start at
    the first ``transfer`` result and are joined upward on revisits, so
    the run computes a (post-)fixpoint for any monotone ``transfer``.
    """
    order = network.topological_order()
    readers: dict[str, list[str]] = {}
    for name in order:
        for fanin in network.gate(name).inputs:
            readers.setdefault(fanin, []).append(name)

    values: dict[str, V] = {
        pi: input_values[pi] for pi in network.inputs
    }
    stats = FixpointStats(signals=len(order) + len(network.inputs))
    pending = deque(order)
    queued = set(order)
    while pending:
        name = pending.popleft()
        queued.discard(name)
        gate = network.gate(name)
        stats.visits += 1
        fanins = tuple(values[f] for f in gate.inputs)
        new = transfer(gate, fanins)
        old = values.get(name)
        if old is not None:
            new = join(old, new)
        if new != old:
            values[name] = new
            stats.updates += 1
            for reader in readers.get(name, ()):
                if reader not in queued:
                    queued.add(reader)
                    pending.append(reader)
    return FixpointResult(values=values, stats=stats)


def backward_fixpoint(
    network: ThresholdNetwork,
    transfer: BackwardTransfer,
    output_value: V,
    bottom: V,
    join: Callable[[V, V], V],
) -> FixpointResult:
    """Propagate demands from the primary outputs toward the inputs.

    Every primary output starts at ``output_value``; every other signal
    at ``bottom``.  A signal's value is the join over its readers of
    what each reader's transfer demands from it, plus ``output_value``
    if the signal is itself a primary output.
    """
    order = network.topological_order()
    outputs = set(network.outputs)
    values: dict[str, V] = {}
    for name in order:
        values[name] = output_value if name in outputs else bottom
    for pi in network.inputs:
        values[pi] = output_value if pi in outputs else bottom

    stats = FixpointStats(signals=len(values))
    pending = deque(reversed(order))
    queued = set(order)
    while pending:
        name = pending.popleft()
        queued.discard(name)
        gate = network.gate(name)
        stats.visits += 1
        demand = values[name]
        for fanin in gate.inputs:
            contribution = transfer(gate, demand, fanin)
            new = join(values[fanin], contribution)
            if new != values[fanin]:
                values[fanin] = new
                stats.updates += 1
                if network.has_gate(fanin) and fanin not in queued:
                    queued.add(fanin)
                    pending.append(fanin)
    return FixpointResult(values=values, stats=stats)
