"""Observability / controllability don't-care analysis.

Two complementary questions about every gate:

* **observability** — on which input vectors does the rest of the network
  actually *notice* the gate's value?  Computed exactly by fault
  injection on the packed substrate: simulate once, then per gate flip
  its signal (``forced=``) and resimulate its transitive fanout cone; the
  OR over primary outputs of ``base XOR flipped`` is the gate's
  observability mask.  A gate whose mask is all-zero is dead weight even
  though it is structurally connected.
* **controllability** — which of a gate's ``2^fanin`` local input
  combinations are *reachable*?  Read directly off the exhaustive base
  simulation: every simulation vector contributes the minterm formed by
  its fanin bits.  Unreachable minterms are satisfiability don't-cares
  the redundancy analysis may exploit.

Both are exact only while the network is exhaustively simulable
(``#PI <= max_table_vars``, default :data:`~repro.boolean.bitset.MAX_TABLE_VARS`).
Beyond that the analysis degrades soundly: observability masks are
dropped (unknown, not "unobservable"), and controllability falls back to
the interval abstraction — only minterms consistent with interval-proven
constant fanins are kept.  ``exact`` records which regime produced the
result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.interval import IntervalResult
from repro.boolean.bitset import MAX_TABLE_VARS, BitVec
from repro.boolean.function import BooleanFunction
from repro.core.threshold import ThresholdNetwork
from repro.network.simulate import (
    eval_function_vectors,
    exhaustive_threshold_pi_vectors,
    simulate_threshold_vectors,
)


@dataclass
class DontCareResult:
    """Converged don't-care facts for one network."""

    #: True when computed by exhaustive packed simulation.
    exact: bool = False
    #: Simulation width backing the masks (0 in abstract mode).
    width: int = 0
    #: Per-gate observability mask over the simulation vectors.
    observable: dict[str, BitVec] = field(default_factory=dict)
    #: Gates proven unobservable on *every* input vector.
    unobservable_gates: tuple[str, ...] = ()
    #: Per-gate reachable local-minterm mask (bit ``m`` of the int is
    #: minterm ``m`` over the gate's fanins).
    care: dict[str, int] = field(default_factory=dict)
    #: Reachable minterms restricted to vectors where the gate is
    #: observable (exact mode only; equals ``care`` otherwise).
    care_observable: dict[str, int] = field(default_factory=dict)
    #: Fault-injection resimulations performed.
    resimulations: int = 0


def _fanout_cones(network: ThresholdNetwork) -> dict[str, set[str]]:
    """Transitive fanout (gate names only, self excluded) per signal."""
    readers: dict[str, list[str]] = {}
    order = network.topological_order()
    for name in order:
        for fanin in network.gate(name).inputs:
            readers.setdefault(fanin, []).append(name)
    cones: dict[str, set[str]] = {}
    for name in reversed(order):
        cone: set[str] = set()
        for reader in readers.get(name, ()):
            cone.add(reader)
            cone.update(cones[reader])
        cones[name] = cone
    return cones


def _minterm_indices(
    gate_inputs: tuple[str, ...], vecs: dict[str, BitVec]
) -> np.ndarray:
    """Per-vector local minterm index of one gate's fanin bits."""
    total = np.zeros(0, dtype=np.uint32)
    for i, fanin in enumerate(gate_inputs):
        bits = np.asarray(vecs[fanin].to_bool_array(), dtype=np.uint32)
        if total.shape != bits.shape:
            total = np.zeros_like(bits)
        total |= bits << np.uint32(i)
    return total


def _mask_of(minterms: np.ndarray) -> int:
    mask = 0
    for m in np.unique(minterms):
        mask |= 1 << int(m)
    return mask


def _abstract_care(
    network: ThresholdNetwork, interval: IntervalResult | None
) -> dict[str, int]:
    """Controllability under the interval abstraction only.

    Keeps every minterm consistent with interval-proven constant fanins;
    with no interval facts this is the full cube (sound: a superset of
    the truly reachable minterms is always a valid care set).
    """
    values = interval.values if interval is not None else {}
    care: dict[str, int] = {}
    for gate in network.gates():
        full = (1 << (1 << gate.fanin)) - 1
        mask = 0
        pinned = [
            (i, v.value)
            for i, f in enumerate(gate.inputs)
            if (v := values.get(f)) is not None and v.value is not None
        ]
        if not pinned:
            care[gate.name] = full
            continue
        for m in range(1 << gate.fanin):
            if all((m >> i) & 1 == v for i, v in pinned):
                mask |= 1 << m
        care[gate.name] = mask
    return care


def dontcare_analysis(
    network: ThresholdNetwork,
    max_table_vars: int = MAX_TABLE_VARS,
    interval: IntervalResult | None = None,
) -> DontCareResult:
    """Run the observability/controllability analysis over ``network``."""
    n = len(network.inputs)
    if n == 0 or n > max_table_vars:
        care = _abstract_care(network, interval)
        return DontCareResult(
            exact=False, care=care, care_observable=dict(care)
        )

    vecs, width = exhaustive_threshold_pi_vectors(network)
    base = simulate_threshold_vectors(network, vecs, width)
    order = network.topological_order()
    cones = _fanout_cones(network)
    local: dict[str, BooleanFunction] = {
        name: network.gate(name).local_function() for name in order
    }
    outputs = tuple(network.outputs)

    result = DontCareResult(exact=True, width=width)
    unobservable: list[str] = []
    for name in order:
        gate = network.gate(name)
        # Fault-inject: flip this gate on every vector, resimulate only
        # its fanout cone, and see which vectors reach an output.
        cone = cones[name]
        sim: dict[str, BitVec] = dict(base)
        sim[name] = base[name].invert()
        for member in order:
            if member not in cone:
                continue
            member_gate = network.gate(member)
            if member_gate.fanin == 0:
                continue
            sim[member] = eval_function_vectors(
                local[member], sim, width
            )
        result.resimulations += 1
        observable = BitVec.zeros(width)
        for out in outputs:
            observable = observable | (sim[out] ^ base[out])
        result.observable[name] = observable
        if observable.is_zero():
            unobservable.append(name)

        if gate.fanin:
            minterms = _minterm_indices(gate.inputs, base)
            result.care[name] = _mask_of(minterms)
            obs_arr = np.asarray(observable.to_bool_array(), dtype=bool)
            seen = minterms[obs_arr]
            result.care_observable[name] = (
                _mask_of(seen) if seen.size else 0
            )
        else:
            result.care[name] = 1
            result.care_observable[name] = (
                0 if observable.is_zero() else 1
            )
    result.unobservable_gates = tuple(unobservable)
    return result
