"""The multi-level Boolean network data structure.

A network is a DAG whose internal nodes each carry a
:class:`~repro.boolean.function.BooleanFunction` expressed over the names of
their fanins.  Primary inputs are names without functions; primary outputs
are names of inputs or nodes.  The structure is mutable — synthesis
transforms edit it in place — with :meth:`BooleanNetwork.check` providing a
full consistency audit used liberally by the test suite.
"""

from __future__ import annotations


from collections.abc import Iterable, Iterator, Mapping

from repro.boolean.function import BooleanFunction
from repro.errors import NetworkError


class BooleanNetwork:
    """A combinational multi-level logic network."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._nodes: dict[str, BooleanFunction] = {}
        self._name_counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input."""
        if name in self._nodes:
            raise NetworkError(f"{name!r} already exists as a node")
        if name in self._inputs:
            raise NetworkError(f"duplicate primary input {name!r}")
        self._inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        """Declare a primary output (must name an existing or future signal)."""
        if name in self._outputs:
            raise NetworkError(f"duplicate primary output {name!r}")
        self._outputs.append(name)
        return name

    def add_node(self, name: str, function: BooleanFunction) -> str:
        """Add an internal node computing ``function`` of its fanin names."""
        if name in self._inputs:
            raise NetworkError(f"{name!r} already exists as a primary input")
        if name in self._nodes:
            raise NetworkError(f"duplicate node {name!r}")
        if name in function.variables:
            raise NetworkError(f"node {name!r} cannot be its own fanin")
        self._nodes[name] = function
        return name

    def fresh_name(self, prefix: str = "n") -> str:
        """A node name not currently used by any signal."""
        while True:
            candidate = f"[{prefix}{self._name_counter}]"
            self._name_counter += 1
            if candidate not in self._nodes and candidate not in self._inputs:
                return candidate

    def set_function(self, name: str, function: BooleanFunction) -> None:
        """Replace the local function of an existing node."""
        if name not in self._nodes:
            raise NetworkError(f"unknown node {name!r}")
        if name in function.variables:
            raise NetworkError(f"node {name!r} cannot be its own fanin")
        self._nodes[name] = function

    def remove_node(self, name: str) -> None:
        """Delete a node; the caller must have rewired its fanouts first."""
        if name not in self._nodes:
            raise NetworkError(f"unknown node {name!r}")
        del self._nodes[name]

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes or name in self._inputs

    def is_input(self, name: str) -> bool:
        return name in self._inputs

    def is_output(self, name: str) -> bool:
        return name in self._outputs

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def function(self, name: str) -> BooleanFunction:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def fanins(self, name: str) -> tuple[str, ...]:
        """Fanin names of a node (its function's variables)."""
        return self.function(name).variables

    def fanout_map(self) -> dict[str, list[str]]:
        """Map from every signal to the nodes that read it."""
        fanouts: dict[str, list[str]] = {s: [] for s in self.signals()}
        for node, func in self._nodes.items():
            for fanin in func.variables:
                if fanin not in fanouts:
                    raise NetworkError(
                        f"node {node!r} reads undefined signal {fanin!r}"
                    )
                fanouts[fanin].append(node)
        return fanouts

    def signals(self) -> Iterator[str]:
        """All signal names: primary inputs then nodes."""
        yield from self._inputs
        yield from self._nodes

    def topological_order(self) -> list[str]:
        """Node names ordered so every fanin precedes its reader.

        Raises NetworkError on combinational cycles or undefined signals.
        """
        indegree: dict[str, int] = {}
        readers: dict[str, list[str]] = {}
        for node, func in self._nodes.items():
            count = 0
            for fanin in func.variables:
                if fanin in self._nodes:
                    count += 1
                    readers.setdefault(fanin, []).append(node)
                elif fanin not in self._inputs:
                    raise NetworkError(
                        f"node {node!r} reads undefined signal {fanin!r}"
                    )
            indegree[node] = count
        ready = [n for n, d in indegree.items() if d == 0]
        order: list[str] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for reader in readers.get(node, ()):
                indegree[reader] -= 1
                if indegree[reader] == 0:
                    ready.append(reader)
        if len(order) != len(self._nodes):
            raise NetworkError("combinational cycle detected")
        return order

    def levels(self) -> dict[str, int]:
        """Longest-path depth of every signal (primary inputs are level 0)."""
        level = {name: 0 for name in self._inputs}
        for node in self.topological_order():
            fanins = self.fanins(node)
            level[node] = 1 + max((level[f] for f in fanins), default=0)
        return level

    def depth(self) -> int:
        """Number of logic levels on the longest PI-to-PO path."""
        level = self.levels()
        return max((level[o] for o in self._outputs), default=0)

    def num_literals(self) -> int:
        """Total SOP literal count over all nodes."""
        return sum(f.num_literals for f in self._nodes.values())

    def transitive_fanin(self, name: str) -> set[str]:
        """All signals (inputs and nodes) feeding ``name``, excluding itself."""
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in self._nodes:
                for fanin in self.fanins(current):
                    if fanin not in seen:
                        seen.add(fanin)
                        stack.append(fanin)
        return seen

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool | int]) -> dict[str, bool]:
        """Evaluate all primary outputs under a PI assignment."""
        values = self.evaluate_all(assignment)
        return {name: values[name] for name in self._outputs}

    def evaluate_all(self, assignment: Mapping[str, bool | int]) -> dict[str, bool]:
        """Evaluate every signal in the network under a PI assignment."""
        values: dict[str, bool] = {}
        for name in self._inputs:
            if name not in assignment:
                raise NetworkError(f"missing value for primary input {name!r}")
            values[name] = bool(assignment[name])
        for node in self.topological_order():
            values[node] = self._nodes[node].evaluate(values)
        return values

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "BooleanNetwork":
        """Deep-enough copy (functions are immutable and shared)."""
        clone = BooleanNetwork(name or self.name)
        clone._inputs = list(self._inputs)
        clone._outputs = list(self._outputs)
        clone._nodes = dict(self._nodes)
        clone._name_counter = self._name_counter
        return clone

    def check(self) -> None:
        """Audit structural invariants; raises NetworkError on violation."""
        for node, func in self._nodes.items():
            for fanin in func.variables:
                if fanin not in self._nodes and fanin not in self._inputs:
                    raise NetworkError(
                        f"node {node!r} reads undefined signal {fanin!r}"
                    )
            if node in self._inputs:
                raise NetworkError(f"{node!r} is both node and primary input")
        for out in self._outputs:
            if out not in self._nodes and out not in self._inputs:
                raise NetworkError(f"primary output {out!r} is undefined")
        self.topological_order()

    def cleanup(self) -> int:
        """Remove nodes reachable from no primary output; returns the count."""
        live: set[str] = set()
        stack = [o for o in self._outputs if o in self._nodes]
        while stack:
            node = stack.pop()
            if node in live:
                continue
            live.add(node)
            for fanin in self.fanins(node):
                if fanin in self._nodes:
                    stack.append(fanin)
        dead = [n for n in self._nodes if n not in live]
        for node in dead:
            del self._nodes[node]
        return len(dead)

    def __repr__(self) -> str:
        return (
            f"BooleanNetwork({self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, nodes={len(self._nodes)})"
        )


def network_from_functions(
    name: str,
    inputs: Iterable[str],
    outputs: Mapping[str, BooleanFunction],
) -> BooleanNetwork:
    """Convenience builder: one node per output, given PI names."""
    net = BooleanNetwork(name)
    for pi in inputs:
        net.add_input(pi)
    for out, func in outputs.items():
        net.add_node(out, func)
        net.add_output(out)
    net.check()
    return net
