"""Network restructuring transforms (the SIS command set stand-in).

Implements the operations the paper's preprocessing scripts rely on:

* :func:`sweep` — fold constants, buffers, and inverters into their readers;
* :func:`eliminate` — collapse low-value nodes into their fanouts;
* :func:`simplify` — espresso-lite each node's local cover;
* :func:`extract` — kernel- and cube-based common-divisor extraction;
* :func:`resubstitute` — algebraic resubstitution of existing nodes;
* :func:`decompose` — technology decomposition into bounded-fanin
  AND/OR/literal gates (the input form for one-to-one mapping);
* :func:`collapse_network` — flatten to two-level (small networks only).

All transforms preserve functional equivalence; the test suite checks this
with bit-parallel simulation after every transform.
"""

from __future__ import annotations

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.divide import divide
from repro.boolean.factor import (
    FactorAnd,
    FactorConst,
    FactorForm,
    FactorLit,
    FactorOr,
    factor,
)
from repro.boolean.function import BooleanFunction
from repro.boolean.kernels import kernels
from repro.boolean.minimize import minimize
from repro.errors import NetworkError
from repro.network.network import BooleanNetwork

# ----------------------------------------------------------------------
# Name-based algebraic helpers
# ----------------------------------------------------------------------


def divide_functions(
    f: BooleanFunction, d: BooleanFunction, divisor_name: str
) -> BooleanFunction | None:
    """Rewrite ``f`` as ``Q * divisor_name + R`` if the division is nonzero.

    Returns the rewritten function (support-trimmed, mentioning
    ``divisor_name``) or None when the quotient is empty or the rewrite does
    not reduce the literal count.
    """
    union = list(f.variables)
    for v in d.variables:
        if v not in union:
            union.append(v)
    f_r = f.rebased(union).cover
    d_r = d.rebased(union).cover
    quotient, remainder = divide(f_r, d_r)
    if quotient.is_zero():
        return None
    extended = union + [divisor_name]
    nvars = len(extended)
    lit = 1 << (nvars - 1)
    cubes = [Cube(q.pos | lit, q.neg, nvars) for q in _grow(quotient, nvars)]
    cubes.extend(_grow_cubes(remainder, nvars))
    rewritten = BooleanFunction(Cover(cubes, nvars), extended).trimmed()
    if rewritten.num_literals >= f.num_literals:
        return None
    return rewritten


def _grow(cover: Cover, nvars: int) -> list[Cube]:
    return [Cube(c.pos, c.neg, nvars) for c in cover.cubes]


def _grow_cubes(cover: Cover, nvars: int) -> list[Cube]:
    return _grow(cover, nvars)


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------


def sweep(network: BooleanNetwork) -> int:
    """Fold constant/buffer/inverter nodes into readers; drop dead nodes.

    Nodes driving primary outputs are kept even when trivial (a BLIF output
    must remain a named signal).  Returns the number of nodes removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        fanouts = network.fanout_map()
        for node in list(network.node_names):
            func = network.function(node)
            trivial = _trivial_replacement(func)
            if trivial is None:
                continue
            readers = fanouts.get(node, [])
            if not readers and not network.is_output(node):
                network.remove_node(node)
                removed += 1
                changed = True
                continue
            if not readers:
                continue  # trivial node driving only a PO: keep
            for reader in readers:
                new_func = network.function(reader).substitute(node, trivial)
                network.set_function(reader, new_func)
            if not network.is_output(node):
                network.remove_node(node)
                removed += 1
            changed = True
            fanouts = network.fanout_map()
    removed += network.cleanup()
    return removed


def _trivial_replacement(func: BooleanFunction) -> BooleanFunction | None:
    """The function to substitute for a constant/buffer/inverter node."""
    cover = func.cover.scc()
    if cover.is_zero():
        return BooleanFunction.constant(False)
    if cover.num_cubes == 1 and cover.cubes[0].is_full():
        return BooleanFunction.constant(True)
    if cover.num_cubes == 1 and cover.cubes[0].num_literals == 1:
        ((var, phase),) = cover.cubes[0].literals()
        name = func.variables[var]
        lit = Cover.literal(0, phase, 1)
        return BooleanFunction(lit, (name,))
    return None


# ----------------------------------------------------------------------
# Eliminate
# ----------------------------------------------------------------------


def eliminate(network: BooleanNetwork, threshold: int = 0) -> int:
    """Collapse nodes whose elimination value is below ``threshold``.

    The value of a node n with u uses and l factored literals approximates
    the literals saved by *keeping* it: ``(u - 1) * (l - 1) - 1`` (SIS's
    classic metric).  Nodes driving primary outputs are never eliminated.
    Returns the number of nodes eliminated.
    """
    from repro.boolean.factor import factored_literal_count

    eliminated = 0
    # Incremental reader map: recomputing the full fanout map after every
    # single elimination is O(V*E) overall and dominates on large networks.
    readers: dict[str, set[str]] = {s: set() for s in network.signals()}
    for reader in network.node_names:
        for fanin in network.fanins(reader):
            readers[fanin].add(reader)

    def rewire(reader: str, new_func: BooleanFunction) -> None:
        for fanin in network.fanins(reader):
            readers[fanin].discard(reader)
        network.set_function(reader, new_func)
        for fanin in new_func.variables:
            readers.setdefault(fanin, set()).add(reader)

    changed = True
    while changed:
        changed = False
        for node in network.topological_order():
            if network.is_output(node) or not network.has_node(node):
                continue
            func = network.function(node)
            node_readers = sorted(readers.get(node, ()))
            if not node_readers:
                continue
            uses = len(node_readers)
            lits = factored_literal_count(func.cover)
            value = (uses - 1) * (lits - 1) - 1
            if value >= threshold:
                continue
            candidates = {}
            ok = True
            for reader in node_readers:
                candidate = network.function(reader).substitute(node, func)
                if candidate.num_cubes > _ELIMINATE_CUBE_CAP:
                    ok = False
                    break
                candidates[reader] = candidate
            if not ok:
                continue
            for reader, candidate in candidates.items():
                rewire(reader, candidate)
            for fanin in func.variables:
                readers[fanin].discard(node)
            readers.pop(node, None)
            network.remove_node(node)
            eliminated += 1
            changed = True
    network.cleanup()
    return eliminated


_ELIMINATE_CUBE_CAP = 64  # refuse substitutions that blow a node up


# ----------------------------------------------------------------------
# Simplify
# ----------------------------------------------------------------------


def simplify(network: BooleanNetwork) -> int:
    """Two-level minimize every node cover; returns literals saved."""
    saved = 0
    for node in list(network.node_names):
        func = network.function(node)
        if func.nvars > _SIMPLIFY_VAR_CAP or func.num_cubes > _SIMPLIFY_CUBE_CAP:
            continue
        minimized = minimize(func.cover)
        if minimized.num_literals < func.num_literals:
            saved += func.num_literals - minimized.num_literals
            network.set_function(
                node, BooleanFunction(minimized, func.variables).trimmed()
            )
        else:
            network.set_function(node, func.trimmed())
    return saved


_SIMPLIFY_VAR_CAP = 16
_SIMPLIFY_CUBE_CAP = 64


# ----------------------------------------------------------------------
# Kernel / cube extraction
# ----------------------------------------------------------------------


def _kernel_signature(cover: Cover, variables: tuple[str, ...]) -> frozenset:
    """Name-based canonical form of a kernel for cross-node matching."""
    sig = set()
    for cube in cover.cubes:
        sig.add(
            frozenset(
                (variables[var], phase) for var, phase in cube.literals()
            )
        )
    return frozenset(sig)


def _signature_to_function(signature: frozenset) -> BooleanFunction:
    names = sorted({name for cube in signature for name, _ in cube})
    index = {n: i for i, n in enumerate(names)}
    cubes = [
        Cube.from_literals({index[n]: ph for n, ph in cube}, len(names))
        for cube in signature
    ]
    return BooleanFunction(Cover(cubes, len(names)), names)


def extract(
    network: BooleanNetwork,
    max_rounds: int = 50,
    min_saving: int = 1,
) -> int:
    """Greedy common-kernel extraction across the whole network.

    Each round enumerates kernels of every (not too large) node, scores each
    distinct kernel by the literals its extraction would save, extracts the
    best one as a new node, and rewrites every node it divides.  Stops when
    no kernel saves at least ``min_saving`` literals.  Returns the number of
    new nodes created.
    """
    created = 0
    for _ in range(max_rounds):
        candidates: dict[frozenset, list[str]] = {}
        for node in network.node_names:
            func = network.function(node)
            if func.num_cubes < 2 or func.num_cubes > _EXTRACT_CUBE_CAP:
                continue
            if func.nvars > _EXTRACT_VAR_CAP:
                continue
            for kern in kernels(func.cover, include_self=False):
                if kern.cover.num_cubes < 2:
                    continue
                sig = _kernel_signature(kern.cover, func.variables)
                candidates.setdefault(sig, []).append(node)
        # Rank candidates roughly, then evaluate the exact literal saving of
        # the most promising few by performing the divisions.
        ranked = []
        for sig, users in candidates.items():
            distinct = sorted(set(users))
            if len(distinct) < 2:
                continue
            divisor_lits = sum(len(c) for c in sig)
            ranked.append((len(distinct) * divisor_lits, sig, distinct))
        ranked.sort(key=lambda item: -item[0])
        best_sig = None
        best_saving = min_saving - 1
        for _, sig, distinct in ranked[:8]:
            divisor = _signature_to_function(sig)
            saving = -divisor.num_literals
            for node in distinct:
                if node in divisor.variables:
                    continue
                rewritten = divide_functions(
                    network.function(node), divisor, "\0probe"
                )
                if rewritten is not None:
                    saving += network.function(node).num_literals - (
                        rewritten.num_literals
                    )
            if saving > best_saving:
                best_saving = saving
                best_sig = sig
        if best_sig is None:
            break
        divisor = _signature_to_function(best_sig)
        new_name = network.fresh_name("k")
        network.add_node(new_name, divisor)
        hits = 0
        for node in list(network.node_names):
            if node == new_name:
                continue
            if node in divisor.variables:
                continue
            rewritten = divide_functions(
                network.function(node), divisor, new_name
            )
            if rewritten is not None and new_name in rewritten.variables:
                network.set_function(node, rewritten)
                hits += 1
        if hits < 2:
            # Not actually profitable: undo.
            for node in list(network.node_names):
                if node == new_name:
                    continue
                func = network.function(node)
                if new_name in func.variables:
                    network.set_function(node, func.substitute(new_name, divisor))
            network.remove_node(new_name)
            break
        created += 1
    network.cleanup()
    return created


_EXTRACT_CUBE_CAP = 40
_EXTRACT_VAR_CAP = 24


def extract_cubes(
    network: BooleanNetwork, max_rounds: int = 50, min_saving: int = 1
) -> int:
    """Greedy common-*cube* extraction (two-literal divisors).

    Complements kernel extraction: finds literal pairs that co-occur in many
    cubes across the network, extracts each as a fresh AND node.
    """
    created = 0
    for _ in range(max_rounds):
        pair_uses: dict[frozenset, set[str]] = {}
        for node in network.node_names:
            func = network.function(node)
            if func.num_cubes > _EXTRACT_CUBE_CAP:
                continue
            for cube in func.cover.cubes:
                lits = [(func.variables[v], ph) for v, ph in cube.literals()]
                for i in range(len(lits)):
                    for j in range(i + 1, len(lits)):
                        key = frozenset((lits[i], lits[j]))
                        pair_uses.setdefault(key, set()).add(node)
        best_key = None
        best_uses = 0
        for key, users in pair_uses.items():
            # Count actual cube occurrences for the score.
            occurrences = 0
            for node in users:
                func = network.function(node)
                occurrences += sum(
                    1
                    for cube in func.cover.cubes
                    if _cube_has_literals(cube, func.variables, key)
                )
            saving = occurrences * 2 - occurrences - 2  # 2 lits -> 1 lit each
            if occurrences >= 2 and saving >= min_saving and occurrences > best_uses:
                best_uses = occurrences
                best_key = key
        if best_key is None:
            break
        divisor = _signature_to_function(frozenset({best_key}))
        new_name = network.fresh_name("c")
        network.add_node(new_name, divisor)
        for node in list(network.node_names):
            if node == new_name or node in divisor.variables:
                continue
            rewritten = divide_functions(
                network.function(node), divisor, new_name
            )
            if rewritten is not None and new_name in rewritten.variables:
                network.set_function(node, rewritten)
        created += 1
    network.cleanup()
    return created


def _cube_has_literals(
    cube: Cube, variables: tuple[str, ...], key: frozenset
) -> bool:
    lits = {(variables[v], ph) for v, ph in cube.literals()}
    return key <= lits


# ----------------------------------------------------------------------
# Resubstitution
# ----------------------------------------------------------------------


def resubstitute(network: BooleanNetwork) -> int:
    """Algebraic resubstitution: reuse existing nodes as divisors.

    For every pair (target, divisor) with compatible supports, attempt weak
    division and keep rewrites that reduce literal count without creating a
    cycle.  Returns the number of successful substitutions.
    """
    hits = 0
    names = list(network.node_names)
    for target in names:
        if not network.has_node(target):
            continue
        t_func = network.function(target)
        if t_func.num_cubes > _EXTRACT_CUBE_CAP:
            continue
        t_support = set(t_func.support_names())
        for divisor_name in names:
            if divisor_name == target or not network.has_node(divisor_name):
                continue
            d_func = network.function(divisor_name)
            if divisor_name in t_func.variables:
                continue
            if d_func.num_cubes < 2 and d_func.num_literals < 2:
                continue
            if not set(d_func.support_names()) <= t_support:
                continue
            if target in network.transitive_fanin(divisor_name):
                continue
            rewritten = divide_functions(t_func, d_func, divisor_name)
            if rewritten is None or divisor_name not in rewritten.variables:
                continue
            network.set_function(target, rewritten)
            t_func = rewritten
            t_support = set(t_func.support_names())
            hits += 1
    network.cleanup()
    return hits


# ----------------------------------------------------------------------
# Technology decomposition
# ----------------------------------------------------------------------


def decompose(
    network: BooleanNetwork,
    max_fanin: int = 0,
    inverter_gates: bool = False,
    style: str = "factored",
) -> None:
    """Decompose every node into AND/OR gates of bounded fanin.

    After this pass every internal node is a *simple gate*: a single cube
    (AND of literals) or a union of single-literal cubes (OR of literals).
    ``max_fanin`` of 0 means unbounded; otherwise gates are balanced into
    trees of at most ``max_fanin`` inputs.  This is the form one-to-one
    threshold mapping consumes.

    ``style`` selects the decomposition:

    * ``"factored"`` — build gates from the algebraic factored form (few
      gates, barely sensitive to the fanin bound);
    * ``"sop"`` — classic SIS-style AND-OR decomposition of each node's
      cover (one AND per cube, an OR of cubes), whose gate count depends
      strongly on ``max_fanin`` — this is the structure the paper's
      one-to-one mapping counts.

    With ``inverter_gates`` set, complemented literals become explicit
    shared inverter nodes — the classic simple-gate network model the paper
    uses (the inverter in its Fig. 2(a) counts as a gate); otherwise
    complement phases stay folded into the reading gate's cube.
    """
    if style not in ("factored", "sop"):
        raise NetworkError(f"unknown decomposition style {style!r}")
    inverters: dict[str, str] = {}
    inv = inverters if inverter_gates else None
    for node in list(network.node_names):
        func = network.function(node)
        if style == "sop":
            form: FactorForm = _sop_form(func.cover)
        else:
            form = factor(func.cover)
        replacement = _build_gate_tree(
            network, form, func.variables, max_fanin, inv
        )
        network.set_function(node, replacement)
    network.cleanup()


def _sop_form(cover: Cover) -> FactorForm:
    """Two-level AND-OR form of a cover (no factoring)."""
    if cover.is_zero():
        return FactorConst(False)
    cubes = []
    for cube in cover.scc().cubes:
        if cube.is_full():
            return FactorConst(True)
        literals: list[FactorForm] = [
            FactorLit(var, phase) for var, phase in cube.literals()
        ]
        cubes.append(
            literals[0] if len(literals) == 1 else FactorAnd(tuple(literals))
        )
    return cubes[0] if len(cubes) == 1 else FactorOr(tuple(cubes))


def _build_gate_tree(
    network: BooleanNetwork,
    form: FactorForm,
    names: tuple[str, ...],
    max_fanin: int,
    inverters: dict[str, str] | None = None,
) -> BooleanFunction:
    """Recursively materialize a factored form as simple-gate nodes.

    Returns the function the *parent* gate should use for this subtree: a
    literal reference (possibly complemented) or a fresh node's name.
    """
    if isinstance(form, FactorConst):
        return BooleanFunction.constant(form.value)
    if isinstance(form, FactorLit):
        signal = names[form.var]
        if inverters is not None and not form.phase:
            inv = inverters.get(signal)
            if inv is None:
                inv = network.fresh_name("inv")
                network.add_node(
                    inv,
                    BooleanFunction(Cover.literal(0, False, 1), (signal,)),
                )
                inverters[signal] = inv
            return BooleanFunction(Cover.literal(0, True, 1), (inv,))
        return BooleanFunction(
            Cover.literal(0, form.phase, 1), (signal,)
        )
    assert isinstance(form, (FactorAnd, FactorOr))
    is_and = isinstance(form, FactorAnd)
    operands: list[BooleanFunction] = []
    for child in form.children:
        child_func = _build_gate_tree(network, child, names, max_fanin, inverters)
        if isinstance(child, (FactorAnd, FactorOr)):
            child_name = network.fresh_name("g")
            network.add_node(child_name, child_func)
            child_func = BooleanFunction(
                Cover.literal(0, True, 1), (child_name,)
            )
        operands.append(child_func)
    return _combine_gate(network, operands, is_and, max_fanin)


def _combine_gate(
    network: BooleanNetwork,
    operands: list[BooleanFunction],
    is_and: bool,
    max_fanin: int,
) -> BooleanFunction:
    """AND/OR together single-literal operand functions, balancing fanin."""
    while max_fanin and len(operands) > max_fanin:
        grouped: list[BooleanFunction] = []
        for start in range(0, len(operands), max_fanin):
            chunk = operands[start : start + max_fanin]
            if len(chunk) == 1:
                grouped.append(chunk[0])
                continue
            gate_name = network.fresh_name("g")
            network.add_node(gate_name, _gate_function(chunk, is_and))
            grouped.append(
                BooleanFunction(Cover.literal(0, True, 1), (gate_name,))
            )
        operands = grouped
    return _gate_function(operands, is_and)


def _gate_function(operands: list[BooleanFunction], is_and: bool) -> BooleanFunction:
    """Build the SOP of an AND/OR of single-literal operand functions."""
    names: list[str] = []
    literals: list[tuple[int, bool]] = []
    for op in operands:
        ((var, phase),) = op.cover.cubes[0].literals()
        name = op.variables[var]
        if name not in names:
            names.append(name)
        literals.append((names.index(name), phase))
    nvars = len(names)
    if is_and:
        cube_lits: dict[int, bool] = {}
        for var, phase in literals:
            cube_lits[var] = phase
        cover = Cover((Cube.from_literals(cube_lits, nvars),), nvars)
    else:
        cubes = [Cube.from_literals({var: phase}, nvars) for var, phase in literals]
        cover = Cover(cubes, nvars).scc()
    return BooleanFunction(cover, names)


# ----------------------------------------------------------------------
# Full collapse
# ----------------------------------------------------------------------


def collapse_network(network: BooleanNetwork) -> BooleanNetwork:
    """Flatten to a two-level network: one node per PO over primary inputs.

    Exponential in general — intended for verification on small circuits.
    """
    flat = BooleanNetwork(network.name + "_flat")
    for pi in network.inputs:
        flat.add_input(pi)
    order = network.topological_order()
    expressed: dict[str, BooleanFunction] = {}
    for node in order:
        func = network.function(node)
        for fanin in func.variables:
            if fanin in expressed:
                func = func.substitute(fanin, expressed[fanin])
        expressed[node] = func
    for out in network.outputs:
        if network.is_input(out):
            flat.add_output(out)  # PO aliases the PI directly
        else:
            flat.add_node(out, expressed[out])
            flat.add_output(out)
    flat.cleanup()
    return flat
