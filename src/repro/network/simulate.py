"""Bit-parallel simulation and equivalence checking of Boolean networks.

Signals are Python integers used as bit-vectors: bit *k* of every signal word
is simulation vector *k*.  Arbitrary-precision integers make the width
unbounded, so a single pass can evaluate thousands of random vectors — the
workhorse behind functional validation of synthesized threshold networks
(Section VI of the paper: "all the synthesized networks were simulated for
functional correctness").
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.boolean.function import BooleanFunction
from repro.network.network import BooleanNetwork


def eval_function_words(
    function: BooleanFunction, words: Mapping[str, int], mask: int
) -> int:
    """Evaluate an SOP function over bit-vector words."""
    result = 0
    for cube in function.cover.cubes:
        term = mask
        for var, phase in cube.literals():
            value = words[function.variables[var]]
            term &= value if phase else (~value & mask)
            if not term:
                break
        result |= term
        if result == mask:
            break
    return result


def simulate_words(
    network: BooleanNetwork, pi_words: Mapping[str, int], width: int
) -> dict[str, int]:
    """Simulate every signal over ``width`` parallel vectors."""
    mask = (1 << width) - 1
    words: dict[str, int] = {}
    for name in network.inputs:
        words[name] = pi_words[name] & mask
    for node in network.topological_order():
        words[node] = eval_function_words(network.function(node), words, mask)
    return words


def random_pi_words(
    network: BooleanNetwork, width: int, rng: random.Random
) -> dict[str, int]:
    """Independent uniform random bit-vectors for every primary input."""
    return {name: rng.getrandbits(width) for name in network.inputs}


def exhaustive_pi_words(network: BooleanNetwork) -> tuple[dict[str, int], int]:
    """PI words enumerating *all* input combinations (use when #PI is small).

    Returns the words and the width ``2**num_inputs``: bit *k* of input *i*
    is bit *i* of the integer *k*, so the simulation sweeps the full truth
    table in one pass.
    """
    n = len(network.inputs)
    width = 1 << n
    words: dict[str, int] = {}
    for i, name in enumerate(network.inputs):
        # Pattern for input i: blocks of 2**i ones alternating with zeros.
        block = (1 << (1 << i)) - 1  # 2**i ones
        word = 0
        period = 1 << (i + 1)
        for start in range(1 << i, width, period):
            word |= block << start
        words[name] = word
    return words, width


EXHAUSTIVE_LIMIT = 14  # 2**14 = 16384 vectors: cheap, exact


def equivalent_networks(
    a: BooleanNetwork,
    b: BooleanNetwork,
    vectors: int = 4096,
    seed: int = 0,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
) -> bool:
    """Check that two networks agree on all primary outputs.

    Uses exhaustive simulation when the input count is at most
    ``exhaustive_limit`` (then the answer is exact), otherwise ``vectors``
    random vectors (a strong randomized check).
    """
    if set(a.inputs) != set(b.inputs):
        return False
    if list(a.outputs) != list(b.outputs):
        return False
    if len(a.inputs) <= exhaustive_limit:
        words, width = exhaustive_pi_words(a)
    else:
        rng = random.Random(seed)
        width = vectors
        words = random_pi_words(a, width, rng)
    wa = simulate_words(a, words, width)
    wb = simulate_words(b, words, width)
    return all(wa[o] == wb[o] for o in a.outputs)


def output_signatures(
    network: BooleanNetwork, vectors: int = 1024, seed: int = 0
) -> dict[str, int]:
    """Random-simulation signatures of the primary outputs (for hashing)."""
    rng = random.Random(seed)
    words = random_pi_words(network, vectors, rng)
    sim = simulate_words(network, words, vectors)
    return {o: sim[o] for o in network.outputs}
