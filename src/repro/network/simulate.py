"""Bit-parallel simulation and equivalence checking of Boolean networks.

Signals are :class:`~repro.boolean.bitset.BitVec` bit-vectors: bit *k* of
every signal is simulation vector *k*.  The packed substrate makes a single
pass over a network evaluate thousands of vectors at once — the workhorse
behind functional validation of synthesized threshold networks (Section VI
of the paper: "all the synthesized networks were simulated for functional
correctness").

The historical integer-word API (``simulate_words`` and friends, using
Python ints as bit-vectors) is kept as a thin compatibility layer over the
BitVec core; new code should prefer the ``*_vectors`` functions.
"""

from __future__ import annotations

import random
from collections.abc import Mapping

from repro.boolean import bitset
from repro.boolean.bitset import BitVec
from repro.boolean.function import BooleanFunction
from repro.core.threshold import ThresholdNetwork
from repro.network.network import BooleanNetwork

EXHAUSTIVE_LIMIT = 14  # 2**14 = 16384 vectors: cheap, exact


# ----------------------------------------------------------------------
# BitVec core
# ----------------------------------------------------------------------
def eval_function_vectors(
    function: BooleanFunction, vecs: Mapping[str, BitVec], width: int
) -> BitVec:
    """Evaluate an SOP function over packed fanin bit-vectors."""
    fanins = [vecs[name] for name in function.variables]
    return bitset.eval_cover_vecs(function.cover, fanins, width)


def simulate_vectors(
    network: BooleanNetwork, pi_vecs: Mapping[str, BitVec], width: int
) -> dict[str, BitVec]:
    """Simulate every signal over ``width`` parallel vectors."""
    vecs: dict[str, BitVec] = {}
    for name in network.inputs:
        vecs[name] = pi_vecs[name]
    for node in network.topological_order():
        vecs[node] = eval_function_vectors(network.function(node), vecs, width)
    return vecs


def random_pi_vectors(
    network: BooleanNetwork, width: int, rng: random.Random
) -> dict[str, BitVec]:
    """Independent uniform random bit-vectors for every primary input."""
    return {name: BitVec.random(width, rng) for name in network.inputs}


def exhaustive_pi_vectors(
    network: BooleanNetwork,
) -> tuple[dict[str, BitVec], int]:
    """PI vectors enumerating *all* input combinations (small #PI only).

    Returns the vectors and the width ``2**num_inputs``: bit *k* of input
    *i* is bit *i* of the integer *k*, so the simulation sweeps the full
    truth table in one pass.  Input *i*'s vector is exactly the packed
    variable column of the truth-table substrate.
    """
    n = len(network.inputs)
    vecs = {
        name: bitset.variable_column(i, n)
        for i, name in enumerate(network.inputs)
    }
    return vecs, 1 << n


# ----------------------------------------------------------------------
# Threshold networks
# ----------------------------------------------------------------------
def simulate_threshold_vectors(
    network: ThresholdNetwork,
    pi_vecs: Mapping[str, BitVec],
    width: int,
    forced: Mapping[str, BitVec | int] | None = None,
) -> dict[str, BitVec]:
    """Packed simulation of a threshold network.

    Each gate evaluates through its vector's truth table (so the model
    semantics — single-threshold, multi-threshold parity, ... — are
    exactly the gate's own firing rule).  ``forced`` pins named signals
    to a bit-vector (or a constant 0/1) *instead of* their computed
    value — the fault-injection hook the observability analysis uses to
    ask "does anything downstream notice if this gate flips?".
    """
    pins: dict[str, BitVec] = {}
    for name, value in (forced or {}).items():
        if isinstance(value, BitVec):
            pins[name] = value
        else:
            pins[name] = (
                BitVec.ones(width) if value else BitVec.zeros(width)
            )
    vecs: dict[str, BitVec] = {}
    for name in network.inputs:
        vecs[name] = pins.get(name, pi_vecs[name])
    for name in network.topological_order():
        if name in pins:
            vecs[name] = pins[name]
            continue
        gate = network.gate(name)
        if gate.fanin == 0:
            vecs[name] = (
                BitVec.ones(width)
                if gate.vector.fires(0)
                else BitVec.zeros(width)
            )
            continue
        vecs[name] = eval_function_vectors(gate.local_function(), vecs, width)
    return vecs


def exhaustive_threshold_pi_vectors(
    network: ThresholdNetwork,
) -> tuple[dict[str, BitVec], int]:
    """All-combinations PI vectors for a threshold network (small #PI)."""
    n = len(network.inputs)
    vecs = {
        name: bitset.variable_column(i, n)
        for i, name in enumerate(network.inputs)
    }
    return vecs, 1 << n


def equivalent_threshold_networks(
    a: ThresholdNetwork,
    b: ThresholdNetwork,
    vectors: int = 4096,
    seed: int = 0,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
) -> bool:
    """Check that two threshold networks agree on all primary outputs.

    Exact (exhaustive) when the input count is at most
    ``exhaustive_limit``; otherwise a strong randomized check over
    ``vectors`` random vectors.
    """
    if set(a.inputs) != set(b.inputs):
        return False
    if list(a.outputs) != list(b.outputs):
        return False
    if len(a.inputs) <= exhaustive_limit:
        vecs, width = exhaustive_threshold_pi_vectors(a)
    else:
        rng = random.Random(seed)
        width = vectors
        vecs = {name: BitVec.random(width, rng) for name in a.inputs}
    va = simulate_threshold_vectors(a, vecs, width)
    vb = simulate_threshold_vectors(b, vecs, width)
    return all(va[o] == vb[o] for o in a.outputs)


# ----------------------------------------------------------------------
# Integer-word compatibility layer
# ----------------------------------------------------------------------
def eval_function_words(
    function: BooleanFunction, words: Mapping[str, int], mask: int
) -> int:
    """Evaluate an SOP function over integer bit-vector words."""
    width = mask.bit_length()
    vecs = {
        name: BitVec.from_int(words[name], width)
        for name in function.variables
    }
    return eval_function_vectors(function, vecs, width).to_int()


def simulate_words(
    network: BooleanNetwork, pi_words: Mapping[str, int], width: int
) -> dict[str, int]:
    """Simulate every signal over ``width`` parallel vectors (int words)."""
    mask = (1 << width) - 1
    pi_vecs = {
        name: BitVec.from_int(pi_words[name] & mask, width)
        for name in network.inputs
    }
    vecs = simulate_vectors(network, pi_vecs, width)
    return {name: vec.to_int() for name, vec in vecs.items()}


def random_pi_words(
    network: BooleanNetwork, width: int, rng: random.Random
) -> dict[str, int]:
    """Independent uniform random bit-vectors for every primary input."""
    return {name: rng.getrandbits(width) for name in network.inputs}


def exhaustive_pi_words(network: BooleanNetwork) -> tuple[dict[str, int], int]:
    """PI words enumerating *all* input combinations (use when #PI is small)."""
    vecs, width = exhaustive_pi_vectors(network)
    return {name: vec.to_int() for name, vec in vecs.items()}, width


# ----------------------------------------------------------------------
# Equivalence / signatures
# ----------------------------------------------------------------------
def equivalent_networks(
    a: BooleanNetwork,
    b: BooleanNetwork,
    vectors: int = 4096,
    seed: int = 0,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
) -> bool:
    """Check that two networks agree on all primary outputs.

    Uses exhaustive simulation when the input count is at most
    ``exhaustive_limit`` (then the answer is exact), otherwise ``vectors``
    random vectors (a strong randomized check).
    """
    if set(a.inputs) != set(b.inputs):
        return False
    if list(a.outputs) != list(b.outputs):
        return False
    if len(a.inputs) <= exhaustive_limit:
        vecs, width = exhaustive_pi_vectors(a)
    else:
        rng = random.Random(seed)
        width = vectors
        vecs = random_pi_vectors(a, width, rng)
    va = simulate_vectors(a, vecs, width)
    vb = simulate_vectors(b, vecs, width)
    return all(va[o] == vb[o] for o in a.outputs)


def output_signatures(
    network: BooleanNetwork, vectors: int = 1024, seed: int = 0
) -> dict[str, int]:
    """Random-simulation signatures of the primary outputs (for hashing)."""
    rng = random.Random(seed)
    vecs = random_pi_vectors(network, vectors, rng)
    sim = simulate_vectors(network, vecs, vectors)
    return {o: sim[o].to_int() for o in network.outputs}
