"""Multi-level Boolean network substrate (the SIS stand-in).

A :class:`BooleanNetwork` is a DAG of named nodes, each carrying a local SOP
function over its fanin names.  The :mod:`repro.network.transform` module
provides the classic restructuring operations (sweep, eliminate, extract,
resubstitute, simplify, tech-decompose) and :mod:`repro.network.scripts`
bundles them into the ``script.algebraic`` / ``script.boolean`` pipelines the
paper uses to prepare TELS inputs and the one-to-one-mapping baseline.
"""

from repro.network.network import BooleanNetwork
from repro.network.scripts import script_algebraic, script_boolean

__all__ = ["BooleanNetwork", "script_algebraic", "script_boolean"]
