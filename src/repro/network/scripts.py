"""Optimization script pipelines standing in for SIS's script files.

The paper prepares its two flows with SIS:

* ``script.algebraic`` produces the *algebraically-factored* network TELS
  synthesizes from;
* ``script.boolean`` produces the *optimized Boolean network* whose gates the
  one-to-one mapping baseline replaces with threshold gates (after technology
  decomposition to a bounded fanin).

Our pipelines are built from the transforms in
:mod:`repro.network.transform`.  They are deterministic, and every step
preserves functional equivalence.
"""

from __future__ import annotations

from repro.network.network import BooleanNetwork
from repro.network.transform import (
    decompose,
    eliminate,
    extract,
    extract_cubes,
    resubstitute,
    simplify,
    sweep,
)


def script_algebraic(network: BooleanNetwork) -> BooleanNetwork:
    """Algebraic-restructuring pipeline (stand-in for ``script.algebraic``).

    Returns a new network whose nodes form an algebraically-factored
    multi-level structure: shared kernels and cubes are broken out into
    fanout nodes, node covers are SCC-minimal, and trivial nodes are gone.
    """
    net = network.copy(network.name)
    sweep(net)
    simplify(net)
    eliminate(net, threshold=0)
    extract(net)
    extract_cubes(net)
    resubstitute(net)
    simplify(net)
    sweep(net)
    net.check()
    return net


def script_boolean(network: BooleanNetwork) -> BooleanNetwork:
    """Boolean-optimization pipeline (stand-in for ``script.boolean``).

    Adds an aggressive elimination round (SIS's ``eliminate`` with a high
    value threshold) plus resimplification on top of the algebraic
    pipeline: low-value internal nodes are folded into their readers, so
    the surviving nodes carry wide SOPs.  The result is the "optimized
    Boolean network" of Section VI-A whose decomposition the one-to-one
    baseline counts — and the node width is what makes that count respond
    to the fanin restriction the way the paper's Fig. 10 reports.
    """
    net = script_algebraic(network)
    eliminate(net, threshold=10)
    simplify(net)
    extract(net)
    resubstitute(net)
    simplify(net)
    sweep(net)
    net.check()
    return net


def prepare_one_to_one(
    network: BooleanNetwork, max_fanin: int, inverter_gates: bool = True
) -> BooleanNetwork:
    """Optimized + technology-decomposed network for one-to-one mapping.

    Runs :func:`script_boolean` and then decomposes every node into simple
    AND/OR gates of at most ``max_fanin`` inputs (Section VI-A of the
    paper), SIS-style: an AND per cube and an OR of cubes, so the gate
    count responds to the fanin bound exactly as the paper's Fig. 10
    reports.  By default complemented literals become explicit inverter
    gates, matching the paper's network model (its motivational example
    counts the inverter as a gate).
    """
    net = script_boolean(network)
    decompose(
        net, max_fanin=max_fanin, inverter_gates=inverter_gates, style="sop"
    )
    net.check()
    return net


def prepare_tels(network: BooleanNetwork) -> BooleanNetwork:
    """Algebraically-factored, finely-granular network for TELS synthesis.

    Runs :func:`script_algebraic` and then a fanin-unbounded factored-form
    decomposition (complement phases folded, no inverter gates): the node
    granularity TELS's collapsing step expects — it re-packs these small
    nodes into maximal threshold gates under the fanin restriction.
    """
    net = script_algebraic(network)
    decompose(net, max_fanin=0, inverter_gates=False)
    net.check()
    return net
