"""Two-level Boolean function substrate.

This subpackage implements the sum-of-products machinery the TELS algorithms
sit on: positional-notation cubes (:mod:`repro.boolean.cube`), SOP covers with
cofactor / tautology / complement (:mod:`repro.boolean.cover`), the packed
bit-parallel truth-table substrate (:mod:`repro.boolean.bitset`), unateness
analysis (:mod:`repro.boolean.unate`), an espresso-style two-level minimizer
(:mod:`repro.boolean.minimize`), algebraic division / kernels / factoring
(:mod:`repro.boolean.divide`, :mod:`repro.boolean.kernels`,
:mod:`repro.boolean.factor`), and a named-variable wrapper
(:mod:`repro.boolean.function`).
"""

from repro.boolean.bitset import BitVec
from repro.boolean.cube import Cube
from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction

__all__ = ["BitVec", "Cube", "Cover", "BooleanFunction"]
