"""Cubes in positional notation over an ordered set of Boolean variables.

A cube is a product term: each variable appears in positive phase, in negative
phase, or not at all (don't care).  The two phases are stored as bitmasks
(``pos`` and ``neg``), which makes containment, intersection, and cofactor
single machine-word operations for functions of up to word size — far more
variables than threshold synthesis ever touches in one node.

Cubes are immutable and hashable so they can live in sets and serve as
dictionary keys for memoization.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import CoverError


class Cube:
    """An immutable product term over ``nvars`` positionally-indexed variables.

    Attributes:
        pos: bitmask of variables appearing as positive literals.
        neg: bitmask of variables appearing as negative literals.
        nvars: number of variables in the cube's space.
    """

    __slots__ = ("pos", "neg", "nvars")

    def __init__(self, pos: int, neg: int, nvars: int):
        if nvars < 0:
            raise CoverError(f"nvars must be non-negative, got {nvars}")
        mask = (1 << nvars) - 1
        if pos & ~mask or neg & ~mask:
            raise CoverError("literal mask references a variable >= nvars")
        if pos & neg:
            raise CoverError(
                "cube has a variable in both phases (contradictory cube); "
                "represent the empty function as an empty cover instead"
            )
        object.__setattr__(self, "pos", pos)
        object.__setattr__(self, "neg", neg)
        object.__setattr__(self, "nvars", nvars)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Cube is immutable")

    def __reduce__(self):
        # Slotted immutables can't use default pickling (it restores via
        # setattr); rebuild through the constructor instead.
        return (Cube, (self.pos, self.neg, self.nvars))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, nvars: int) -> "Cube":
        """The universal cube (all don't cares); evaluates to 1 everywhere."""
        return cls(0, 0, nvars)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse espresso positional notation, e.g. ``"1-0"``.

        ``1`` is a positive literal, ``0`` a negative literal, and ``-`` (or
        ``2``) a don't care.  Character *i* corresponds to variable *i*.
        """
        pos = neg = 0
        for i, ch in enumerate(text):
            if ch == "1":
                pos |= 1 << i
            elif ch == "0":
                neg |= 1 << i
            elif ch in "-2":
                continue
            else:
                raise CoverError(f"invalid cube character {ch!r} in {text!r}")
        return cls(pos, neg, len(text))

    @classmethod
    def from_literals(cls, literals: dict[int, bool], nvars: int) -> "Cube":
        """Build a cube from ``{variable_index: phase}`` (True = positive)."""
        pos = neg = 0
        for var, phase in literals.items():
            if not 0 <= var < nvars:
                raise CoverError(f"variable index {var} out of range 0..{nvars - 1}")
            if phase:
                pos |= 1 << var
            else:
                neg |= 1 << var
        return cls(pos, neg, nvars)

    @classmethod
    def minterm(cls, point: int, nvars: int) -> "Cube":
        """The minterm cube in which every variable is assigned per ``point``."""
        mask = (1 << nvars) - 1
        return cls(point & mask, ~point & mask, nvars)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """Render in espresso positional notation (``1``/``0``/``-``)."""
        chars = []
        for i in range(self.nvars):
            bit = 1 << i
            if self.pos & bit:
                chars.append("1")
            elif self.neg & bit:
                chars.append("0")
            else:
                chars.append("-")
        return "".join(chars)

    @property
    def support(self) -> int:
        """Bitmask of variables on which this cube depends."""
        return self.pos | self.neg

    @property
    def num_literals(self) -> int:
        """Number of literals (variables not don't care)."""
        return (self.pos | self.neg).bit_count()

    def is_full(self) -> bool:
        """True for the universal cube."""
        return self.pos == 0 and self.neg == 0

    def is_minterm(self) -> bool:
        """True when every variable is assigned a phase."""
        return (self.pos | self.neg) == (1 << self.nvars) - 1

    def phase(self, var: int) -> str:
        """Return ``"1"``, ``"0"``, or ``"-"`` for variable ``var``."""
        bit = 1 << var
        if self.pos & bit:
            return "1"
        if self.neg & bit:
            return "0"
        return "-"

    def literals(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(variable_index, phase)`` pairs for every literal."""
        for i in range(self.nvars):
            bit = 1 << i
            if self.pos & bit:
                yield i, True
            elif self.neg & bit:
                yield i, False

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def contains(self, other: "Cube") -> bool:
        """True when this cube covers ``other`` (``other`` implies ``self``)."""
        return (self.pos & ~other.pos) == 0 and (self.neg & ~other.neg) == 0

    def intersects(self, other: "Cube") -> bool:
        """True when the two cubes share at least one minterm."""
        return (self.pos & other.neg) == 0 and (self.neg & other.pos) == 0

    def intersect(self, other: "Cube") -> "Cube | None":
        """The product cube, or None when the product is empty."""
        if not self.intersects(other):
            return None
        return Cube(self.pos | other.pos, self.neg | other.neg, self.nvars)

    def distance(self, other: "Cube") -> int:
        """Number of variables in which the cubes have opposite phases."""
        return ((self.pos & other.neg) | (self.neg & other.pos)).bit_count()

    def consensus(self, other: "Cube") -> "Cube | None":
        """The consensus cube when the distance is exactly 1, else None."""
        conflict = (self.pos & other.neg) | (self.neg & other.pos)
        if conflict.bit_count() != 1:
            return None
        pos = (self.pos | other.pos) & ~conflict
        neg = (self.neg | other.neg) & ~conflict
        return Cube(pos, neg, self.nvars)

    def supercube(self, other: "Cube") -> "Cube":
        """The smallest cube containing both operands."""
        return Cube(self.pos & other.pos, self.neg & other.neg, self.nvars)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def cofactor(self, other: "Cube") -> "Cube | None":
        """Cofactor of this cube with respect to ``other`` (Shannon).

        Returns None when the two cubes do not intersect (the cofactor is the
        empty function); otherwise drops every literal that ``other`` fixes.
        """
        if not self.intersects(other):
            return None
        drop = other.pos | other.neg
        return Cube(self.pos & ~drop, self.neg & ~drop, self.nvars)

    def restrict(self, var: int, value: bool) -> "Cube | None":
        """Cofactor with respect to a single variable assignment."""
        bit = 1 << var
        if value:
            if self.neg & bit:
                return None
            return Cube(self.pos & ~bit, self.neg, self.nvars)
        if self.pos & bit:
            return None
        return Cube(self.pos, self.neg & ~bit, self.nvars)

    def without_var(self, var: int) -> "Cube":
        """Drop any literal of ``var`` (existential abstraction of one cube)."""
        bit = 1 << var
        return Cube(self.pos & ~bit, self.neg & ~bit, self.nvars)

    def with_literal(self, var: int, phase: bool) -> "Cube":
        """Add (or overwrite) a literal of ``var``."""
        bit = 1 << var
        if phase:
            return Cube(self.pos | bit, self.neg & ~bit, self.nvars)
        return Cube(self.pos & ~bit, self.neg | bit, self.nvars)

    def permute(self, mapping: dict[int, int], nvars: int) -> "Cube":
        """Re-index variables through ``mapping`` into a space of ``nvars``."""
        pos = neg = 0
        for var, phase in self.literals():
            target = mapping[var]
            if not 0 <= target < nvars:
                raise CoverError(f"mapped index {target} out of range")
            if phase:
                pos |= 1 << target
            else:
                neg |= 1 << target
        return Cube(pos, neg, nvars)

    def evaluate(self, point: int) -> bool:
        """Evaluate at a point given as a bitmask of variable values."""
        return (self.pos & ~point) == 0 and (self.neg & point) == 0

    def num_minterms(self) -> int:
        """Number of minterms covered by this cube."""
        return 1 << (self.nvars - self.num_literals)

    def minterms(self) -> Iterator[int]:
        """Yield every covered point as a bitmask (exponential; small n only)."""
        free = [i for i in range(self.nvars) if not (self.support >> i) & 1]
        base = self.pos
        for assignment in range(1 << len(free)):
            point = base
            for j, var in enumerate(free):
                if (assignment >> j) & 1:
                    point |= 1 << var
            yield point

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return (
            self.pos == other.pos
            and self.neg == other.neg
            and self.nvars == other.nvars
        )

    def __hash__(self) -> int:
        return hash((self.pos, self.neg, self.nvars))

    def __lt__(self, other: "Cube") -> bool:
        return (self.nvars, self.pos, self.neg) < (other.nvars, other.pos, other.neg)

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r})"
