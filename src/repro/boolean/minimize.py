"""A compact espresso-style two-level minimizer.

Implements the EXPAND / IRREDUNDANT / REDUCE loop over the cover engine.  It
is not the full espresso (no MINI-style blocking matrices, no LASTGASP), but
it produces irredundant prime covers, honours a don't-care set, and is more
than adequate for the node-simplification duty the ``script.boolean``
stand-in needs and for preparing benchmark functions.
"""

from __future__ import annotations

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube

_MAX_PASSES = 8


def expand(cover: Cover, offset: Cover) -> Cover:
    """Expand every cube to a prime against ``offset`` (greedy per literal).

    A literal may be dropped from a cube whenever the grown cube still
    intersects no OFF-set cube.  Cubes are processed largest-first so big
    primes get the chance to absorb smaller cubes via the final SCC.
    """
    expanded: list[Cube] = []
    for cube in sorted(cover.cubes, key=lambda c: c.num_literals):
        current = cube
        for var, phase in list(cube.literals()):
            candidate = current.without_var(var)
            if not any(candidate.intersects(off) for off in offset.cubes):
                current = candidate
        expanded.append(current)
    return Cover(expanded, cover.nvars).scc()


def irredundant(cover: Cover, dcset: Cover | None = None) -> Cover:
    """Drop cubes covered by the union of the remaining cubes and DC-set."""
    cubes = list(cover.cubes)
    # Try to drop the largest cubes last so primes are preferentially kept.
    order = sorted(range(len(cubes)), key=lambda i: cubes[i].num_literals, reverse=True)
    alive = [True] * len(cubes)
    for i in order:
        rest = [cubes[j] for j in range(len(cubes)) if alive[j] and j != i]
        if dcset is not None:
            rest = rest + list(dcset.cubes)
        if Cover(rest, cover.nvars).contains_cube(cubes[i]):
            alive[i] = False
    return Cover([c for i, c in enumerate(cubes) if alive[i]], cover.nvars)


def reduce_cover(cover: Cover, dcset: Cover | None = None) -> Cover:
    """Shrink each cube to the supercube of its essential part."""
    cubes = list(cover.cubes)
    out: list[Cube] = []
    for i, cube in enumerate(cubes):
        rest = out + cubes[i + 1 :]
        if dcset is not None:
            rest = rest + list(dcset.cubes)
        blocked = Cover(rest, cover.nvars)
        # Essential part of `cube`: minterms of cube not covered by the rest.
        essential = Cover([cube], cover.nvars).product(blocked.complement())
        if essential.is_zero():
            continue  # fully redundant
        shrunk = essential.cubes[0]
        for c in essential.cubes[1:]:
            shrunk = shrunk.supercube(c)
        out.append(shrunk)
    return Cover(out, cover.nvars)


def minimize(cover: Cover, dcset: Cover | None = None) -> Cover:
    """Espresso-lite: iterate expand / irredundant / reduce to a fixpoint.

    Args:
        cover: the ON-set cover to minimize.
        dcset: optional don't-care cover the result may freely use.

    Returns:
        An irredundant cover of prime implicants equivalent to ``cover`` on
        the care set, with (heuristically) few cubes and literals.
    """
    cover = cover.scc()
    if cover.is_zero() or cover.is_tautology():
        return Cover.one(cover.nvars) if cover.is_tautology() else cover
    care_on = cover
    if dcset is None:
        offset = cover.complement()
    else:
        offset = cover.union(dcset).complement()
    best = irredundant(expand(cover, offset), dcset)
    best_cost = (best.num_cubes, best.num_literals)
    for _ in range(_MAX_PASSES):
        reduced = reduce_cover(best, dcset)
        candidate = irredundant(expand(reduced, offset), dcset)
        cost = (candidate.num_cubes, candidate.num_literals)
        if cost < best_cost:
            best, best_cost = candidate, cost
        else:
            break
    assert _covers_care_set(best, care_on, dcset)
    return best


def _covers_care_set(result: Cover, onset: Cover, dcset: Cover | None) -> bool:
    """Sanity check: result equals the ON-set everywhere outside the DC-set."""
    if dcset is None:
        return result.equivalent(onset)
    care_result = result.product(dcset.complement())
    care_on = onset.product(dcset.complement())
    return care_result.equivalent(care_on)
