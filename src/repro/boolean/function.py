"""Boolean functions over named variables.

:class:`BooleanFunction` pairs a positional :class:`~repro.boolean.cover.Cover`
with an ordered tuple of variable names.  Network nodes store their local
function this way: the cover's variable *i* is the node's fanin *i*.  The
class provides name-aware substitution (the workhorse of node collapsing),
support trimming, and re-basing onto a different variable ordering.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.unate import UnatenessReport, syntactic_unateness
from repro.errors import CoverError


class BooleanFunction:
    """An SOP function whose variables carry names."""

    __slots__ = ("cover", "variables", "_index")

    def __init__(self, cover: Cover, variables: Sequence[str]):
        variables = tuple(variables)
        if len(variables) != cover.nvars:
            raise CoverError(
                f"{len(variables)} names for a cover over {cover.nvars} variables"
            )
        if len(set(variables)) != len(variables):
            raise CoverError(f"duplicate variable names in {variables}")
        object.__setattr__(self, "cover", cover)
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "_index", {v: i for i, v in enumerate(variables)})

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("BooleanFunction is immutable")

    def __reduce__(self):
        # Slotted immutables can't use default pickling (it restores via
        # setattr); rebuild through the constructor instead.
        return (type(self), (self.cover, self.variables))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: bool) -> "BooleanFunction":
        """The constant 0 or 1 function of no variables."""
        return cls(Cover.one(0) if value else Cover.zero(0), ())

    @classmethod
    def from_sop(cls, rows: Sequence[str], variables: Sequence[str]) -> "BooleanFunction":
        """Build from positional-notation rows and a matching name list."""
        if not rows:
            return cls(Cover.zero(len(variables)), variables)
        return cls(Cover.from_strings(rows), variables)

    @classmethod
    def parse(cls, expression: str) -> "BooleanFunction":
        """Parse a small SOP expression, e.g. ``"a b' + c"``.

        Grammar: cubes separated by ``+`` or ``|``; literals separated by
        whitespace or ``*`` or ``&``; a trailing ``'`` or leading ``~``/``!``
        complements a literal.  Variables are ordered by first appearance.
        The constants ``0`` and ``1`` are accepted.
        """
        expression = expression.strip()
        if expression == "0":
            return cls.constant(False)
        if expression == "1":
            return cls.constant(True)
        order: list[str] = []
        cube_literals: list[dict[str, bool]] = []
        for term in expression.replace("|", "+").split("+"):
            term = term.strip()
            if not term:
                raise CoverError(f"empty product term in {expression!r}")
            literals: dict[str, bool] = {}
            for token in term.replace("*", " ").replace("&", " ").split():
                phase = True
                if token.startswith(("~", "!")):
                    phase = False
                    token = token[1:]
                if token.endswith("'"):
                    phase = not phase
                    token = token[:-1]
                if not token.isidentifier():
                    raise CoverError(f"invalid literal {token!r} in {expression!r}")
                if token in literals and literals[token] != phase:
                    raise CoverError(f"contradictory literal {token!r} in one cube")
                literals[token] = phase
                if token not in order:
                    order.append(token)
            cube_literals.append(literals)
        nvars = len(order)
        index = {v: i for i, v in enumerate(order)}
        cubes = [
            Cube.from_literals({index[v]: ph for v, ph in lits.items()}, nvars)
            for lits in cube_literals
        ]
        return cls(Cover(cubes, nvars), order)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def nvars(self) -> int:
        return self.cover.nvars

    @property
    def num_cubes(self) -> int:
        return self.cover.num_cubes

    @property
    def num_literals(self) -> int:
        return self.cover.num_literals

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CoverError(f"unknown variable {name!r}") from None

    def depends_on(self, name: str) -> bool:
        """True when ``name`` appears in some cube (syntactic support)."""
        if name not in self._index:
            return False
        return bool((self.cover.support >> self._index[name]) & 1)

    def support_names(self) -> list[str]:
        """Names of variables in the syntactic support, in variable order."""
        return [self.variables[i] for i in self.cover.support_vars()]

    def unateness(self) -> UnatenessReport:
        return syntactic_unateness(self.cover)

    def evaluate(self, assignment: Mapping[str, bool | int]) -> bool:
        """Evaluate under a name -> value assignment."""
        point = 0
        for i, name in enumerate(self.variables):
            if assignment.get(name):
                point |= 1 << i
        return self.cover.evaluate(point)

    def to_expression(self) -> str:
        """Render as a human-readable SOP string."""
        if self.cover.is_zero():
            return "0"
        terms = []
        for cube in self.cover.cubes:
            if cube.is_full():
                return "1"
            lits = [
                self.variables[var] + ("" if phase else "'")
                for var, phase in cube.literals()
            ]
            terms.append(" ".join(lits))
        return " + ".join(terms)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def trimmed(self) -> "BooleanFunction":
        """Drop variables outside the syntactic support (after SCC)."""
        cover = self.cover.scc()
        keep = cover.support_vars()
        if len(keep) == self.nvars:
            return BooleanFunction(cover, self.variables)
        mapping = {old: new for new, old in enumerate(keep)}
        cubes = [c.permute(mapping, len(keep)) for c in cover.cubes]
        names = tuple(self.variables[i] for i in keep)
        return BooleanFunction(Cover(cubes, len(keep)), names)

    def rebased(self, variables: Sequence[str]) -> "BooleanFunction":
        """Re-express over a (super)set ordering of variables."""
        variables = tuple(variables)
        index = {v: i for i, v in enumerate(variables)}
        missing = [v for v in self.support_names() if v not in index]
        if missing:
            raise CoverError(f"rebased target misses support variables {missing}")
        mapping = {
            i: index[name]
            for i, name in enumerate(self.variables)
            if name in index
        }
        cubes = []
        for cube in self.cover.cubes:
            if any(var not in mapping for var, _ in cube.literals()):
                raise CoverError("cube references a variable outside the target")
            cubes.append(cube.permute(mapping, len(variables)))
        return BooleanFunction(Cover(cubes, len(variables)), variables)

    def renamed(self, renames: Mapping[str, str]) -> "BooleanFunction":
        """Rename variables without touching the cover."""
        names = tuple(renames.get(v, v) for v in self.variables)
        return BooleanFunction(self.cover, names)

    def substitute(self, name: str, g: "BooleanFunction") -> "BooleanFunction":
        """Replace variable ``name`` with function ``g`` (node collapsing).

        The result is expressed over the union of both variable sets (minus
        ``name``), support-trimmed.
        """
        if name not in self._index:
            return self
        target_vars = [v for v in self.variables if v != name]
        for v in g.variables:
            if v not in target_vars:
                target_vars.append(v)
        # Work in a space that still contains `name` so compose() can run.
        work_vars = target_vars + [name]
        f_w = self.rebased(work_vars)
        g_w = g.rebased(work_vars)
        composed = f_w.cover.compose(f_w.index_of(name), g_w.cover)
        return BooleanFunction(composed, work_vars).trimmed()

    def complement(self) -> "BooleanFunction":
        return BooleanFunction(self.cover.complement(), self.variables)

    def packed_table(self):
        """The cover's packed truth table (variable *i* = fanin *i*)."""
        return self.cover.packed_table()

    def equivalent(self, other: "BooleanFunction") -> bool:
        """Semantic equality, aligning variables by name.

        Identically-ordered variable tuples compare their packed tables
        directly; otherwise both sides are rebased onto the name union
        first (the packed comparison then happens in the union space).
        """
        if self.variables == other.variables:
            return self.cover.equivalent(other.cover)
        union = list(self.variables)
        for v in other.variables:
            if v not in union:
                union.append(v)
        return self.rebased(union).cover.equivalent(other.rebased(union).cover)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanFunction):
            return NotImplemented
        return self.variables == other.variables and self.cover == other.cover

    def __hash__(self) -> int:
        return hash((self.variables, self.cover))

    def __repr__(self) -> str:
        return f"BooleanFunction({self.to_expression()!r})"


def iter_assignments(names: Iterable[str]):
    """Yield every full truth assignment over ``names`` as dicts."""
    names = list(names)
    for point in range(1 << len(names)):
        yield {name: bool((point >> i) & 1) for i, name in enumerate(names)}
