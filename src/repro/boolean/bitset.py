"""Packed bit-parallel Boolean substrate.

Truth tables and simulation-vector words are stored as packed bitsets —
``numpy`` ``uint64`` arrays when numpy is importable, a pure-Python
arbitrary-precision ``int`` bitmask otherwise (or when the fallback is
forced) — behind one :class:`BitVec` type.  Bit *k* of a ``BitVec`` of
width *W* is point/vector *k*; for truth tables ``W = 2**nvars`` and bit
*i* of the point index is the value of variable *i*, matching
:meth:`repro.boolean.cube.Cube.evaluate`.

On top of :class:`BitVec` this module provides the kernels the rest of the
library's hot paths are built on:

* cover → packed truth table (:func:`cover_table`, :func:`key_table`,
  :func:`cube_table`) — per cube one AND per literal over ``2**n/64``
  words instead of a Python loop over ``2**n`` points;
* packed cofactor / smoothing / tautology / minterm counting
  (:func:`cofactor_table`, :func:`smooth_table`, :func:`table_is_tautology`);
* Chow-parameter computation, single (:func:`chow_from_table`) and for a
  whole batch of cones in one vectorized pass (:func:`chow_batch`);
* weighted-sum enumeration over all input points
  (:func:`weighted_sums`), the workhorse of gate margin checks,
  multi-threshold placement, and cache vector re-verification;
* N-point evaluation of SOP functions over packed simulation words
  (:func:`eval_cover_vecs`), the inner loop of network simulation.

Backend selection: numpy is used when present; set the environment
variable ``TELS_BITSET_BACKEND=python`` (read at import) or call
:func:`set_backend` / :func:`force_backend` to exercise the pure-Python
fallback.  Both backends produce bit-identical results — the differential
suite (``tests/boolean/test_bitset_differential.py``) pins this.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from collections.abc import Iterator, Sequence

try:  # pragma: no cover - exercised by the CI no-numpy job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Widest truth table the packed kernels build (2**16 bits = 8 KiB);
#: wider functions stay on the recursive cover algebra.
MAX_TABLE_VARS = 16

_WORD = 64
_WORD_MASK = (1 << _WORD) - 1

#: 64-bit pattern of variable ``i`` (i < 6): bit k set iff bit i of k set.
_VAR_PATTERNS = tuple(
    sum(1 << k for k in range(_WORD) if (k >> i) & 1) for i in range(6)
)


def _numpy_available() -> bool:
    return _np is not None


_backend = "numpy" if _np is not None else "python"
if os.environ.get("TELS_BITSET_BACKEND", "").strip().lower() in (
    "python",
    "int",
):
    _backend = "python"


def active_backend() -> str:
    """The backend new :class:`BitVec` instances are built on."""
    return _backend


def set_backend(name: str) -> None:
    """Select the packing backend: ``"numpy"``, ``"python"``, or ``"auto"``."""
    global _backend
    if name == "auto":
        name = "numpy" if _np is not None else "python"
    if name not in ("numpy", "python"):
        raise ValueError(f"unknown bitset backend {name!r}")
    if name == "numpy" and _np is None:
        raise RuntimeError("numpy backend requested but numpy is not importable")
    _backend = name
    _column_cache.clear()


@contextmanager
def force_backend(name: str) -> Iterator[None]:
    """Temporarily force a backend (tests / differential harnesses)."""
    saved = _backend
    set_backend(name)
    try:
        yield
    finally:
        set_backend(saved)


def _nwords(width: int) -> int:
    return max(1, (width + _WORD - 1) // _WORD)


class BitVec:
    """An immutable packed vector of ``width`` bits.

    ``words`` is either a ``numpy`` ``uint64`` array of ``ceil(width/64)``
    words (bits beyond ``width`` are kept zero) or a non-negative Python
    int below ``2**width``.  All operators preserve the invariant and the
    backend of the left operand.
    """

    __slots__ = ("width", "words")

    def __init__(self, width: int, words):
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "words", words)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("BitVec is immutable")

    def __reduce__(self):
        return (BitVec.from_int, (self.to_int(), self.width))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, width: int) -> "BitVec":
        if _backend == "numpy":
            return cls(width, _np.zeros(_nwords(width), dtype=_np.uint64))
        return cls(width, 0)

    @classmethod
    def ones(cls, width: int) -> "BitVec":
        return cls.zeros(width).invert()

    @classmethod
    def from_int(cls, value: int, width: int) -> "BitVec":
        """Pack the low ``width`` bits of a Python int."""
        value &= (1 << width) - 1
        if _backend == "numpy":
            n = _nwords(width)
            raw = value.to_bytes(n * 8, "little")
            return cls(width, _np.frombuffer(raw, dtype=_np.uint64).copy())
        return cls(width, value)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitVec":
        """Pack a 0/1 sequence; ``bits[k]`` becomes bit ``k``."""
        value = 0
        for k, b in enumerate(bits):
            if b:
                value |= 1 << k
        return cls.from_int(value, len(bits))

    @classmethod
    def random(cls, width: int, rng) -> "BitVec":
        """Uniform random bits from a ``random.Random``."""
        return cls.from_int(rng.getrandbits(width), width)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_int(self) -> int:
        if isinstance(self.words, int):
            return self.words
        return int.from_bytes(self.words.tobytes(), "little")

    def to_bits(self) -> list[int]:
        value = self.to_int()
        return [(value >> k) & 1 for k in range(self.width)]

    def to_bool_array(self):
        """A numpy bool array of the bits (requires numpy)."""
        if _np is None:
            raise RuntimeError("to_bool_array requires numpy")
        if isinstance(self.words, int):
            raw = self.words.to_bytes(_nwords(self.width) * 8, "little")
            words = _np.frombuffer(raw, dtype=_np.uint8)
        else:
            words = self.words.view(_np.uint8)
        return _np.unpackbits(words, bitorder="little")[: self.width].astype(
            bool
        )

    @classmethod
    def from_bool_array(cls, array) -> "BitVec":
        """Pack a numpy bool/0-1 array (requires numpy)."""
        if _np is None:
            raise RuntimeError("from_bool_array requires numpy")
        array = _np.asarray(array).astype(_np.uint8)
        width = int(array.shape[0])
        packed = _np.packbits(array, bitorder="little").tobytes()
        return cls.from_int(int.from_bytes(packed, "little"), width)

    # ------------------------------------------------------------------
    # Bitwise algebra
    # ------------------------------------------------------------------
    def _tail_mask_words(self):
        """Numpy words with every valid bit set (the width mask)."""
        n = _nwords(self.width)
        mask = _np.full(n, _WORD_MASK, dtype=_np.uint64)
        tail = self.width % _WORD
        if tail and self.width:
            mask[-1] = _np.uint64((1 << tail) - 1)
        if self.width == 0:
            mask[:] = 0
        return mask

    def __and__(self, other: "BitVec") -> "BitVec":
        if isinstance(self.words, int):
            return BitVec(self.width, self.words & other.to_int())
        return BitVec(self.width, self.words & other.words)

    def __or__(self, other: "BitVec") -> "BitVec":
        if isinstance(self.words, int):
            return BitVec(self.width, self.words | other.to_int())
        return BitVec(self.width, self.words | other.words)

    def __xor__(self, other: "BitVec") -> "BitVec":
        if isinstance(self.words, int):
            return BitVec(self.width, self.words ^ other.to_int())
        return BitVec(self.width, self.words ^ other.words)

    def andnot(self, other: "BitVec") -> "BitVec":
        """``self & ~other`` without materializing the complement."""
        if isinstance(self.words, int):
            return BitVec(self.width, self.words & ~other.to_int())
        return BitVec(self.width, self.words & ~other.words)

    def invert(self) -> "BitVec":
        if isinstance(self.words, int):
            return BitVec(self.width, ~self.words & ((1 << self.width) - 1))
        return BitVec(self.width, ~self.words & self._tail_mask_words())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Population count."""
        if isinstance(self.words, int):
            return self.words.bit_count()
        return int(_np.bitwise_count(self.words).sum())

    def is_zero(self) -> bool:
        if isinstance(self.words, int):
            return self.words == 0
        return not self.words.any()

    def is_ones(self) -> bool:
        """True when every one of the ``width`` bits is set."""
        if isinstance(self.words, int):
            return self.words == (1 << self.width) - 1
        return bool((self.words == self._tail_mask_words()).all())

    def test(self, k: int) -> bool:
        """Value of bit ``k``."""
        if isinstance(self.words, int):
            return bool((self.words >> k) & 1)
        return bool((int(self.words[k // _WORD]) >> (k % _WORD)) & 1)

    def first_set(self) -> int | None:
        """Index of the lowest set bit, or None when all-zero."""
        if isinstance(self.words, int):
            if self.words == 0:
                return None
            return (self.words & -self.words).bit_length() - 1
        nz = _np.nonzero(self.words)[0]
        if not nz.size:
            return None
        j = int(nz[0])
        w = int(self.words[j])
        return j * _WORD + ((w & -w).bit_length() - 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVec):
            return NotImplemented
        return self.width == other.width and self.to_int() == other.to_int()

    def __hash__(self) -> int:
        return hash((self.width, self.to_int()))

    def __repr__(self) -> str:
        return f"BitVec(width={self.width}, popcount={self.count()})"


# ----------------------------------------------------------------------
# Truth-table structure: variable columns, cover tables, cofactors
# ----------------------------------------------------------------------

#: (backend, nvars, var) -> BitVec column cache.  Columns are tiny (one
#: table each) and requested constantly, so a plain dict is the right call.
_column_cache: dict[tuple[str, int, int], BitVec] = {}


def variable_column(var: int, nvars: int) -> BitVec:
    """The packed truth table of variable ``var`` over ``2**nvars`` points."""
    key = (_backend, nvars, var)
    cached = _column_cache.get(key)
    if cached is not None:
        return cached
    width = 1 << nvars
    if _backend == "numpy":
        n = _nwords(width)
        if var < 6:
            words = _np.full(n, _VAR_PATTERNS[var], dtype=_np.uint64)
            if nvars < 6:
                words &= BitVec.zeros(width)._tail_mask_words()
        else:
            stride = 1 << (var - 6)
            block = _np.arange(n, dtype=_np.uint64) // _np.uint64(stride)
            words = _np.where(
                block & _np.uint64(1), _np.uint64(_WORD_MASK), _np.uint64(0)
            )
        column = BitVec(width, words)
    else:
        period = 1 << (var + 1)
        half = 1 << var
        block = (1 << half) - 1
        value = 0
        for start in range(half, width, period):
            value |= block << start
        column = BitVec(width, value)
    _column_cache[key] = column
    return column


def cube_table(pos: int, neg: int, nvars: int) -> BitVec:
    """Packed truth table of one cube given its literal masks."""
    table = BitVec.ones(1 << nvars)
    for var in range(nvars):
        bit = 1 << var
        if pos & bit:
            table = table & variable_column(var, nvars)
        elif neg & bit:
            table = table.andnot(variable_column(var, nvars))
    return table


def key_table(key: tuple) -> BitVec:
    """Packed truth table of a cover key ``(nvars, ((pos, neg), ...))``."""
    nvars, rows = key
    table = BitVec.zeros(1 << nvars)
    for pos, neg in rows:
        table = table | cube_table(pos, neg, nvars)
        if table.is_ones():
            break
    return table


def cover_table(cover) -> BitVec:
    """Packed truth table of a :class:`~repro.boolean.cover.Cover`.

    Goes through the cover's own memo slot when present so repeated
    requests for one instance are free.
    """
    packed = getattr(cover, "packed_table", None)
    if packed is not None:
        return packed()
    return key_table(
        (cover.nvars, tuple((c.pos, c.neg) for c in cover.cubes))
    )


def cofactor_table(table: BitVec, nvars: int, var: int, value: bool) -> BitVec:
    """Packed Shannon cofactor: ``var`` becomes free (both halves equal)."""
    column = variable_column(var, nvars)
    if isinstance(table.words, int):
        if value:
            sel = table.words & column.words
            return BitVec(table.width, sel | (sel >> (1 << var)))
        sel = table.words & ~column.words & ((1 << table.width) - 1)
        result = sel | (sel << (1 << var))
        return BitVec(table.width, result & ((1 << table.width) - 1))
    if var < 6:
        shift = _np.uint64(1 << var)
        if value:
            sel = table.words & column.words
            return BitVec(table.width, sel | (sel >> shift))
        sel = table.words & ~column.words
        out = (sel | (sel << shift)) & table._tail_mask_words()
        return BitVec(table.width, out)
    stride = 1 << (var - 6)
    grouped = table.words.reshape(-1, 2, stride)
    half = grouped[:, 1 if value else 0, :]
    out = _np.concatenate([half[:, None, :], half[:, None, :]], axis=1)
    return BitVec(table.width, out.reshape(-1).copy())


def smooth_table(table: BitVec, nvars: int, var: int) -> BitVec:
    """Existential abstraction: OR of both cofactors."""
    return cofactor_table(table, nvars, var, False) | cofactor_table(
        table, nvars, var, True
    )


def table_is_tautology(table: BitVec) -> bool:
    return table.is_ones()


def table_support(table: BitVec, nvars: int) -> int:
    """Bitmask of variables the function actually depends on."""
    mask = 0
    for var in range(nvars):
        pos = cofactor_table(table, nvars, var, True)
        neg = cofactor_table(table, nvars, var, False)
        if pos != neg:
            mask |= 1 << var
    return mask


# ----------------------------------------------------------------------
# Chow parameters — single cone and vectorized cone batches
# ----------------------------------------------------------------------


def chow_from_table(table: BitVec, nvars: int, variables) -> dict[int, int]:
    """Chow parameters over the full space, matching the historical
    ``cover.restrict(var, True).num_minterms()`` definition (each count is
    doubled because the restricted cofactor leaves the variable free)."""
    return {
        var: 2 * (table & variable_column(var, nvars)).count()
        for var in variables
    }


def chow_batch(
    tables: Sequence[BitVec], nvars: int
) -> list[list[int]]:
    """Chow parameters for a batch of same-width cones in one pass.

    With numpy the whole batch is reduced with two vectorized popcount
    sweeps (an ``(N, nvars, words)`` broadcast); the fallback loops.
    Entry ``[k][i]`` is the (doubled) Chow parameter of variable ``i`` of
    cone ``k``.
    """
    if not tables:
        return []
    if _backend == "numpy" and not isinstance(tables[0].words, int):
        stacked = _np.stack([t.words for t in tables])  # (N, words)
        columns = _np.stack(
            [variable_column(v, nvars).words for v in range(nvars)]
        )  # (nvars, words)
        meet = stacked[:, None, :] & columns[None, :, :]
        counts = _np.bitwise_count(meet).sum(axis=2)  # (N, nvars)
        return (2 * counts).astype(int).tolist()
    return [
        [2 * (t & variable_column(v, nvars)).count() for v in range(nvars)]
        for t in tables
    ]


# ----------------------------------------------------------------------
# Weighted sums over all input points
# ----------------------------------------------------------------------


def weighted_sums(weights: Sequence[int | float]):
    """Weighted input sums of all ``2**l`` points, in point order.

    Built by the doubling recurrence ``S_{i+1} = S_i ++ (S_i + w_i)``, so
    index ``p`` has bit *i* of ``p`` selecting whether ``w_i`` is added —
    the same point convention as the truth tables.  Returns a numpy
    ``int64`` (or ``float64``) array, or a Python list on the fallback.
    """
    if _backend == "numpy":
        dtype = (
            _np.float64
            if any(isinstance(w, float) for w in weights)
            else _np.int64
        )
        sums = _np.zeros(1, dtype=dtype)
        for w in weights:
            sums = _np.concatenate([sums, sums + w])
        return sums
    sums = [0]
    for w in weights:
        sums = sums + [s + w for s in sums]
    return sums


def fires_table(sums, threshold: int) -> BitVec:
    """Pack ``sums >= threshold`` into a truth-table BitVec."""
    if _backend == "numpy" and not isinstance(sums, list):
        return BitVec.from_bool_array(sums >= threshold)
    return BitVec.from_bits([1 if s >= threshold else 0 for s in sums])


# ----------------------------------------------------------------------
# Packed N-point SOP evaluation (network simulation inner loop)
# ----------------------------------------------------------------------


def eval_cover_vecs(
    cover, fanin_vecs: Sequence[BitVec], width: int
) -> BitVec:
    """Evaluate an SOP over packed simulation words.

    ``fanin_vecs[i]`` carries the ``width`` simulation values of the
    cover's variable *i*; the result packs the cover's value on every
    vector.  One AND per literal per cube — the packed analogue of the
    historical int-mask loop, shared by both backends.
    """
    result = BitVec.zeros(width)
    for cube in cover.cubes:
        term = BitVec.ones(width)
        for var, phase in cube.literals():
            vec = fanin_vecs[var]
            term = (term & vec) if phase else term.andnot(vec)
            if term.is_zero():
                break
        else:
            result = result | term
            if result.is_ones():
                break
    return result
