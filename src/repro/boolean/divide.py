"""Algebraic (weak) division of SOP covers.

Algebraic division treats each cube as a set of literals and the cover as a
polynomial in those literals; it is the foundation of kernel extraction and
algebraic factoring (Brayton/McMullen, as surveyed in Hachtel & Somenzi).
Given covers F and D, ``divide(F, D)`` returns the quotient Q and remainder R
with ``F = Q*D + R`` (algebraic product, disjoint literal supports).
"""

from __future__ import annotations

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.errors import CoverError


def cube_divide(cube: Cube, divisor: Cube) -> Cube | None:
    """Divide one cube by another: remove divisor literals if all present."""
    if not divisor.contains(cube):
        # `divisor.contains(cube)` means every literal of divisor appears in
        # cube, i.e. cube is divisible by divisor.
        return None
    return Cube(cube.pos & ~divisor.pos, cube.neg & ~divisor.neg, cube.nvars)


def divide_by_cube(cover: Cover, divisor: Cube) -> Cover:
    """Quotient of a cover by a single cube (remainder implicit)."""
    out = []
    for cube in cover.cubes:
        q = cube_divide(cube, divisor)
        if q is not None:
            out.append(q)
    return Cover(out, cover.nvars)


def divide(cover: Cover, divisor: Cover) -> tuple[Cover, Cover]:
    """Weak division: return (quotient, remainder) with F = Q*D + R.

    The quotient is the largest cover Q such that Q*D is an algebraic product
    contained (cube-wise) in F.
    """
    if divisor.nvars != cover.nvars:
        raise CoverError("divisor over a different variable space")
    if divisor.is_zero():
        raise CoverError("division by the empty cover")
    quotient_cubes: set[Cube] | None = None
    for d in divisor.cubes:
        partials = {cube_divide(c, d) for c in cover.cubes}
        partials.discard(None)
        if quotient_cubes is None:
            quotient_cubes = partials  # type: ignore[assignment]
        else:
            quotient_cubes &= partials  # type: ignore[arg-type]
        if not quotient_cubes:
            return Cover.zero(cover.nvars), cover
    assert quotient_cubes is not None
    # Keep the product algebraic: quotient cubes must not mention divisor
    # variables (cubes that do simply stay in the remainder).
    dsupport = divisor.support
    quotient_cubes = {q for q in quotient_cubes if not (q.support & dsupport)}
    if not quotient_cubes:
        return Cover.zero(cover.nvars), cover
    quotient = Cover(sorted(quotient_cubes), cover.nvars)
    product = algebraic_product(quotient, divisor)
    remainder = Cover(
        [c for c in cover.cubes if c not in set(product.cubes)], cover.nvars
    )
    return quotient, remainder


def algebraic_product(a: Cover, b: Cover) -> Cover:
    """Pairwise cube concatenation; requires disjoint literal supports."""
    out = []
    for ca in a.cubes:
        for cb in b.cubes:
            if ca.support & cb.support:
                raise CoverError(
                    "algebraic product of covers with overlapping supports"
                )
            out.append(Cube(ca.pos | cb.pos, ca.neg | cb.neg, a.nvars))
    return Cover(out, a.nvars)


def common_cube(cover: Cover) -> Cube:
    """The largest cube dividing every cube of the cover."""
    if cover.is_zero():
        return Cube.full(cover.nvars)
    pos = neg = ~0
    for cube in cover.cubes:
        pos &= cube.pos
        neg &= cube.neg
    mask = (1 << cover.nvars) - 1
    return Cube(pos & mask, neg & mask, cover.nvars)


def is_cube_free(cover: Cover) -> bool:
    """True when no single literal divides every cube."""
    return common_cube(cover).is_full() and cover.num_cubes > 0


def make_cube_free(cover: Cover) -> tuple[Cover, Cube]:
    """Strip the largest common cube; return (cube-free cover, that cube)."""
    cc = common_cube(cover)
    if cc.is_full():
        return cover, cc
    return divide_by_cube(cover, cc), cc
