"""Sum-of-products covers and the classic recursive-paradigm operations.

A :class:`Cover` is an immutable set of :class:`~repro.boolean.cube.Cube`
objects over a shared variable space.  It provides the operations the rest of
the library is built on: cofactor, tautology, complement, containment,
equivalence, and the cheap single-cube-containment minimization.  Tautology
and complement follow the unate-recursive paradigm of espresso: reduce on
unate variables, branch (Shannon) on the most binate variable.
"""

from __future__ import annotations

import functools
from collections.abc import Iterable, Iterator, Sequence

from repro.boolean import bitset
from repro.boolean.bitset import MAX_TABLE_VARS, BitVec
from repro.boolean.cube import Cube
from repro.errors import CoverError


class Cover:
    """An immutable SOP cover: the OR of a set of cubes.

    The empty cover is the constant-0 function; a cover containing the
    universal cube is the constant-1 function (after SCC it is exactly
    ``[Cube.full]``).

    Exact duplicate cubes are dropped at construction (first occurrence
    wins), so downstream normal forms never re-deduplicate.  Expensive
    derived data — the packed truth table, the SCC form, the canonical
    key, literal/support tallies — is memoized on the frozen instance;
    the caches are dropped by pickling (``__reduce__`` rebuilds through
    the constructor) and never observable through the public API.  The
    one exception is the ``scc() is self`` marker: a cover produced *by*
    :meth:`scc` carries its kept-cube order from the parent cover's
    tie-break, which is not recomputable from its own cubes — dropping
    the marker would let a pickled copy re-reduce into a reordered cover
    and break byte-identity between local and remote synthesis.
    """

    __slots__ = (
        "cubes",
        "nvars",
        "_table",
        "_scc",
        "_ckey",
        "_nlits",
        "_supp",
    )

    def __init__(self, cubes: Iterable[Cube], nvars: int):
        cubes = tuple(dict.fromkeys(cubes))
        for cube in cubes:
            if cube.nvars != nvars:
                raise CoverError(
                    f"cube over {cube.nvars} variables in a cover over {nvars}"
                )
        object.__setattr__(self, "cubes", cubes)
        object.__setattr__(self, "nvars", nvars)
        object.__setattr__(self, "_table", None)
        object.__setattr__(self, "_scc", None)
        object.__setattr__(self, "_ckey", None)
        object.__setattr__(self, "_nlits", None)
        object.__setattr__(self, "_supp", None)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Cover is immutable")

    def __reduce__(self):
        # Slotted immutables can't use default pickling (it restores via
        # setattr); rebuild through the constructor instead.  The memo
        # caches are all pure functions of ``cubes`` except the self-SCC
        # marker, which records *assigned* order and must survive.
        if self._scc is self:
            return (_restore_scc_form, (self.cubes, self.nvars))
        return (Cover, (self.cubes, self.nvars))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, nvars: int) -> "Cover":
        """The constant-0 function."""
        return cls((), nvars)

    @classmethod
    def one(cls, nvars: int) -> "Cover":
        """The constant-1 function."""
        return cls((Cube.full(nvars),), nvars)

    @classmethod
    def from_strings(cls, rows: Sequence[str]) -> "Cover":
        """Build a cover from positional-notation rows (all equal length)."""
        if not rows:
            raise CoverError("from_strings needs at least one row; use zero()")
        nvars = len(rows[0])
        cubes = []
        for row in rows:
            if len(row) != nvars:
                raise CoverError("rows of unequal length")
            cubes.append(Cube.from_string(row))
        return cls(cubes, nvars)

    @classmethod
    def literal(cls, var: int, phase: bool, nvars: int) -> "Cover":
        """A single-literal cover: ``x`` or ``x'``."""
        return cls((Cube.from_literals({var: phase}, nvars),), nvars)

    @classmethod
    def from_truth_table(cls, bits: Sequence[int], nvars: int) -> "Cover":
        """Build the minterm canonical cover from a 2**nvars truth table.

        ``bits[p]`` is the function value at point ``p`` where bit *i* of
        ``p`` is the value of variable *i*.
        """
        if len(bits) != 1 << nvars:
            raise CoverError("truth table length must be 2**nvars")
        cubes = [Cube.minterm(p, nvars) for p, b in enumerate(bits) if b]
        return cls(cubes, nvars)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        """Total literal count over all cubes (an area proxy, cached)."""
        if self._nlits is None:
            object.__setattr__(
                self,
                "_nlits",
                sum(cube.num_literals for cube in self.cubes),
            )
        return self._nlits

    @property
    def support(self) -> int:
        """Bitmask of variables that appear in some cube (cached)."""
        if self._supp is None:
            mask = 0
            for cube in self.cubes:
                mask |= cube.support
            object.__setattr__(self, "_supp", mask)
        return self._supp

    def support_vars(self) -> list[int]:
        """Sorted list of variable indices in the support."""
        mask = self.support
        return [i for i in range(self.nvars) if (mask >> i) & 1]

    def is_zero(self) -> bool:
        """True when the cover has no cubes (syntactic constant 0)."""
        return not self.cubes

    def is_one(self) -> bool:
        """Semantic constant-1 test (tautology)."""
        return self.is_tautology()

    def column_phases(self, var: int) -> tuple[int, int]:
        """Count of (positive, negative) occurrences of ``var``."""
        bit = 1 << var
        pos = sum(1 for c in self.cubes if c.pos & bit)
        neg = sum(1 for c in self.cubes if c.neg & bit)
        return pos, neg

    def to_strings(self) -> list[str]:
        return [cube.to_string() for cube in self.cubes]

    def packable(self) -> bool:
        """True when the variable space fits the packed truth-table kernels."""
        return self.nvars <= MAX_TABLE_VARS

    def packed_table(self) -> BitVec:
        """The packed truth table (cached; ``nvars <= MAX_TABLE_VARS`` only).

        This is the substrate every exponential query below rides on: one
        word-parallel AND per literal per cube, instead of a Python loop
        over the ``2**nvars`` points.
        """
        if self._table is None:
            if not self.packable():
                raise CoverError(
                    f"cover over {self.nvars} variables exceeds the "
                    f"{MAX_TABLE_VARS}-variable packed-table bound"
                )
            object.__setattr__(
                self,
                "_table",
                bitset.key_table(
                    (self.nvars, tuple((c.pos, c.neg) for c in self.cubes))
                ),
            )
        return self._table

    def evaluate(self, point: int) -> bool:
        """Evaluate the function at a point bitmask.

        Reads the packed table when one is cached (repeated point queries
        amortize to a single bit test); falls back to the cube loop for
        one-off evaluations and unpackable widths.
        """
        if self._table is not None:
            return self._table.test(point)
        return any(cube.evaluate(point) for cube in self.cubes)

    def truth_table(self) -> list[int]:
        """Full truth table as a list of 0/1 (exponential; small n only)."""
        return self.packed_table().to_bits()

    def num_minterms(self) -> int:
        """Exact minterm count of the function."""
        if self.packable():
            return self.packed_table().count()
        return _count_minterms(self.canonical_key())

    # ------------------------------------------------------------------
    # Minimization and normal forms
    # ------------------------------------------------------------------
    def scc(self) -> "Cover":
        """Single-cube containment: drop cubes contained in another cube.

        If the universal cube is present the result is exactly the
        constant-1 cover.  Duplicates were already dropped at construction;
        the result is cached on the instance (and the result knows it is
        its own SCC form, so chains of normal-form calls are free).
        """
        if self._scc is None:
            kept: list[Cube] = []
            # Sort by increasing size so containers are seen before
            # containees.  The set() pre-pass is kept deliberately: its
            # iteration order is the historical tie-break among equal-size
            # cubes, and downstream decompositions are pinned to it.
            for cube in sorted(set(self.cubes), key=lambda c: c.num_literals):
                if not any(k.contains(cube) for k in kept):
                    kept.append(cube)
            reduced = Cover(kept, self.nvars)
            object.__setattr__(reduced, "_scc", reduced)
            object.__setattr__(self, "_scc", reduced)
        return self._scc

    def canonical_key(self) -> tuple:
        """A hashable canonical key for memoization (after SCC, sorted).

        Cached on the instance: checkers, cache tiers, and lint rules all
        re-derive the key of the same frozen cover.
        """
        if self._ckey is None:
            reduced = self.scc()
            object.__setattr__(
                self,
                "_ckey",
                (
                    self.nvars,
                    tuple(sorted((c.pos, c.neg) for c in reduced.cubes)),
                ),
            )
        return self._ckey

    # ------------------------------------------------------------------
    # Cofactors
    # ------------------------------------------------------------------
    def cofactor(self, cube: Cube) -> "Cover":
        """The cover cofactor with respect to a cube."""
        result = []
        for c in self.cubes:
            cf = c.cofactor(cube)
            if cf is not None:
                result.append(cf)
        return Cover(result, self.nvars)

    def restrict(self, var: int, value: bool) -> "Cover":
        """Cofactor with respect to a single variable assignment."""
        result = []
        for c in self.cubes:
            cf = c.restrict(var, value)
            if cf is not None:
                result.append(cf)
        return Cover(result, self.nvars)

    def shannon(self, var: int) -> tuple["Cover", "Cover"]:
        """Return ``(f_{var=0}, f_{var=1})``."""
        return self.restrict(var, False), self.restrict(var, True)

    def smooth(self, var: int) -> "Cover":
        """Existential abstraction of ``var`` (OR of both cofactors)."""
        zero, one = self.shannon(var)
        return Cover(zero.cubes + one.cubes, self.nvars).scc()

    # ------------------------------------------------------------------
    # Tautology / containment / equivalence
    # ------------------------------------------------------------------
    def is_tautology(self) -> bool:
        """True when the function is the constant 1.

        Packed tables decide small spaces in a handful of word compares;
        wider covers run the unate-recursive paradigm.
        """
        if self.packable():
            return self.packed_table().is_ones()
        return _is_tautology(self.canonical_key())

    def contains_cube(self, cube: Cube) -> bool:
        """True when every minterm of ``cube`` is covered."""
        if self.packable():
            return (
                bitset.cube_table(cube.pos, cube.neg, self.nvars)
                .andnot(self.packed_table())
                .is_zero()
            )
        return self.cofactor(cube).is_tautology()

    def covers(self, other: "Cover") -> bool:
        """True when this function is implied by ``other`` (other ≤ self)."""
        if self.packable() and other.nvars == self.nvars:
            return other.packed_table().andnot(self.packed_table()).is_zero()
        return all(self.contains_cube(cube) for cube in other.cubes)

    def equivalent(self, other: "Cover") -> bool:
        """Semantic equality of the two functions."""
        if self.nvars != other.nvars:
            raise CoverError("covers over different variable counts")
        if self.packable():
            return self.packed_table() == other.packed_table()
        return self.covers(other) and other.covers(self)

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def union(self, other: "Cover") -> "Cover":
        """OR of the two functions (with SCC cleanup)."""
        if self.nvars != other.nvars:
            raise CoverError("covers over different variable counts")
        return Cover(self.cubes + other.cubes, self.nvars).scc()

    def product(self, other: "Cover") -> "Cover":
        """AND of the two functions (pairwise cube products, SCC cleanup)."""
        if self.nvars != other.nvars:
            raise CoverError("covers over different variable counts")
        result = []
        for a in self.cubes:
            for b in other.cubes:
                prod = a.intersect(b)
                if prod is not None:
                    result.append(prod)
        return Cover(result, self.nvars).scc()

    def complement(self) -> "Cover":
        """NOT of the function, via the unate-recursive paradigm."""
        key = self.canonical_key()
        nvars, rows = key
        return Cover([Cube(p, n, nvars) for (p, n) in _complement(key)], nvars)

    def xor(self, other: "Cover") -> "Cover":
        """Exclusive OR of the two functions."""
        return self.product(other.complement()).union(other.product(self.complement()))

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def compose(self, var: int, g: "Cover") -> "Cover":
        """Substitute function ``g`` (same variable space) for variable ``var``.

        Implements ``f(x <- g) = g * f_{x=1} + g' * f_{x=0}``.  When ``var``
        appears only in positive phase the complement branch collapses and no
        complement of ``g`` is required.
        """
        if g.nvars != self.nvars:
            raise CoverError("compose requires matching variable spaces")
        f0, f1 = self.shannon(var)
        result = g.product(f1)
        if f0.is_zero():
            return result
        if f1.covers(f0):
            # f0 ⊆ f1 (e.g. var unate-positive): g*f1 + g'*f0 == g*f1 + f0,
            # so no complement of g is required.
            return result.union(f0)
        return result.union(g.complement().product(f0))

    # ------------------------------------------------------------------
    # Iteration over minterms (verification helpers)
    # ------------------------------------------------------------------
    def minterms(self) -> Iterator[int]:
        """Yield covered points, each exactly once (small n only)."""
        seen: set[int] = set()
        for cube in self.cubes:
            for point in cube.minterms():
                if point not in seen:
                    seen.add(point)
                    yield point

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def __eq__(self, other: object) -> bool:
        """Syntactic equality (same cubes as sets). Use equivalent() for semantics."""
        if not isinstance(other, Cover):
            return NotImplemented
        return self.nvars == other.nvars and set(self.cubes) == set(other.cubes)

    def __hash__(self) -> int:
        return hash((self.nvars, frozenset(self.cubes)))

    def __repr__(self) -> str:
        rows = " + ".join(self.to_strings()) or "0"
        return f"Cover({rows})"


# ----------------------------------------------------------------------
# Recursive kernels, memoized on canonical keys.
#
# Keys are (nvars, tuple of sorted (pos, neg) pairs) — plain hashable data,
# cheap to build and to cache.  The caches make repeated threshold checks on
# structurally identical nodes (ubiquitous during synthesis) nearly free.
# ----------------------------------------------------------------------


def _restore_scc_form(cubes: tuple, nvars: int) -> Cover:
    """Unpickle a cover that is its own SCC form, keeping the marker."""
    cover = Cover(cubes, nvars)
    object.__setattr__(cover, "_scc", cover)
    return cover


def _key_restrict(key: tuple, var: int, value: bool) -> tuple:
    nvars, rows = key
    bit = 1 << var
    out = []
    for pos, neg in rows:
        if value:
            if neg & bit:
                continue
            out.append((pos & ~bit, neg))
        else:
            if pos & bit:
                continue
            out.append((pos, neg & ~bit))
    return (nvars, tuple(sorted(set(out))))


def _key_most_binate_var(key: tuple) -> int | None:
    """Pick the branching variable: most binate, ties by total occurrence."""
    nvars, rows = key
    best_var = None
    best_rank = None
    for var in range(nvars):
        bit = 1 << var
        pos = sum(1 for p, n in rows if p & bit)
        neg = sum(1 for p, n in rows if n & bit)
        if pos + neg == 0:
            continue
        binate = min(pos, neg)
        rank = (binate, pos + neg)
        if best_rank is None or rank > best_rank:
            best_rank = rank
            best_var = var
    return best_var


@functools.lru_cache(maxsize=200_000)
def _is_tautology(key: tuple) -> bool:
    nvars, rows = key
    if not rows:
        return False
    if any(p == 0 and n == 0 for p, n in rows):
        return True
    # A necessary condition: the cover must span at least 2**nvars_in_support
    # minterms; quick reject when the cube count is too small.
    support = 0
    for p, n in rows:
        support |= p | n
    free = nvars - support.bit_count()
    total = sum(1 << (nvars - (p | n).bit_count() - free) for p, n in rows)
    if total < (1 << support.bit_count()):
        return False
    # Unate reduction: if some supported variable is unate, the cover is a
    # tautology iff the cubes independent of it form one.
    for var in range(nvars):
        bit = 1 << var
        if not (support >> var) & 1:
            continue
        pos = any(p & bit for p, n in rows)
        neg = any(n & bit for p, n in rows)
        if pos and neg:
            continue
        reduced = tuple(sorted(set(
            (p, n) for p, n in rows if not ((p | n) & bit)
        )))
        return _is_tautology((nvars, reduced))
    var = _key_most_binate_var(key)
    if var is None:
        # No supported variable at all and no universal cube: empty space.
        return bool(rows)
    return _is_tautology(_key_restrict(key, var, False)) and _is_tautology(
        _key_restrict(key, var, True)
    )


@functools.lru_cache(maxsize=200_000)
def _complement(key: tuple) -> tuple:
    """Complement on canonical keys; returns a tuple of (pos, neg) rows."""
    nvars, rows = key
    if not rows:
        return ((0, 0),)
    if any(p == 0 and n == 0 for p, n in rows):
        return ()
    if len(rows) == 1:
        # De Morgan on a single cube: OR of complemented literals.
        pos, neg = rows[0]
        out = []
        for var in range(nvars):
            bit = 1 << var
            if pos & bit:
                out.append((0, bit))
            elif neg & bit:
                out.append((bit, 0))
        return tuple(sorted(out))
    var = _key_most_binate_var(key)
    assert var is not None  # len(rows) > 1 without universal cube => support
    bit = 1 << var
    c0 = _complement(_key_restrict(key, var, False))
    c1 = _complement(_key_restrict(key, var, True))
    merged: dict[tuple[int, int], None] = {}
    c0set = set(c0)
    for pos, neg in c1:
        if (pos, neg) in c0set:
            merged[(pos, neg)] = None  # present in both branches: drop literal
        else:
            merged[(pos | bit, neg)] = None
    for pos, neg in c0:
        if (pos, neg) not in set(c1):
            merged[(pos, neg | bit)] = None
    # SCC cleanup.
    items = sorted(merged, key=lambda r: (r[0] | r[1]).bit_count())
    kept: list[tuple[int, int]] = []
    for pos, neg in items:
        if not any((kp & ~pos) == 0 and (kn & ~neg) == 0 for kp, kn in kept):
            kept.append((pos, neg))
    return tuple(sorted(kept))


@functools.lru_cache(maxsize=200_000)
def _count_minterms(key: tuple) -> int:
    nvars, rows = key
    if not rows:
        return 0
    if len(rows) == 1:
        p, n = rows[0]
        return 1 << (nvars - (p | n).bit_count())
    var = _key_most_binate_var(key)
    if var is None:
        return 1 << nvars  # only universal cubes survive canonicalization
    # Each cofactor is counted over the full nvars-variable space, in which
    # the branching variable is free, so each contributes half its count.
    both = _count_minterms(_key_restrict(key, var, False)) + _count_minterms(
        _key_restrict(key, var, True)
    )
    return both // 2
