"""Kernel and co-kernel enumeration for algebraic covers.

A *kernel* of a cover F is a cube-free quotient of F by a cube (the
*co-kernel*).  Kernels are the classic source of common algebraic divisors in
multi-level synthesis: two functions share a nontrivial common divisor of more
than one cube iff they share a kernel intersection of more than one cube
(the Brayton–McMullen theorem).  This module implements the recursive
enumeration with the standard pruning on literal order, plus helpers used by
the network-level ``extract`` transform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.divide import divide_by_cube, make_cube_free


@dataclass(frozen=True)
class Kernel:
    """A kernel with one witnessing co-kernel cube and its recursion level.

    ``level`` 0 means the kernel has no kernels other than itself (no literal
    appears in more than one of its cubes).
    """

    cover: Cover
    cokernel: Cube
    level: int


def _literal_list(nvars: int) -> list[tuple[int, bool]]:
    """All literals in a fixed total order: (var 0, +), (var 0, -), ..."""
    out = []
    for var in range(nvars):
        out.append((var, True))
        out.append((var, False))
    return out


def _literal_count(cover: Cover, var: int, phase: bool) -> int:
    bit = 1 << var
    if phase:
        return sum(1 for c in cover.cubes if c.pos & bit)
    return sum(1 for c in cover.cubes if c.neg & bit)


def kernels(cover: Cover, include_self: bool = True) -> list[Kernel]:
    """Enumerate all kernels of ``cover`` (each with one co-kernel witness).

    When ``include_self`` is set and the cover is itself cube-free, the cover
    is reported as a kernel with the universal co-kernel, matching the
    conventional definition.
    """
    cover = cover.scc()
    found: dict[tuple, Kernel] = {}
    free, stripped = make_cube_free(cover)
    base_cokernel = stripped
    _kernel_rec(free, base_cokernel, 0, found)
    result = list(found.values())
    # The cube-free residue of the cover is itself a kernel.  When a
    # nontrivial common cube was stripped it is a *proper* kernel (its
    # co-kernel is that cube) and is always reported; when the cover was
    # already cube-free it is the trivial self-kernel, reported only when
    # ``include_self`` is set.
    if include_self or not stripped.is_full():
        key = free.canonical_key()
        if key not in found and free.num_cubes >= 2:
            level = 1 + max((k.level for k in result), default=-1)
            result.append(Kernel(free, base_cokernel, level))
    return result


def _kernel_rec(
    cover: Cover,
    cokernel: Cube,
    min_literal_index: int,
    found: dict[tuple, Kernel],
) -> int:
    """Recursive kerneling; returns the level of ``cover`` as a kernel."""
    literals = _literal_list(cover.nvars)
    max_child_level = -1
    for idx in range(min_literal_index, len(literals)):
        var, phase = literals[idx]
        if _literal_count(cover, var, phase) < 2:
            continue
        lit_cube = Cube.from_literals({var: phase}, cover.nvars)
        quotient = divide_by_cube(cover, lit_cube)
        quotient, extra = make_cube_free(quotient)
        # Pruning: if the stripped common cube contains a literal earlier in
        # the order, this kernel was (or will be) found from that literal.
        if _has_earlier_literal(extra, idx, literals):
            continue
        child_cokernel = _cube_product(cokernel, lit_cube, extra)
        key = quotient.canonical_key()
        if key in found:
            level = found[key].level
        else:
            level = _kernel_rec(quotient, child_cokernel, idx + 1, found)
            found[key] = Kernel(quotient, child_cokernel, level)
        max_child_level = max(max_child_level, level)
    return max_child_level + 1


def _has_earlier_literal(
    cube: Cube, index: int, literals: list[tuple[int, bool]]
) -> bool:
    for j in range(index):
        var, phase = literals[j]
        bit = 1 << var
        if (phase and cube.pos & bit) or (not phase and cube.neg & bit):
            return True
    return False


def _cube_product(a: Cube, b: Cube, c: Cube) -> Cube:
    return Cube(a.pos | b.pos | c.pos, a.neg | b.neg | c.neg, a.nvars)


def level0_kernels(cover: Cover) -> list[Kernel]:
    """Only the level-0 kernels (leaves of the kerneling tree)."""
    return [k for k in kernels(cover) if k.level == 0]


def kernel_value(kernel: Kernel, uses: int) -> int:
    """Literal savings of extracting this kernel used ``uses`` times.

    A rough literal-count model: extracting divisor D with c cubes and l
    literals, used u times with co-kernels of k literals each, saves about
    ``(u - 1) * l`` literals at the cost of one new node.
    """
    return (uses - 1) * kernel.cover.num_literals - 1
