"""Unateness analysis of SOP covers.

Every threshold function is unate (Kohavi), so unateness is the cheap first
filter TELS applies before spending an ILP solve on a node.  This module
classifies each variable of a cover as positive unate, negative unate, binate,
or absent, both *syntactically* (phases appearing in the given cover) and
*semantically* (monotonicity of the underlying function).

The synthesis flow works on algebraically-factored networks whose node covers
are already SCC-minimal, so syntactic unateness is what the paper's algorithms
consume; the semantic check is provided for validation and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.boolean.cover import Cover


class Phase(Enum):
    """Classification of one variable's role in a function."""

    ABSENT = "absent"
    POSITIVE = "positive"
    NEGATIVE = "negative"
    BINATE = "binate"


@dataclass(frozen=True)
class UnatenessReport:
    """Per-variable phase classification of a cover."""

    phases: tuple[Phase, ...]

    @property
    def is_unate(self) -> bool:
        """True when no variable is binate."""
        return Phase.BINATE not in self.phases

    @property
    def is_positive_unate(self) -> bool:
        """True when every present variable appears only positively."""
        return all(p in (Phase.ABSENT, Phase.POSITIVE) for p in self.phases)

    def binate_vars(self) -> list[int]:
        return [i for i, p in enumerate(self.phases) if p is Phase.BINATE]

    def negative_vars(self) -> list[int]:
        return [i for i, p in enumerate(self.phases) if p is Phase.NEGATIVE]


def syntactic_unateness(cover: Cover) -> UnatenessReport:
    """Classify each variable by the literal phases present in the cover."""
    phases = []
    for var in range(cover.nvars):
        pos, neg = cover.column_phases(var)
        if pos and neg:
            phases.append(Phase.BINATE)
        elif pos:
            phases.append(Phase.POSITIVE)
        elif neg:
            phases.append(Phase.NEGATIVE)
        else:
            phases.append(Phase.ABSENT)
    return UnatenessReport(tuple(phases))


def semantic_unateness(cover: Cover) -> UnatenessReport:
    """Classify each variable by monotonicity of the function itself.

    Variable x is positive (negative) unate when ``f_{x=0} <= f_{x=1}``
    (``f_{x=1} <= f_{x=0}``); independent when both hold; binate when neither
    holds.  This is exact but costs containment checks per variable.
    """
    phases = []
    for var in range(cover.nvars):
        f0, f1 = cover.shannon(var)
        up = f1.covers(f0)  # f0 <= f1
        down = f0.covers(f1)  # f1 <= f0
        if up and down:
            phases.append(Phase.ABSENT)
        elif up:
            phases.append(Phase.POSITIVE)
        elif down:
            phases.append(Phase.NEGATIVE)
        else:
            phases.append(Phase.BINATE)
    return UnatenessReport(tuple(phases))


def is_unate(cover: Cover, semantic: bool = False) -> bool:
    """Convenience wrapper: True when no variable is binate."""
    report = semantic_unateness(cover) if semantic else syntactic_unateness(cover)
    return report.is_unate


def to_positive_unate(cover: Cover) -> tuple[Cover, tuple[bool, ...]]:
    """Rewrite a (syntactically) unate cover in positive-unate form.

    Every negative-unate variable ``x`` is replaced by a fresh positive
    variable ``y = x'`` occupying the same index.  Returns the rewritten
    cover and a per-variable flag tuple (True where the variable was
    complemented) so weights can be mapped back per Section IV of the paper.
    """
    report = syntactic_unateness(cover)
    flipped = tuple(p is Phase.NEGATIVE for p in report.phases)
    from repro.boolean.cube import Cube

    cubes = []
    for cube in cover.cubes:
        pos, neg = cube.pos, cube.neg
        for var, flip in enumerate(flipped):
            bit = 1 << var
            if flip and (neg & bit):
                neg &= ~bit
                pos |= bit
        cubes.append(Cube(pos, neg, cover.nvars))
    return Cover(cubes, cover.nvars), flipped
