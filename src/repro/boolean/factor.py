"""Algebraic factoring of SOP covers into factored-form trees.

A factored form is an AND/OR tree over literals — the representation a
multi-level decomposition consumes.  ``factor`` implements the classic
literal-divisor quick-factoring (SIS's ``quick_factor``): repeatedly divide by
the most frequent literal, factoring quotient and remainder recursively, and
strip common cubes first.  The resulting tree drives the one-to-one mapping
baseline's technology decomposition into bounded-fanin simple gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.divide import divide_by_cube, make_cube_free


class FactorForm:
    """Base class of factored-form tree nodes."""

    def num_literals(self) -> int:
        raise NotImplementedError

    def evaluate(self, point: int) -> bool:
        raise NotImplementedError

    def to_expression(self, names: Sequence[str]) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FactorConst(FactorForm):
    value: bool

    def num_literals(self) -> int:
        return 0

    def evaluate(self, point: int) -> bool:
        return self.value

    def to_expression(self, names: Sequence[str]) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class FactorLit(FactorForm):
    var: int
    phase: bool

    def num_literals(self) -> int:
        return 1

    def evaluate(self, point: int) -> bool:
        value = bool((point >> self.var) & 1)
        return value if self.phase else not value

    def to_expression(self, names: Sequence[str]) -> str:
        return names[self.var] + ("" if self.phase else "'")


@dataclass(frozen=True)
class FactorAnd(FactorForm):
    children: tuple[FactorForm, ...]

    def num_literals(self) -> int:
        return sum(c.num_literals() for c in self.children)

    def evaluate(self, point: int) -> bool:
        return all(c.evaluate(point) for c in self.children)

    def to_expression(self, names: Sequence[str]) -> str:
        parts = []
        for child in self.children:
            text = child.to_expression(names)
            if isinstance(child, FactorOr):
                text = f"({text})"
            parts.append(text)
        return " ".join(parts)


@dataclass(frozen=True)
class FactorOr(FactorForm):
    children: tuple[FactorForm, ...]

    def num_literals(self) -> int:
        return sum(c.num_literals() for c in self.children)

    def evaluate(self, point: int) -> bool:
        return any(c.evaluate(point) for c in self.children)

    def to_expression(self, names: Sequence[str]) -> str:
        return " + ".join(c.to_expression(names) for c in self.children)


def _and(children: list[FactorForm]) -> FactorForm:
    flat: list[FactorForm] = []
    for child in children:
        if isinstance(child, FactorConst):
            if not child.value:
                return FactorConst(False)
            continue  # drop AND-identity
        if isinstance(child, FactorAnd):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return FactorConst(True)
    if len(flat) == 1:
        return flat[0]
    return FactorAnd(tuple(flat))


def _or(children: list[FactorForm]) -> FactorForm:
    flat: list[FactorForm] = []
    for child in children:
        if isinstance(child, FactorConst):
            if child.value:
                return FactorConst(True)
            continue  # drop OR-identity
        if isinstance(child, FactorOr):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return FactorConst(False)
    if len(flat) == 1:
        return flat[0]
    return FactorOr(tuple(flat))


def _cube_to_and(cube: Cube) -> FactorForm:
    return _and([FactorLit(var, phase) for var, phase in cube.literals()])


def _best_literal(cover: Cover) -> tuple[int, bool] | None:
    """Most frequent literal appearing in at least two cubes."""
    best = None
    best_count = 1
    for var in range(cover.nvars):
        pos, neg = cover.column_phases(var)
        if pos > best_count:
            best, best_count = (var, True), pos
        if neg > best_count:
            best, best_count = (var, False), neg
    return best


def factor(cover: Cover) -> FactorForm:
    """Factor a cover into an AND/OR tree (literal quick-factoring)."""
    cover = cover.scc()
    if cover.is_zero():
        return FactorConst(False)
    if any(c.is_full() for c in cover.cubes):
        return FactorConst(True)
    return _factor_rec(cover)


def _factor_rec(cover: Cover) -> FactorForm:
    stripped, cc = make_cube_free(cover)
    prefix = [FactorLit(var, phase) for var, phase in cc.literals()]
    body = _factor_cube_free(stripped)
    return _and(prefix + [body])


def _factor_cube_free(cover: Cover) -> FactorForm:
    if cover.num_cubes == 1:
        return _cube_to_and(cover.cubes[0])
    kernel_form = _factor_by_kernel(cover)
    if kernel_form is not None:
        return kernel_form
    lit = _best_literal(cover)
    if lit is None:
        return _or([_cube_to_and(c) for c in cover.cubes])
    var, phase = lit
    divisor = Cube.from_literals({var: phase}, cover.nvars)
    quotient = divide_by_cube(cover, divisor)
    product = {q.intersect(divisor) for q in quotient.cubes}
    remainder = Cover(
        [c for c in cover.cubes if c not in product], cover.nvars
    )
    left = _and([FactorLit(var, phase), _factor_rec(quotient)])
    if remainder.is_zero():
        return left
    return _or([left, _factor_rec(remainder)])


_KERNEL_FACTOR_CUBE_CAP = 24


def _factor_by_kernel(cover: Cover) -> FactorForm | None:
    """Try dividing by the most valuable proper kernel (GFACTOR step).

    Returns None when no kernel divisor yields a nontrivial quotient, in
    which case the caller falls back to literal quick-factoring.
    """
    from repro.boolean.divide import divide
    from repro.boolean.kernels import kernels

    if cover.num_cubes > _KERNEL_FACTOR_CUBE_CAP:
        return None
    best: tuple[int, Cover, Cover, Cover] | None = None
    for kern in kernels(cover, include_self=False):
        if kern.cover.num_cubes < 2:
            continue
        quotient, remainder = divide(cover, kern.cover)
        if quotient.num_cubes < 1:
            continue
        if quotient.num_cubes == 1 and quotient.cubes[0].is_full():
            continue  # F = 1 * D + R: no structure gained
        saved = (quotient.num_cubes - 1) * kern.cover.num_literals
        if saved <= 0:
            continue
        if best is None or saved > best[0]:
            best = (saved, quotient, kern.cover, remainder)
    if best is None:
        return None
    _, quotient, divisor, remainder = best
    product = _and([_factor_rec(quotient), _factor_rec(divisor)])
    if remainder.is_zero():
        return product
    return _or([product, _factor_rec(remainder)])


_LITERAL_COUNT_CACHE: dict[tuple, int] = {}


def factored_literal_count(cover: Cover) -> int:
    """Literal count of the factored form (multi-level area proxy).

    Memoized on the canonical cover key: the eliminate transform queries
    this for the same node functions over and over.
    """
    key = cover.canonical_key()
    cached = _LITERAL_COUNT_CACHE.get(key)
    if cached is None:
        cached = factor(cover).num_literals()
        if len(_LITERAL_COUNT_CACHE) > 100_000:
            _LITERAL_COUNT_CACHE.clear()
        _LITERAL_COUNT_CACHE[key] = cached
    return cached


def verify_factoring(cover: Cover, form: FactorForm) -> bool:
    """Exhaustively check a factored form against its cover (small n only)."""
    return all(
        form.evaluate(p) == cover.evaluate(p) for p in range(1 << cover.nvars)
    )
