"""TELS reproduction: threshold logic network synthesis (DATE 2004).

A from-scratch Python reproduction of *Synthesis and Optimization of
Threshold Logic Networks with Application to Nanotechnologies* (Zhang,
Gupta, Zhong, Jha; DATE 2004) — the TELS tool — together with every
substrate it needs: a two-level Boolean engine, a multi-level network
optimizer standing in for SIS, BLIF/PLA I/O, an exact ILP solver standing in
for LP_SOLVE, benchmark generators standing in for the MCNC suite, and the
experiment harnesses that regenerate every table and figure of the paper.

Quickstart::

    from repro import (
        read_blif, prepare_tels, synthesize, SynthesisOptions,
        verify_threshold_network,
    )

    network = read_blif("circuit.blif")
    prepared = prepare_tels(network)
    threshold_net = synthesize(prepared, SynthesisOptions(psi=3))
    assert verify_threshold_network(network, threshold_net)
    for gate in threshold_net.gates():
        print(gate.name, gate.inputs, gate.vector)
"""

from repro.boolean import BooleanFunction, Cover, Cube
from repro.errors import (
    BlifError,
    CoverError,
    IlpError,
    NetworkError,
    PlaError,
    ReproError,
    SynthesisError,
)

try:
    # The synthesis layers require numpy; the Boolean substrate above does
    # not (the bitset package falls back to pure-Python int bitmasks).  A
    # numpy-free interpreter still gets the cover algebra and the errors.
    from repro.core import (
        NetworkStats,
        SynthesisOptions,
        ThresholdChecker,
        ThresholdGate,
        ThresholdNetwork,
        WeightThresholdVector,
        is_threshold_function,
        network_stats,
        one_to_one_map,
        synthesize,
        verify_threshold_network,
    )
    from repro.core.synthesis import synthesize_with_report
    from repro.io import parse_blif, read_blif, write_blif
    from repro.network import BooleanNetwork, script_algebraic, script_boolean
    from repro.network.scripts import prepare_one_to_one, prepare_tels
    from repro.benchgen import build_benchmark, benchmark_names
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    try:
        import numpy as _np_probe  # noqa: F401
    except ImportError:
        pass  # genuinely numpy-free: boolean-substrate-only mode
    else:
        raise  # numpy exists, so the failure is a real bug - surface it

__version__ = "1.0.0"

__all__ = [
    "BooleanFunction",
    "Cover",
    "Cube",
    "BooleanNetwork",
    "ThresholdGate",
    "ThresholdNetwork",
    "WeightThresholdVector",
    "ThresholdChecker",
    "is_threshold_function",
    "SynthesisOptions",
    "synthesize",
    "synthesize_with_report",
    "one_to_one_map",
    "network_stats",
    "NetworkStats",
    "verify_threshold_network",
    "script_algebraic",
    "script_boolean",
    "prepare_one_to_one",
    "prepare_tels",
    "parse_blif",
    "read_blif",
    "write_blif",
    "build_benchmark",
    "benchmark_names",
    "ReproError",
    "BlifError",
    "PlaError",
    "NetworkError",
    "CoverError",
    "IlpError",
    "SynthesisError",
    "__version__",
]
