"""The default single-threshold LTG backend.

This is the paper's gate model, re-expressed through :class:`GateModel`.
It must stay behaviorally identical to the pre-refactor flow (the
differential test in ``tests/gates/test_differential.py`` holds it to the
golden baseline), so it keeps the historical cache-key shapes: the
4-tuple vector-tier key and the un-suffixed persistent entry key.  Every
other backend appends its fingerprint to both.
"""

from __future__ import annotations

from repro.gates.base import GateModel, register_model


@register_model
class LtgModel(GateModel):
    """Single-threshold linear threshold gates, ``f=1 iff sum(w·x) >= T``."""

    name = "ltg"
    fingerprint = "ltg-v1"
    supports_binate = False

    def store_key(self, canonical, delta_on, delta_off, max_weight):
        # Historical 4-tuple: pre-refactor caches (and the differential
        # golden baseline) depend on this exact shape.
        return (canonical, delta_on, delta_off, max_weight)

    def check_cover(self, checker, cover, canonical):
        return checker.solve_ltg(cover, canonical)

    def buffer_vector(self, delta_on, delta_off):
        # Historical fixed <1; 1> buffer, independent of the tolerances.
        from repro.core.threshold import WeightThresholdVector

        return WeightThresholdVector((1,), 1)
