"""Pluggable gate models: the technology layer under the TELS flow.

Importing this package registers the built-in backends (``ltg``,
``multi-threshold``, ``flash``); see ``docs/GATE_MODELS.md`` for the
interface contract and how to add one.
"""

from repro.gates.base import (
    GateModel,
    get_model,
    model_for_fingerprint,
    model_names,
    register_model,
    registered_models,
)
from repro.gates.flash import FlashModel
from repro.gates.ltg import LtgModel
from repro.gates.multi_threshold import MultiThresholdModel

__all__ = [
    "GateModel",
    "LtgModel",
    "MultiThresholdModel",
    "FlashModel",
    "get_model",
    "model_for_fingerprint",
    "model_names",
    "register_model",
    "registered_models",
]
