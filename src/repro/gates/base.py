"""The :class:`GateModel` interface and the backend registry.

A gate model is everything the synthesis flow must know about a target gate
technology, factored out of the single-threshold assumptions that used to be
baked into :mod:`repro.core.threshold`, :mod:`repro.core.identify`, and the
ILP chain:

* **representation** — which :data:`~repro.core.threshold.GateVector`
  flavours the model emits (the LTG's ``<w; T>``, the multi-threshold
  ``<w; T1..Tk>``, ...);
* **feasibility** — :meth:`GateModel.check_cover` decides whether one cover
  is realizable as a single gate and returns the solved vector.  Models
  drive the shared LTG machinery (Chow fast path + Fig. 6 ILP) through
  :meth:`~repro.core.identify.ThresholdChecker.solve_ltg` and layer their
  own search or tolerance algebra on top;
* **margins** — :meth:`GateModel.gate_margins` recomputes a gate's defect
  margins under the model's firing rule (lint's TLM101 asks the model
  instead of assuming ``sum(w·x) >= T``);
* **NP-transform algebra** — :meth:`encode_canonical` /
  :meth:`decode_canonical` map vectors to and from NP-canonical space, and
  :meth:`verify_vector` re-checks a transformed vector against a cover's
  ON/OFF sets, which is what lets a model's solves live in the persistent
  NP-canonical cache;
* **fingerprint** — a stable string versioning the model *and* its
  parameters.  The fingerprint is folded into both the in-memory store key
  and the persistent entry key, so two models (or two parameterizations of
  one model) never share cache entries.  The default ``ltg`` model keeps
  the historical un-suffixed key shapes, so existing caches stay warm.

Registering a backend (see ``docs/GATE_MODELS.md``)::

    @register_model
    class MyModel(GateModel):
        name = "my-model"
        ...
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable

from repro.core.threshold import (
    GateVector,
    ThresholdGate,
    WeightThresholdVector,
    make_or_vector,
)
from repro.errors import ReproError


class GateModel(abc.ABC):
    """One pluggable gate technology: representation, feasibility, algebra.

    Subclasses must define the class attributes ``name`` (the registry key
    and ``--gate-model`` argument) and ``fingerprint`` (the cache-key
    version string; bump it whenever the model's solutions change shape or
    semantics).  ``supports_binate`` tells the cone synthesizer whether
    binate covers are worth checking before splitting (the LTG's answer is
    no: a binate function is never a single threshold gate).
    """

    #: Registry key, e.g. ``"ltg"``; also the CLI ``--gate-model`` value.
    name: str = ""
    #: Stable version string folded into every cache key (see module doc).
    fingerprint: str = ""
    #: Whether :meth:`check_cover` can realize binate covers.
    supports_binate: bool = False

    # -- cache keys ----------------------------------------------------
    def store_key(
        self,
        canonical: tuple,
        delta_on: int,
        delta_off: int,
        max_weight: int | None,
    ) -> tuple:
        """The vector-tier memo key for one (cover, tolerance) instance.

        Non-default models append their fingerprint so no two models can
        ever exchange cache entries; the ``ltg`` model overrides this to
        keep the historical 4-tuple.
        """
        return (canonical, delta_on, delta_off, max_weight, self.fingerprint)

    # -- feasibility ---------------------------------------------------
    @abc.abstractmethod
    def check_cover(self, checker, cover, canonical) -> GateVector | None:
        """Solve one cover as a single gate of this model, or None.

        ``checker`` is the calling
        :class:`~repro.core.identify.ThresholdChecker` — it carries the
        tolerances, the solver configuration, the stats counters, and
        :meth:`~repro.core.identify.ThresholdChecker.solve_ltg`, the shared
        single-threshold pipeline.  ``canonical`` is the cover's canonical
        key (already computed by the checker).
        """

    # -- fixed-structure vectors (cone emission helpers) ---------------
    def or_vector(self, k: int, delta_on: int, delta_off: int) -> GateVector:
        """The k-input OR vector this model emits for split roots."""
        return make_or_vector(k, delta_on, delta_off)

    def buffer_vector(self, delta_on: int, delta_off: int) -> GateVector:
        """A 1-input buffer vector (collapsed OR roots)."""
        return self.or_vector(1, delta_on, delta_off)

    def admits_vector(self, vector: GateVector) -> bool:
        """Whether a directly-constructed vector satisfies model limits.

        The cone synthesizer asks before installing Theorem-2 extended
        vectors; a refusal falls back to the plain OR root.
        """
        return True

    # -- margins -------------------------------------------------------
    def gate_margins(
        self, gate: ThresholdGate
    ) -> tuple[int | None, int | None]:
        """(ON margin, OFF margin) of a gate under this model's firing rule."""
        return gate.margins()

    # -- NP-transform algebra (persistent cache) -----------------------
    def encode_canonical(self, vector: GateVector, transform) -> list[int] | None:
        """Map a solved vector into NP-canonical space for persistence.

        Returns None when the vector cannot be represented (the entry then
        stays memory-only).  The default handles the single-threshold
        layout ``[w_1..w_n, T]``.
        """
        from repro.cache.canonical import vector_to_canonical

        if not isinstance(vector, WeightThresholdVector):
            return None
        return vector_to_canonical(vector, transform)

    def decode_canonical(self, values: list[int], transform) -> GateVector | None:
        """Invert :meth:`encode_canonical` for one persisted entry."""
        from repro.cache.canonical import vector_from_canonical

        if len(values) != len(transform.perm) + 1:
            return None
        return vector_from_canonical(values, transform)

    def verify_vector(
        self,
        cover_key: tuple,
        vector: GateVector,
        delta_on: int,
        delta_off: int,
    ) -> bool:
        """Exhaustively re-check a (possibly transformed) vector.

        Must enforce the model's margin contract, not just functional
        agreement — persisted entries are never trusted without this.
        """
        from repro.cache.canonical import verify_vector_key

        if not isinstance(vector, WeightThresholdVector):
            return False
        return verify_vector_key(cover_key, vector, delta_on, delta_off)


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], GateModel]] = {}
_INSTANCES: dict[str, GateModel] = {}


def register_model(factory: Callable[[], GateModel]):
    """Register a model class (or factory) under its ``name``.

    Usable as a decorator.  The fingerprint *family* (the part before the
    first ``:``) is also indexed so persistent-cache entries can find their
    decoding model back from the entry key alone.
    """
    probe = factory()
    if not probe.name or not probe.fingerprint:
        raise ReproError(
            f"gate model {factory!r} must define name and fingerprint"
        )
    _FACTORIES[probe.name] = factory
    _INSTANCES[probe.name] = probe
    return factory


def model_names() -> tuple[str, ...]:
    """Registered model names, sorted (CLI choices, docs)."""
    return tuple(sorted(_FACTORIES))


def get_model(name: str) -> GateModel:
    """The shared instance of a registered model."""
    try:
        return _INSTANCES[name]
    except KeyError:
        known = ", ".join(model_names())
        raise ReproError(
            f"unknown gate model {name!r} (registered: {known})"
        ) from None


def model_for_fingerprint(fingerprint: str) -> GateModel | None:
    """Resolve a cache-entry fingerprint back to its model, or None.

    Matches on the fingerprint family (text before the first ``:``), so a
    parameterized fingerprint like ``flash-v1:L8:d0.25`` still finds the
    flash model — the parameters only partition the key space, while the
    decode/verify algebra is family-wide.
    """
    family = fingerprint.split(":", 1)[0]
    for model in _INSTANCES.values():
        if model.fingerprint.split(":", 1)[0] == family:
            return model
    return None


def registered_models() -> Iterable[GateModel]:
    return tuple(_INSTANCES[name] for name in model_names())
