"""The flash-calibrated LTG backend (arXiv:1910.04910).

Flash-transistor threshold gates program each weight as a stored charge
level, which gives a *discrete* weight grid (``levels`` programmable
magnitudes) and a *relative* drift error: a programmed weight ``w`` may
drift by up to ``drift * |w|`` before recalibration.  Realizable gates
therefore need margins that scale with their largest weight — a gate is
signed off only when both defect margins reach
``ceil(drift * max|w|)``.

The feasibility check reuses the full single-threshold pipeline (fast path
+ Fig. 6 ILP) with two device constraints layered on top:

* every |w| is boxed to the device grid (``max_weight = levels``), so the
  integral ILP solution *is* the level assignment;
* the δ-tolerances are raised until they cover the drift requirement of
  the solved weights — solve, measure ``ceil(drift * max|w|)``, and
  re-solve with boosted deltas until the solution's own margins cover its
  own drift (a fixpoint; the requirement is capped by
  ``ceil(drift * levels)``, so the loop terminates in a few rounds).

Gates built structurally (OR roots, buffers, Theorem-2 extensions) go
through :meth:`FlashModel.or_vector` / :meth:`FlashModel.admits_vector`,
which apply the same sign-off rule; networks synthesized under this model
then survive the PR-5 defect-noise suite at the device's drift amplitude
by construction.
"""

from __future__ import annotations

import math

from repro.core.threshold import (
    GateVector,
    WeightThresholdVector,
    make_or_vector,
)
from repro.gates.base import GateModel, register_model


@register_model
class FlashModel(GateModel):
    """LTGs on a flash device grid with drift-derived tolerances."""

    name = "flash"
    #: Device parameters are part of the key space: a cache warmed at one
    #: (levels, drift) point must not serve another.
    fingerprint = "flash-v1:L8:d0.25"
    supports_binate = False

    #: Programmable weight magnitudes per device.
    levels = 8
    #: Relative drift bound: |w| may wander by up to ``drift * |w|``.
    drift = 0.25

    def required_margin(self, weights) -> int:
        """Margin needed to absorb worst-case drift of these weights."""
        peak = max((abs(w) for w in weights), default=0)
        return math.ceil(self.drift * peak)

    def check_cover(self, checker, cover, canonical) -> GateVector | None:
        box = self.levels
        if checker.max_weight is not None:
            box = min(box, checker.max_weight)
        # Nonzero weights always need at least ceil(drift) of margin, so
        # start there instead of burning a solve on the base tolerances.
        base_on, base_off = checker.delta_on, max(checker.delta_off, 1)
        floor = math.ceil(self.drift)
        don, doff = max(base_on, floor), max(base_off, floor)
        for _ in range(self.levels):
            vector = checker.solve_ltg(
                cover,
                canonical,
                delta_on=don,
                delta_off=doff,
                max_weight=box,
            )
            if vector is None:
                return None
            req = self.required_margin(vector.weights)
            if don >= max(base_on, req) and doff >= max(base_off, req):
                return vector
            checker.stats.flash_requantized += 1
            don = max(don, base_on, req)
            doff = max(doff, base_off, req)
        return None

    def or_vector(self, k: int, delta_on: int, delta_off: int):
        """An OR root whose margins cover the drift of its own weights."""
        don, doff = delta_on, max(delta_off, 1)
        vec = make_or_vector(k, don, doff)
        for _ in range(self.levels):
            req = self.required_margin(vec.weights)
            if don >= max(delta_on, req) and doff >= max(delta_off, req, 1):
                return vec
            don = max(don, req)
            doff = max(doff, req, 1)
            vec = make_or_vector(k, don, doff)
        return vec

    def admits_vector(self, vector) -> bool:
        """Grid + drift sign-off for structurally built vectors."""
        if not isinstance(vector, WeightThresholdVector):
            return False
        if any(abs(w) > self.levels for w in vector.weights):
            return False
        req = self.required_margin(vector.weights)
        if req == 0:
            return True
        on, off = vector.margins()
        if on is not None and on < req:
            return False
        if off is not None and off < req:
            return False
        return True

    def verify_vector(self, cover_key, vector, delta_on, delta_off) -> bool:
        # Persisted entries must satisfy the device contract too, not just
        # the base Eq. 1 — margins and |w| are NP-invariants, so anything
        # this model solved passes; anything else must not.
        if not super().verify_vector(cover_key, vector, delta_on, delta_off):
            return False
        return self.admits_vector(vector)
