"""The multi-threshold gate backend (arXiv:1301.0048).

A multi-threshold gate ``<w; T1 < ... < Tk>`` toggles its output at every
threshold the weighted sum crosses, so one gate realizes functions far
beyond the unate LTG class — weights of 1 with thresholds ``1..l`` compute
l-input parity, which is exactly the cone the single-threshold flow must
split into an XOR tree.

The feasibility check layers an exact small-k search over the shared LTG
machinery:

1. the LTG pipeline runs first (fast path + Fig. 6 ILP) — any function that
   *is* a single threshold gate keeps its minimum-area LTG solution, so the
   model strictly extends the default backend;
2. otherwise positive weight vectors over the support are enumerated in
   increasing total-weight order; a vector works when every input point of
   equal weighted sum agrees on the output, and thresholds are then placed
   at each output flip while honoring the δ-tolerances (each consecutive
   sum pair around a flip must be ``delta_on + delta_off`` apart, with the
   threshold ``delta_off`` above the lower sum — the generalized Eq. 1).

The search covers every totally-symmetric function (parity, exact-k,
majority windows) and many partially-symmetric ones; functions that would
need negative or larger weights fall back to None and are split by the
cone synthesizer exactly as under ``ltg``.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.boolean import bitset
from repro.core.threshold import (
    GateVector,
    MultiThresholdVector,
    WeightThresholdVector,
)
from repro.gates.base import GateModel, register_model


@register_model
class MultiThresholdModel(GateModel):
    """k-threshold gates with an exact small-k search atop the LTG solve."""

    name = "multi-threshold"
    #: Parameters are part of the fingerprint family ``mtg-v1``; bump the
    #: suffix if the search bounds below ever change.
    fingerprint = "mtg-v1:k6:w2"
    supports_binate = True

    #: Largest threshold count the search will emit.
    max_thresholds = 6
    #: Per-weight search ceiling (further clipped by the checker's bound).
    search_weight = 2
    #: Widest cover the exact search enumerates (2**nvars points).
    max_search_vars = 10

    def check_cover(self, checker, cover, canonical) -> GateVector | None:
        vector = checker.solve_ltg(cover, canonical)
        if vector is not None:
            return vector
        return self._search(checker, cover)

    def _search(self, checker, cover) -> MultiThresholdVector | None:
        nvars = cover.nvars
        if nvars == 0 or nvars > self.max_search_vars:
            return None
        support = cover.support_vars()
        if not support:
            return None
        outputs = cover.truth_table()
        w_max = self.search_weight
        if checker.max_weight is not None:
            w_max = min(w_max, checker.max_weight)
        if w_max < 1:
            return None
        # Increasing total weight = increasing gate area; first hit is the
        # cheapest this search can realize.  Lex tiebreak keeps it stable.
        candidates = sorted(
            product(range(1, w_max + 1), repeat=len(support)),
            key=lambda ws: (sum(ws), ws),
        )
        for slot_weights in candidates:
            thresholds = self._place_thresholds(
                nvars, support, slot_weights, outputs, checker
            )
            if thresholds is None:
                continue
            weights = [0] * nvars
            for slot, var in enumerate(support):
                weights[var] = slot_weights[slot]
            checker.stats.multithreshold_hits += 1
            if len(thresholds) == 1:
                # Degenerate single-threshold find (the LTG pipeline missed
                # it only if its tolerance algebra was stricter); keep the
                # plain LTG shape so downstream passes treat it normally.
                return WeightThresholdVector(tuple(weights), thresholds[0])
            return MultiThresholdVector(tuple(weights), tuple(thresholds))
        return None

    def _place_thresholds(
        self, nvars, support, slot_weights, outputs, checker
    ) -> list[int] | None:
        """Thresholds realizing ``outputs`` under one weight vector, or None.

        Groups the ``2**nvars`` input points by weighted sum; a realization
        exists iff equal sums agree on the output, and every output flip
        between consecutive sums leaves room for both tolerances.  The
        grouping runs bit-parallel: one weighted-sum sweep plus bincounts
        over the sum classes.
        """
        full_weights = [0] * nvars
        for slot, var in enumerate(support):
            full_weights[var] = slot_weights[slot]
        totals = np.asarray(bitset.weighted_sums(full_weights))
        out = np.asarray(outputs, dtype=bool)
        uniq, inverse = np.unique(totals, return_inverse=True)
        on_hits = np.bincount(inverse, weights=out, minlength=len(uniq))
        off_hits = np.bincount(inverse, weights=~out, minlength=len(uniq))
        if bool(((on_hits > 0) & (off_hits > 0)).any()):
            return None  # same sum, different output: weights too coarse
        by_sum = {
            int(s): bool(on_hits[k] > 0) for k, s in enumerate(uniq)
        }
        sums = sorted(by_sum)
        min_gap = checker.delta_on + checker.delta_off
        thresholds: list[int] = []
        if by_sum[sums[0]]:
            # The lowest band is already ON: open with a threshold the full
            # ON margin below it.
            thresholds.append(sums[0] - checker.delta_on)
        for prev, cur in zip(sums, sums[1:]):
            if by_sum[prev] == by_sum[cur]:
                continue
            if cur - prev < min_gap:
                return None  # flip too tight for the δ contract
            thresholds.append(prev + checker.delta_off)
        if not thresholds or len(thresholds) > self.max_thresholds:
            return None
        if any(a >= b for a, b in zip(thresholds, thresholds[1:])):
            return None  # degenerate tolerances collapsed two thresholds
        return thresholds

    # -- NP algebra ----------------------------------------------------
    # Negating input x maps <w; T1..Tk> to <-w; T1-w .. Tk-w>: every
    # weighted sum shifts by -w, so all thresholds shift together and their
    # order (and every margin) is preserved.  Permutation permutes weights.
    # Entries are encoded as [w_1..w_n, T1..Tk] with k >= 2 — the length
    # alone distinguishes them from single-threshold entries (n + 1).

    def encode_canonical(self, vector, transform):
        if isinstance(vector, WeightThresholdVector):
            return super().encode_canonical(vector, transform)
        if not isinstance(vector, MultiThresholdVector):
            return None
        weights = list(vector.weights)
        thresholds = list(vector.thresholds)
        for var, flip in enumerate(transform.flipped):
            if flip:
                thresholds = [t - weights[var] for t in thresholds]
                weights[var] = -weights[var]
        return [weights[var] for var in transform.perm] + thresholds

    def decode_canonical(self, values, transform):
        nvars = len(transform.perm)
        if len(values) < nvars + 2:
            return super().decode_canonical(values, transform)
        weights = [0] * nvars
        thresholds = list(values[nvars:])
        for slot, var in enumerate(transform.perm):
            weights[var] = values[slot]
        # The phase map is an involution: the same closed form inverts it.
        for var, flip in enumerate(transform.flipped):
            if flip:
                thresholds = [t - weights[var] for t in thresholds]
                weights[var] = -weights[var]
        if any(a >= b for a, b in zip(thresholds, thresholds[1:])):
            return None
        return MultiThresholdVector(tuple(weights), tuple(thresholds))

    def verify_vector(self, cover_key, vector, delta_on, delta_off) -> bool:
        if isinstance(vector, WeightThresholdVector):
            return super().verify_vector(cover_key, vector, delta_on, delta_off)
        if not isinstance(vector, MultiThresholdVector):
            return False
        from repro.cache.canonical import MAX_CANONICAL_VARS

        nvars, rows = cover_key
        if nvars > MAX_CANONICAL_VARS or len(vector.weights) != nvars:
            return False
        totals = np.asarray(bitset.weighted_sums(vector.weights))
        on = bitset.key_table(cover_key).to_bool_array()
        ts = np.asarray(vector.thresholds)
        crossed = np.zeros(totals.shape, dtype=np.int64)
        for t in vector.thresholds:
            crossed += totals >= t
        if not np.array_equal(crossed % 2 == 1, on):
            return False
        # Generalized Eq. 1: clear the nearest threshold below by the
        # ON margin, stay under the nearest above by the OFF margin.
        idx = np.searchsorted(ts, totals, side="right")
        has_below = idx > 0
        has_above = idx < len(ts)
        if has_below.any():
            below = totals[has_below] - ts[idx[has_below] - 1]
            if int(below.min()) < delta_on:
                return False
        if has_above.any():
            above = ts[idx[has_above]] - totals[has_above]
            if int(above.min()) < delta_off:
                return False
        return True
