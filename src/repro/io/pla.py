"""Reading and writing two-level PLA (espresso) files.

Supports the common subset: ``.i``, ``.o``, ``.ilb``, ``.ob``, ``.p``,
``.type fr`` (default), product-term rows, and ``.e``.  A PLA describes a
multi-output two-level function; :func:`pla_to_network` turns one into a
two-level :class:`BooleanNetwork` so the full synthesis pipeline can run on
two-level benchmark sources as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.errors import PlaError
from repro.network.network import BooleanNetwork


@dataclass
class Pla:
    """A parsed PLA: per-output ON-set (and optional DC-set) covers."""

    num_inputs: int
    num_outputs: int
    input_labels: list[str]
    output_labels: list[str]
    on_sets: list[Cover] = field(default_factory=list)
    dc_sets: list[Cover] = field(default_factory=list)


def read_pla(path: str | Path) -> Pla:
    """Parse a PLA file."""
    return parse_pla(Path(path).read_text())


def parse_pla(text: str) -> Pla:
    """Parse PLA text into a :class:`Pla`."""
    num_inputs = num_outputs = None
    input_labels: list[str] | None = None
    output_labels: list[str] | None = None
    rows: list[tuple[str, str]] = []
    pla_type = "fr"
    for number, raw in enumerate(text.splitlines(), start=1):
        if "#" in raw:
            raw = raw[: raw.index("#")]
        tokens = raw.split()
        if not tokens:
            continue
        key = tokens[0]
        if key == ".i":
            num_inputs = int(tokens[1])
        elif key == ".o":
            num_outputs = int(tokens[1])
        elif key == ".ilb":
            input_labels = tokens[1:]
        elif key == ".ob":
            output_labels = tokens[1:]
        elif key == ".p":
            continue
        elif key == ".type":
            pla_type = tokens[1]
            if pla_type not in ("f", "fr", "fd", "fdr"):
                raise PlaError(f"unsupported .type {pla_type}")
        elif key == ".e" or key == ".end":
            break
        elif key.startswith("."):
            continue  # ignore unknown directives
        else:
            if num_inputs is None or num_outputs is None:
                raise PlaError(f"line {number}: term before .i/.o")
            if len(tokens) == 1 and num_outputs == 0:
                rows.append((tokens[0], ""))
                continue
            if len(tokens) != 2:
                raise PlaError(f"line {number}: bad term {raw!r}")
            inp, outp = tokens
            if len(inp) != num_inputs or len(outp) != num_outputs:
                raise PlaError(f"line {number}: term width mismatch")
            rows.append((inp, outp))
    if num_inputs is None or num_outputs is None:
        raise PlaError("missing .i or .o")
    input_labels = input_labels or [f"x{i}" for i in range(num_inputs)]
    output_labels = output_labels or [f"z{i}" for i in range(num_outputs)]
    if len(input_labels) != num_inputs or len(output_labels) != num_outputs:
        raise PlaError("label count does not match .i/.o")
    on = [[] for _ in range(num_outputs)]
    dc = [[] for _ in range(num_outputs)]
    for inp, outp in rows:
        cube = Cube.from_string(inp.replace("2", "-").replace("~", "-"))
        for k, ch in enumerate(outp):
            if ch in "14":
                on[k].append(cube)
            elif ch in "2-":
                dc[k].append(cube)
            elif ch in "0~":
                continue
            else:
                raise PlaError(f"bad output character {ch!r}")
    return Pla(
        num_inputs,
        num_outputs,
        list(input_labels),
        list(output_labels),
        [Cover(c, num_inputs) for c in on],
        [Cover(c, num_inputs) for c in dc],
    )


def pla_to_network(pla: Pla, name: str = "pla") -> BooleanNetwork:
    """Build a two-level network: one node per PLA output."""
    net = BooleanNetwork(name)
    for label in pla.input_labels:
        net.add_input(label)
    for k, label in enumerate(pla.output_labels):
        func = BooleanFunction(pla.on_sets[k], tuple(pla.input_labels))
        net.add_node(label, func)
        net.add_output(label)
    net.check()
    return net


def write_pla(pla: Pla, path: str | Path) -> None:
    """Serialize a PLA (ON-sets only, ``.type f``)."""
    Path(path).write_text(to_pla(pla))


def to_pla(pla: Pla) -> str:
    """Render a PLA as text (ON-sets only)."""
    lines = [f".i {pla.num_inputs}", f".o {pla.num_outputs}"]
    lines.append(".ilb " + " ".join(pla.input_labels))
    lines.append(".ob " + " ".join(pla.output_labels))
    terms: dict[str, list[str]] = {}
    for k in range(pla.num_outputs):
        for cube in pla.on_sets[k].cubes:
            row = cube.to_string()
            terms.setdefault(row, ["0"] * pla.num_outputs)[k] = "1"
    lines.append(f".p {len(terms)}")
    for row, bits in terms.items():
        lines.append(f"{row} {''.join(bits)}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
