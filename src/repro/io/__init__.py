"""File-format front ends: BLIF and PLA readers/writers."""

from repro.io.blif import parse_blif, read_blif, write_blif
from repro.io.pla import parse_pla, read_pla, write_pla

__all__ = [
    "parse_blif",
    "read_blif",
    "write_blif",
    "parse_pla",
    "read_pla",
    "write_pla",
]
