"""Threshold-network interchange format (BLIF-TH).

BLIF-style container for threshold networks, since standard BLIF has no
notion of weights.  Each gate is three directives::

    .thgate <in1> <in2> ... <out>
    .vector <w1> <w2> ... <T>
    .delta <delta_on> <delta_off>

with the usual ``.model`` / ``.inputs`` / ``.outputs`` / ``.end`` framing.
The ``.delta`` line is optional (defaults 0 1).  ``#`` comments and ``\\``
continuations follow BLIF conventions.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.errors import BlifError


def to_thblif(network: ThresholdNetwork) -> str:
    """Render a threshold network as BLIF-TH text."""
    lines = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for name in network.topological_order():
        gate = network.gate(name)
        lines.append(".thgate " + " ".join(list(gate.inputs) + [name]))
        lines.append(
            ".vector "
            + " ".join(str(w) for w in gate.vector.weights)
            + (" " if gate.vector.weights else "")
            + str(gate.vector.threshold)
        )
        lines.append(f".delta {gate.delta_on} {gate.delta_off}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_thblif(network: ThresholdNetwork, path: str | Path) -> None:
    """Serialize a threshold network to a BLIF-TH file."""
    Path(path).write_text(to_thblif(network))


def parse_thblif(text: str, default_name: str = "threshold_network") -> ThresholdNetwork:
    """Parse BLIF-TH text into a :class:`ThresholdNetwork`."""
    network = ThresholdNetwork(default_name)
    pending_gate: tuple[list[str], str] | None = None
    pending_vector: WeightThresholdVector | None = None
    pending_delta = (0, 1)
    outputs: list[str] = []

    def flush(line_number: int) -> None:
        nonlocal pending_gate, pending_vector, pending_delta
        if pending_gate is None:
            return
        if pending_vector is None:
            raise BlifError(".thgate without .vector", line_number)
        inputs, out = pending_gate
        network.add_gate(
            ThresholdGate(
                out,
                tuple(inputs),
                pending_vector,
                pending_delta[0],
                pending_delta[1],
            )
        )
        pending_gate = None
        pending_vector = None
        pending_delta = (0, 1)

    for number, raw in enumerate(text.splitlines(), start=1):
        if "#" in raw:
            raw = raw[: raw.index("#")]
        tokens = raw.split()
        if not tokens:
            continue
        key = tokens[0]
        if key == ".model":
            if len(tokens) > 1:
                network.name = tokens[1]
        elif key == ".inputs":
            flush(number)
            for name in tokens[1:]:
                network.add_input(name)
        elif key == ".outputs":
            flush(number)
            outputs.extend(tokens[1:])
        elif key == ".thgate":
            flush(number)
            if len(tokens) < 2:
                raise BlifError(".thgate needs an output", number)
            pending_gate = (tokens[1:-1], tokens[-1])
        elif key == ".vector":
            if pending_gate is None:
                raise BlifError(".vector outside .thgate", number)
            try:
                values = [int(t) for t in tokens[1:]]
            except ValueError:
                raise BlifError(f"non-integer weight in {raw!r}", number) from None
            if len(values) != len(pending_gate[0]) + 1:
                raise BlifError(
                    f".vector needs {len(pending_gate[0])} weights plus T",
                    number,
                )
            pending_vector = WeightThresholdVector(
                tuple(values[:-1]), values[-1]
            )
        elif key == ".delta":
            if pending_gate is None:
                raise BlifError(".delta outside .thgate", number)
            pending_delta = (int(tokens[1]), int(tokens[2]))
        elif key == ".end":
            flush(number)
            break
        else:
            raise BlifError(f"unknown directive {key}", number)
    flush(len(text.splitlines()))
    for out in outputs:
        network.add_output(out)
    network.check()
    return network


def read_thblif(path: str | Path) -> ThresholdNetwork:
    """Parse a BLIF-TH file."""
    return parse_thblif(Path(path).read_text(), default_name=Path(path).stem)
