"""Threshold-network interchange format (BLIF-TH).

BLIF-style container for threshold networks, since standard BLIF has no
notion of weights.  Each gate is three directives::

    .thgate <in1> <in2> ... <out>
    .vector <w1> <w2> ... <T>
    .delta <delta_on> <delta_off>

with the usual ``.model`` / ``.inputs`` / ``.outputs`` / ``.end`` framing.
The ``.delta`` line is optional (defaults 0 1).  ``#`` comments and ``\\``
continuations follow BLIF conventions.

Multi-threshold gates (the ``multi-threshold`` gate model) add one more
optional directive listing the *complete* strictly-increasing threshold
ladder::

    .thresholds <T1> <T2> ... <Tk>

The ``.vector`` line still carries the weights plus ``T1``, so readers
unaware of the directive degrade to the first threshold instead of
mis-counting weights.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.threshold import (
    MultiThresholdVector,
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.errors import BlifError, NetworkError


def to_thblif(network: ThresholdNetwork) -> str:
    """Render a threshold network as BLIF-TH text."""
    lines = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for name in network.topological_order():
        gate = network.gate(name)
        lines.append(".thgate " + " ".join(list(gate.inputs) + [name]))
        lines.append(
            ".vector "
            + " ".join(str(w) for w in gate.vector.weights)
            + (" " if gate.vector.weights else "")
            + str(gate.vector.threshold)
        )
        if isinstance(gate.vector, MultiThresholdVector):
            lines.append(
                ".thresholds "
                + " ".join(str(t) for t in gate.vector.thresholds)
            )
        lines.append(f".delta {gate.delta_on} {gate.delta_off}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_thblif(network: ThresholdNetwork, path: str | Path) -> None:
    """Serialize a threshold network to a BLIF-TH file."""
    Path(path).write_text(to_thblif(network))


def parse_thblif(
    text: str,
    default_name: str = "threshold_network",
    validate: bool = True,
) -> ThresholdNetwork:
    """Parse BLIF-TH text into a :class:`ThresholdNetwork`.

    Every malformation raises a structured :class:`BlifError` carrying the
    offending line number — malformed weight counts, repeated gate outputs,
    bad ``.delta`` arity, truncated gate bodies — never a bare
    ``IndexError``/``KeyError``/``NetworkError``.  The returned network's
    ``gate_lines`` maps each gate to its ``.thgate`` line so lint
    diagnostics can point back into the file.

    ``validate=False`` skips the final structural ``check()`` (undefined
    fanins, cycles, undriven outputs) so a structurally-broken but
    syntactically-valid network can still be built — ``tels lint`` uses
    this to report those defects as TLS0xx findings instead of a blanket
    parse error.
    """
    network = ThresholdNetwork(default_name)
    pending_gate: tuple[list[str], str, int] | None = None
    pending_vector: WeightThresholdVector | None = None
    pending_thresholds: tuple[tuple[int, ...], int] | None = None
    pending_delta = (0, 1)
    outputs: list[tuple[str, int]] = []

    def flush(line_number: int) -> None:
        nonlocal pending_gate, pending_vector, pending_thresholds
        nonlocal pending_delta
        if pending_gate is None:
            return
        if pending_vector is None:
            raise BlifError(
                ".thgate without .vector (truncated gate body?)",
                line_number,
            )
        inputs, out, gate_line = pending_gate
        vector: WeightThresholdVector | MultiThresholdVector = pending_vector
        if pending_thresholds is not None:
            thresholds, ladder_line = pending_thresholds
            if thresholds[0] != pending_vector.threshold:
                raise BlifError(
                    f".thresholds must open with the .vector threshold "
                    f"{pending_vector.threshold}, got {thresholds[0]}",
                    ladder_line,
                )
            try:
                vector = MultiThresholdVector(
                    pending_vector.weights, thresholds
                )
            except NetworkError as exc:
                # Non-increasing ladder: report on the .thresholds line.
                raise BlifError(str(exc), ladder_line) from None
        try:
            network.add_gate(
                ThresholdGate(
                    out,
                    tuple(inputs),
                    vector,
                    pending_delta[0],
                    pending_delta[1],
                )
            )
        except NetworkError as exc:
            # Duplicate gate output, duplicate fanin names, or a
            # weight-count mismatch: re-raise with the .thgate line.
            raise BlifError(str(exc), gate_line) from None
        network.gate_lines[out] = gate_line
        pending_gate = None
        pending_vector = None
        pending_thresholds = None
        pending_delta = (0, 1)

    lines = text.splitlines()
    for number, raw in enumerate(lines, start=1):
        if "#" in raw:
            raw = raw[: raw.index("#")]
        tokens = raw.split()
        if not tokens:
            continue
        key = tokens[0]
        if key == ".model":
            if len(tokens) > 1:
                network.name = tokens[1]
        elif key == ".inputs":
            flush(number)
            for name in tokens[1:]:
                try:
                    network.add_input(name)
                except NetworkError as exc:
                    raise BlifError(str(exc), number) from None
        elif key == ".outputs":
            flush(number)
            outputs.extend((name, number) for name in tokens[1:])
        elif key == ".thgate":
            flush(number)
            if len(tokens) < 2:
                raise BlifError(".thgate needs an output", number)
            pending_gate = (tokens[1:-1], tokens[-1], number)
        elif key == ".vector":
            if pending_gate is None:
                raise BlifError(".vector outside .thgate", number)
            if pending_vector is not None:
                raise BlifError(
                    f"duplicate .vector for gate {pending_gate[1]!r}", number
                )
            try:
                values = [int(t) for t in tokens[1:]]
            except ValueError:
                raise BlifError(f"non-integer weight in {raw!r}", number) from None
            if len(values) != len(pending_gate[0]) + 1:
                raise BlifError(
                    f".vector needs {len(pending_gate[0])} weights plus T, "
                    f"got {len(values)} values",
                    number,
                )
            pending_vector = WeightThresholdVector(
                tuple(values[:-1]), values[-1]
            )
        elif key == ".thresholds":
            if pending_gate is None:
                raise BlifError(".thresholds outside .thgate", number)
            if pending_vector is None:
                raise BlifError(
                    ".thresholds before .vector (weights unknown)", number
                )
            if pending_thresholds is not None:
                raise BlifError(
                    f"duplicate .thresholds for gate {pending_gate[1]!r}",
                    number,
                )
            if len(tokens) < 2:
                raise BlifError(".thresholds needs >= 1 value", number)
            try:
                ladder = tuple(int(t) for t in tokens[1:])
            except ValueError:
                raise BlifError(
                    f"non-integer threshold in {raw!r}", number
                ) from None
            pending_thresholds = (ladder, number)
        elif key == ".delta":
            if pending_gate is None:
                raise BlifError(".delta outside .thgate", number)
            if len(tokens) != 3:
                raise BlifError(
                    ".delta needs exactly two values (delta_on delta_off)",
                    number,
                )
            try:
                pending_delta = (int(tokens[1]), int(tokens[2]))
            except ValueError:
                raise BlifError(
                    f"non-integer tolerance in {raw!r}", number
                ) from None
        elif key == ".end":
            flush(number)
            break
        else:
            raise BlifError(f"unknown directive {key}", number)
    flush(len(lines))
    for out, number in outputs:
        try:
            network.add_output(out)
        except NetworkError as exc:
            raise BlifError(str(exc), number) from None
    if validate:
        try:
            network.check()
        except NetworkError as exc:
            # Undefined fanin signals or a combinational cycle: structural,
            # so there is no single offending line — report without one.
            raise BlifError(str(exc)) from None
    return network


def read_thblif(path: str | Path) -> ThresholdNetwork:
    """Parse a BLIF-TH file."""
    return parse_thblif(Path(path).read_text(), default_name=Path(path).stem)
