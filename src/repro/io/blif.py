"""Reading and writing combinational BLIF (Berkeley Logic Interchange Format).

Supports the combinational subset the MCNC benchmarks use: ``.model``,
``.inputs``, ``.outputs``, ``.names`` with ON-set or OFF-set cover rows,
``\\`` line continuation, ``#`` comments, and ``.end``.  Latches and
subcircuits are rejected with a clear error — the paper (and this
reproduction) synthesizes combinational networks.
"""

from __future__ import annotations

from pathlib import Path

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.errors import BlifError
from repro.network.network import BooleanNetwork


def read_blif(path: str | Path) -> BooleanNetwork:
    """Parse a BLIF file into a :class:`BooleanNetwork`."""
    text = Path(path).read_text()
    return parse_blif(text, default_name=Path(path).stem)


def parse_blif(text: str, default_name: str = "network") -> BooleanNetwork:
    """Parse BLIF text into a :class:`BooleanNetwork`."""
    lines = _logical_lines(text)
    network = BooleanNetwork(default_name)
    inputs: list[str] = []
    outputs: list[str] = []
    # Each .names block: (output, input names, [(input-plane, output-char)])
    blocks: list[tuple[str, list[str], list[tuple[str, str]], int]] = []
    current: tuple[str, list[str], list[tuple[str, str]], int] | None = None
    model_seen = False

    for line_number, line in lines:
        tokens = line.split()
        if not tokens:
            continue
        keyword = tokens[0]
        if keyword.startswith("."):
            if current is not None and keyword not in (".names",):
                blocks.append(current)
                current = None
            if keyword == ".model":
                if model_seen:
                    raise BlifError("multiple .model sections", line_number)
                model_seen = True
                if len(tokens) > 1:
                    network.name = tokens[1]
            elif keyword == ".inputs":
                inputs.extend(tokens[1:])
            elif keyword == ".outputs":
                outputs.extend(tokens[1:])
            elif keyword == ".names":
                if current is not None:
                    blocks.append(current)
                if len(tokens) < 2:
                    raise BlifError(".names needs at least an output", line_number)
                current = (tokens[-1], tokens[1:-1], [], line_number)
            elif keyword == ".end":
                break
            elif keyword in (".latch", ".subckt", ".gate", ".mlatch"):
                raise BlifError(
                    f"unsupported construct {keyword} (combinational BLIF only)",
                    line_number,
                )
            elif keyword in (".exdc",):
                raise BlifError(".exdc sections are not supported", line_number)
            else:
                # Unknown dot-directives (e.g. .default_input_arrival): ignore.
                continue
        else:
            if current is None:
                raise BlifError(f"cover row outside .names: {line!r}", line_number)
            if len(current[1]) == 0:
                # Constant node: single-column rows.
                if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                    raise BlifError(
                        f"bad constant row {line!r}", line_number
                    )
                current[2].append(("", tokens[0]))
            else:
                if len(tokens) != 2:
                    raise BlifError(f"bad cover row {line!r}", line_number)
                plane, out = tokens
                if len(plane) != len(current[1]):
                    raise BlifError(
                        f"cover row width {len(plane)} != fanin count "
                        f"{len(current[1])}",
                        line_number,
                    )
                if any(ch not in "01-" for ch in plane) or out not in "01":
                    raise BlifError(f"bad cover row {line!r}", line_number)
                current[2].append((plane, out))
    if current is not None:
        blocks.append(current)

    for name in inputs:
        network.add_input(name)
    for output, fanin_names, rows, line_number in blocks:
        function = _block_to_function(output, fanin_names, rows, line_number)
        network.add_node(output, function)
    for name in outputs:
        network.add_output(name)
    network.check()
    return network


def _block_to_function(
    output: str,
    fanin_names: list[str],
    rows: list[tuple[str, str]],
    line_number: int,
) -> BooleanFunction:
    if len(set(fanin_names)) != len(fanin_names):
        raise BlifError(
            f"duplicate fanin in .names for {output!r}", line_number
        )
    nvars = len(fanin_names)
    if nvars == 0:
        value = any(out == "1" for _, out in rows)
        cover = Cover.one(0) if value else Cover.zero(0)
        return BooleanFunction(cover, ())
    phases = {out for _, out in rows}
    if phases <= {"1"} or not rows:
        cubes = [Cube.from_string(plane) for plane, _ in rows]
        return BooleanFunction(Cover(cubes, nvars), fanin_names)
    if phases == {"0"}:
        # OFF-set specification: the function is the complement of the rows.
        cubes = [Cube.from_string(plane) for plane, _ in rows]
        return BooleanFunction(Cover(cubes, nvars).complement(), fanin_names)
    raise BlifError(
        f"mixed ON/OFF rows in .names for {output!r}", line_number
    )


def _logical_lines(text: str) -> list[tuple[int, str]]:
    """Strip comments, join continuation lines; keep line numbers."""
    out: list[tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        if "#" in raw:
            raw = raw[: raw.index("#")]
        raw = raw.rstrip()
        if raw.endswith("\\"):
            if not pending:
                pending_line = number
            pending += raw[:-1] + " "
            continue
        if pending:
            out.append((pending_line, pending + raw))
            pending = ""
        elif raw.strip():
            out.append((number, raw))
    if pending:
        out.append((pending_line, pending))
    return out


def write_blif(network: BooleanNetwork, path: str | Path) -> None:
    """Serialize a network to a BLIF file."""
    Path(path).write_text(to_blif(network))


def to_blif(network: BooleanNetwork) -> str:
    """Render a network as BLIF text."""
    lines = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for node in network.topological_order():
        func = network.function(node)
        lines.append(".names " + " ".join(list(func.variables) + [node]))
        if func.nvars == 0:
            if not func.cover.is_zero():
                lines.append("1")
        else:
            for cube in func.cover.cubes:
                lines.append(cube.to_string() + " 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"
