"""Structural Verilog export for threshold and Boolean networks.

Threshold networks are emitted as instantiations of a behavioral ``LTG``
primitive module (parameterized by weights and threshold, written once per
distinct arity), so the output simulates directly in any Verilog simulator
and serves as a hand-off format toward nanotechnology mapping flows.
Multi-threshold gates (the ``multi-threshold`` gate model) instantiate an
``MTG`` primitive instead — output high when the weighted sum has crossed
an odd number of thresholds — written once per distinct (arity, ladder
depth) pair.  Boolean networks are emitted as ``assign`` equations.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.threshold import MultiThresholdVector, ThresholdNetwork
from repro.network.network import BooleanNetwork

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Map arbitrary signal names onto legal Verilog identifiers."""
    if _IDENT.match(name):
        return name
    cleaned = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not cleaned or not re.match(r"[A-Za-z_]", cleaned[0]):
        cleaned = "s_" + cleaned
    return cleaned


def _unique_names(names: list[str]) -> dict[str, str]:
    mapping: dict[str, str] = {}
    used: set[str] = set()
    for name in names:
        if name in mapping:
            continue
        candidate = _escape(name)
        suffix = 1
        while candidate in used:
            candidate = f"{_escape(name)}_{suffix}"
            suffix += 1
        mapping[name] = candidate
        used.add(candidate)
    return mapping


def _ltg_module(arity: int) -> str:
    """Behavioral LTG primitive for a given input count."""
    parameters = ["parameter signed [31:0] T = 1"]
    parameters += [f"parameter signed [31:0] W{i} = 1" for i in range(arity)]
    if arity:
        port_list = "output y, input " + ", ".join(
            f"x{i}" for i in range(arity)
        )
        total = " + ".join(f"(x{i} ? W{i} : 0)" for i in range(arity))
    else:
        port_list = "output y"
        total = "0"
    lines = [f"module ltg{arity} #("]
    lines.append(",\n".join(f"    {p}" for p in parameters))
    lines.append(f") ({port_list});")
    lines.append(f"    wire signed [31:0] sum = {total};")
    lines.append("    assign y = (sum >= T);")
    lines.append("endmodule")
    return "\n".join(lines)


def _mtg_module(arity: int, depth: int) -> str:
    """Behavioral multi-threshold primitive: parity of crossed thresholds."""
    parameters = [
        f"parameter signed [31:0] T{j} = {j + 1}" for j in range(depth)
    ]
    parameters += [f"parameter signed [31:0] W{i} = 1" for i in range(arity)]
    if arity:
        port_list = "output y, input " + ", ".join(
            f"x{i}" for i in range(arity)
        )
        total = " + ".join(f"(x{i} ? W{i} : 0)" for i in range(arity))
    else:
        port_list = "output y"
        total = "0"
    crossed = " + ".join(f"(sum >= T{j} ? 1 : 0)" for j in range(depth))
    lines = [f"module mtg{arity}_{depth} #("]
    lines.append(",\n".join(f"    {p}" for p in parameters))
    lines.append(f") ({port_list});")
    lines.append(f"    wire signed [31:0] sum = {total};")
    lines.append(f"    wire [31:0] crossed = {crossed};")
    lines.append("    assign y = crossed[0];")
    lines.append("endmodule")
    return "\n".join(lines)


def threshold_to_verilog(network: ThresholdNetwork) -> str:
    """Render a threshold network as self-contained structural Verilog."""
    order = network.topological_order()
    names = _unique_names(
        list(network.inputs) + order + [o for o in network.outputs]
    )
    arities = sorted(
        {
            network.gate(g).fanin
            for g in order
            if not isinstance(network.gate(g).vector, MultiThresholdVector)
        }
    )
    mtg_shapes = sorted(
        {
            (network.gate(g).fanin, len(network.gate(g).vector.thresholds))
            for g in order
            if isinstance(network.gate(g).vector, MultiThresholdVector)
        }
    )
    lines = [f"// threshold network {network.name} (generated)", ""]
    for arity in arities:
        lines.append(_ltg_module(arity))
        lines.append("")
    for arity, depth in mtg_shapes:
        lines.append(_mtg_module(arity, depth))
        lines.append("")
    # A primary output that aliases a primary input needs its own port name
    # (one Verilog port cannot be both input and output).
    out_port = {
        o: (names[o] + "_po" if network.is_input(o) else names[o])
        for o in network.outputs
    }
    lines.append(f"module {_escape(network.name)} (")
    decls = [f"    input {names[p]}" for p in network.inputs]
    decls += [f"    output {out_port[o]}" for o in network.outputs]
    lines.append(",\n".join(decls))
    lines.append(");")
    for gate_name in order:
        if gate_name not in network.outputs:
            lines.append(f"    wire {names[gate_name]};")
    for gate_name in order:
        gate = network.gate(gate_name)
        if isinstance(gate.vector, MultiThresholdVector):
            thresholds = gate.vector.thresholds
            params = [
                f".T{j}({t})" for j, t in enumerate(thresholds)
            ]
            module = f"mtg{gate.fanin}_{len(thresholds)}"
        else:
            params = [f".T({gate.threshold})"]
            module = f"ltg{gate.fanin}"
        params += [f".W{i}({w})" for i, w in enumerate(gate.weights)]
        ports_map = [f".y({names[gate_name]})"]
        ports_map += [
            f".x{i}({names[s]})" for i, s in enumerate(gate.inputs)
        ]
        lines.append(
            f"    {module} #({', '.join(params)}) "
            f"g_{names[gate_name]} ({', '.join(ports_map)});"
        )
    for out in network.outputs:
        if network.is_input(out):
            lines.append(f"    assign {out_port[out]} = {names[out]};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def boolean_to_verilog(network: BooleanNetwork) -> str:
    """Render a Boolean network as assign-style Verilog."""
    order = network.topological_order()
    names = _unique_names(list(network.inputs) + order)
    lines = [f"// boolean network {network.name} (generated)", ""]
    lines.append(f"module {_escape(network.name)} (")
    decls = [f"    input {names[p]}" for p in network.inputs]
    decls += [f"    output {names[o]}" for o in network.outputs]
    lines.append(",\n".join(decls))
    lines.append(");")
    for node in order:
        if node not in network.outputs:
            lines.append(f"    wire {names[node]};")
    for node in order:
        func = network.function(node)
        if func.cover.is_zero():
            expression = "1'b0"
        else:
            terms = []
            for cube in func.cover.cubes:
                if cube.is_full():
                    terms = ["1'b1"]
                    break
                literals = [
                    (names[func.variables[v]] if ph else f"~{names[func.variables[v]]}")
                    for v, ph in cube.literals()
                ]
                terms.append(" & ".join(literals))
            expression = " | ".join(
                f"({t})" if " & " in t else t for t in terms
            )
        lines.append(f"    assign {names[node]} = {expression};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog(
    network: ThresholdNetwork | BooleanNetwork, path: str | Path
) -> None:
    """Serialize either network kind to a Verilog file."""
    if isinstance(network, ThresholdNetwork):
        text = threshold_to_verilog(network)
    else:
        text = boolean_to_verilog(network)
    Path(path).write_text(text)
