"""Lease-based work distribution: the broker behind ``/work/...``.

The daemon is a *dumb blob broker* between one
:class:`~repro.engine.remote.RemoteExecutor` (the scheduler side) and any
number of ``tels worker`` processes:

* the executor opens a **session** carrying an opaque pickled payload (the
  prepared network, options, preserved set, and store seed) and enqueues
  cone tasks into it;
* workers **claim** task batches under a lease, fetch the session payload
  once (content-addressed by its ETag), run the cones, and post back
  results as opaque pickled blobs — the daemon never unpickles either
  direction, it only stores and forwards bytes within one trust domain
  (the same codebase that already pickles across the process pool);
* every claim is a **lease**: a worker must heartbeat before
  ``lease_s`` expires or the broker re-enqueues nothing and instead
  reports each leased cone as a ``"crash"``-kind failure to the executor,
  which feeds the scheduler's existing retry/backoff/quarantine ladder —
  a SIGKILLed worker is indistinguishable from a crashed pool process;
* results are **idempotent**: the first result for a task wins, duplicate
  deliveries (client retries, the ``net-dup`` chaos site) are counted and
  dropped.

Expiry is swept lazily inside broker calls (claim/heartbeat/collect), so
the daemon needs no background thread and a test can drive time through
the injectable ``clock``.
"""

from __future__ import annotations

import base64
import hashlib
import itertools
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.serve.schemas import ApiError

#: Default lease duration; a worker heartbeats at a fraction of this.
DEFAULT_LEASE_S = 15.0

#: Cap on tasks per claim batch.
MAX_CLAIM_TASKS = 16


def encode_blob(obj) -> str:
    """Pickle + base64 an object for transport through the broker."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_blob(text: str):
    """Inverse of :func:`encode_blob` (trusted same-host blobs only)."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def payload_etag(payload: bytes) -> str:
    """Content address of a session payload."""
    return hashlib.sha256(payload).hexdigest()[:24]


@dataclass
class _LeasedTask:
    """One claimed cone: who holds it and until when."""

    root: str
    attempt: int
    worker_id: str
    deadline: float


@dataclass
class WorkSession:
    """One executor's open distribution session."""

    session_id: str
    payload: bytes
    etag: str
    meta: dict = field(default_factory=dict)
    queue: deque = field(default_factory=deque)  # (task_id, root, attempt)
    leased: dict = field(default_factory=dict)  # task_id -> _LeasedTask
    results: list = field(default_factory=list)  # outbox: result rows
    failures: list = field(default_factory=list)  # outbox: failure rows
    resolved: set = field(default_factory=set)  # task_ids with a result
    failure_seen: set = field(default_factory=set)  # (task, attempt, kind)
    closed: bool = False


class WorkBroker:
    """Sessions, task queues, leases, and result outboxes for the daemon."""

    def __init__(
        self,
        lease_s: float = DEFAULT_LEASE_S,
        worker_timeout_s: float | None = None,
        clock=time.monotonic,
    ):
        self.lease_s = lease_s
        #: A worker silent longer than this no longer counts as live.
        self.worker_timeout_s = (
            worker_timeout_s if worker_timeout_s is not None else 2 * lease_s
        )
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: dict[str, WorkSession] = {}
        self._workers: dict[str, float] = {}  # worker_id -> last_seen
        self._seq = itertools.count(1)
        # Operator-facing counters (surface in /stats).
        self.sessions_created = 0
        self.claims = 0
        self.claimed_tasks = 0
        self.results_accepted = 0
        self.duplicate_results = 0
        self.failures_reported = 0
        self.lease_expirations = 0

    # -- internals -----------------------------------------------------
    def _get(self, session_id: str) -> WorkSession:
        session = self._sessions.get(session_id)
        if session is None or session.closed:
            raise ApiError(
                404, f"no such work session {session_id!r}", code="not-found"
            )
        return session

    def _sweep(self, now: float) -> None:
        """Expire overdue leases into ``"crash"`` failures (lock held)."""
        for session in self._sessions.values():
            if session.closed:
                continue
            expired = [
                task_id
                for task_id, lease in session.leased.items()
                if now > lease.deadline
            ]
            for task_id in expired:
                lease = session.leased.pop(task_id)
                self.lease_expirations += 1
                if task_id in session.resolved:
                    continue  # result landed before the sweep ran
                session.failures.append(
                    {
                        "task_id": task_id,
                        "kind": "crash",
                        "message": (
                            f"lease expired: worker {lease.worker_id!r} "
                            f"missed its heartbeat deadline"
                        ),
                        "attempt": lease.attempt,
                        "expired": True,
                    }
                )

    def _live_workers(self, now: float) -> int:
        return sum(
            1
            for last_seen in self._workers.values()
            if now - last_seen <= self.worker_timeout_s
        )

    # -- executor side -------------------------------------------------
    def create_session(self, payload_b64: str, meta: dict | None = None) -> dict:
        try:
            payload = base64.b64decode(payload_b64.encode("ascii"))
        except (ValueError, UnicodeEncodeError):
            raise ApiError(
                400, "session payload is not valid base64"
            ) from None
        with self._lock:
            session = WorkSession(
                session_id=f"s{next(self._seq):06d}",
                payload=payload,
                etag=payload_etag(payload),
                meta=dict(meta or {}),
            )
            self._sessions[session.session_id] = session
            self.sessions_created += 1
            return {"session": session.session_id, "etag": session.etag}

    def enqueue(self, session_id: str, tasks: list[dict]) -> dict:
        with self._lock:
            session = self._get(session_id)
            for row in tasks:
                session.queue.append(
                    (
                        str(row["task_id"]),
                        str(row["root"]),
                        int(row.get("attempt", 1)),
                    )
                )
            return {"queued": len(session.queue)}

    def collect(self, session_id: str) -> dict:
        """Drain the session outbox; also reports queue/lease/worker state."""
        now = self._clock()
        with self._lock:
            self._sweep(now)
            session = self._get(session_id)
            results, session.results = session.results, []
            failures, session.failures = session.failures, []
            return {
                "results": results,
                "failures": failures,
                "queued": len(session.queue),
                "leased": len(session.leased),
                "workers": self._live_workers(now),
            }

    def withdraw(self, session_id: str) -> dict:
        """Pull every unclaimed task back out (local-fallback path)."""
        with self._lock:
            session = self._get(session_id)
            tasks = [
                {"task_id": task_id, "root": root, "attempt": attempt}
                for task_id, root, attempt in session.queue
            ]
            session.queue.clear()
            return {"tasks": tasks}

    def close(self, session_id: str) -> dict:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                session.closed = True
                session.queue.clear()
                session.leased.clear()
                session.payload = b""
            return {"closed": True}

    # -- worker side ---------------------------------------------------
    def payload(self, session_id: str) -> tuple[bytes, str]:
        with self._lock:
            session = self._get(session_id)
            return session.payload, session.etag

    def claim(self, worker_id: str, max_tasks: int = 4) -> dict:
        """Lease up to ``max_tasks`` queued cones (one session per batch)."""
        max_tasks = max(1, min(int(max_tasks), MAX_CLAIM_TASKS))
        now = self._clock()
        with self._lock:
            self._workers[worker_id] = now
            self._sweep(now)
            self.claims += 1
            for session in self._sessions.values():
                if session.closed or not session.queue:
                    continue
                batch = []
                while session.queue and len(batch) < max_tasks:
                    task_id, root, attempt = session.queue.popleft()
                    session.leased[task_id] = _LeasedTask(
                        root=root,
                        attempt=attempt,
                        worker_id=worker_id,
                        deadline=now + self.lease_s,
                    )
                    batch.append(
                        {"task_id": task_id, "root": root, "attempt": attempt}
                    )
                self.claimed_tasks += len(batch)
                return {
                    "session": session.session_id,
                    "etag": session.etag,
                    "lease_s": self.lease_s,
                    "tasks": batch,
                }
            return {"session": None, "lease_s": self.lease_s, "tasks": []}

    def heartbeat(self, worker_id: str) -> dict:
        """Renew the worker's liveness and every lease it holds."""
        now = self._clock()
        with self._lock:
            self._workers[worker_id] = now
            renewed = 0
            for session in self._sessions.values():
                for lease in session.leased.values():
                    if lease.worker_id == worker_id:
                        lease.deadline = now + self.lease_s
                        renewed += 1
            self._sweep(now)
            return {"ok": True, "leases": renewed}

    def post_results(
        self,
        session_id: str,
        worker_id: str,
        results: list[dict],
        failures: list[dict],
    ) -> dict:
        """Accept finished cones (first write wins) and reported failures."""
        now = self._clock()
        with self._lock:
            self._workers[worker_id] = now
            session = self._get(session_id)
            accepted = duplicates = 0
            for row in results:
                task_id = str(row["task_id"])
                session.leased.pop(task_id, None)
                if task_id in session.resolved:
                    duplicates += 1
                    continue
                session.resolved.add(task_id)
                session.results.append(
                    {"task_id": task_id, "blob": row["blob"]}
                )
                accepted += 1
            for row in failures:
                task_id = str(row["task_id"])
                session.leased.pop(task_id, None)
                key = (task_id, int(row.get("attempt", 1)), row.get("kind"))
                if key in session.failure_seen:
                    duplicates += 1
                    continue
                session.failure_seen.add(key)
                session.failures.append(
                    {
                        "task_id": task_id,
                        "kind": str(row.get("kind", "error")),
                        "message": str(row.get("message", "")),
                        "attempt": int(row.get("attempt", 1)),
                        "expired": False,
                    }
                )
                self.failures_reported += 1
            self.results_accepted += accepted
            self.duplicate_results += duplicates
            return {"accepted": accepted, "duplicates": duplicates}

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        now = self._clock()
        with self._lock:
            self._sweep(now)
            workers = {
                worker_id: {
                    "live": now - last_seen <= self.worker_timeout_s,
                    "idle_s": round(now - last_seen, 3),
                    "leases": sum(
                        1
                        for session in self._sessions.values()
                        for lease in session.leased.values()
                        if lease.worker_id == worker_id
                    ),
                }
                for worker_id, last_seen in self._workers.items()
            }
            return {
                "lease_s": self.lease_s,
                "sessions": sum(
                    1 for s in self._sessions.values() if not s.closed
                ),
                "sessions_created": self.sessions_created,
                "queued": sum(
                    len(s.queue)
                    for s in self._sessions.values()
                    if not s.closed
                ),
                "leased": sum(
                    len(s.leased)
                    for s in self._sessions.values()
                    if not s.closed
                ),
                "workers": workers,
                "live_workers": self._live_workers(now),
                "claims": self.claims,
                "claimed_tasks": self.claimed_tasks,
                "results_accepted": self.results_accepted,
                "duplicate_results": self.duplicate_results,
                "failures_reported": self.failures_reported,
                "lease_expirations": self.lease_expirations,
            }


class WorkClient:
    """Client of the ``/work`` API — used by executors and workers alike."""

    def __init__(self, transport):
        self.transport = transport

    def create_session(self, payload: bytes, meta: dict | None = None) -> dict:
        return self.transport.json(
            "POST",
            "/work/sessions",
            {
                "payload": base64.b64encode(payload).decode("ascii"),
                "meta": meta or {},
            },
        )

    def fetch_payload(self, session_id: str) -> bytes:
        from repro.serve.transport import TransportError

        _status, body, headers = self.transport.request(
            "GET", f"/work/sessions/{session_id}/payload"
        )
        etag = headers.get("ETag", "")
        if etag and etag != payload_etag(body):
            raise TransportError(
                f"session {session_id} payload failed its ETag check"
            )
        return body

    def enqueue(self, session_id: str, tasks: list[dict]) -> dict:
        return self.transport.json(
            "POST", f"/work/sessions/{session_id}/tasks", {"tasks": tasks}
        )

    def claim(self, worker_id: str, max_tasks: int = 4) -> dict:
        return self.transport.json(
            "POST",
            "/work/claim",
            {"worker": worker_id, "max_tasks": max_tasks},
        )

    def heartbeat(self, worker_id: str) -> dict:
        return self.transport.json(
            "POST", "/work/heartbeat", {"worker": worker_id}
        )

    def post_results(
        self,
        session_id: str,
        worker_id: str,
        results: list[dict],
        failures: list[dict],
    ) -> dict:
        return self.transport.json(
            "POST",
            f"/work/sessions/{session_id}/results",
            {"worker": worker_id, "results": results, "failures": failures},
        )

    def collect(self, session_id: str) -> dict:
        return self.transport.json(
            "POST", f"/work/sessions/{session_id}/collect", {}
        )

    def withdraw(self, session_id: str) -> dict:
        return self.transport.json(
            "POST", f"/work/sessions/{session_id}/withdraw", {}
        )

    def close(self, session_id: str) -> dict:
        return self.transport.json(
            "DELETE", f"/work/sessions/{session_id}"
        )
