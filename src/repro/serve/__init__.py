"""Synthesis-as-a-service: the ``tels serve`` daemon and its client.

Layers, bottom to top (see docs/SERVE.md):

* :mod:`repro.serve.schemas` — wire schemas: request validation, the
  result rendering of a :class:`~repro.core.synthesis.SynthesisReport`,
  and :class:`ApiError` (structured non-2xx payloads).
* :mod:`repro.serve.journal` — the crash-tolerant JSON-lines jobs journal
  (same idiom as the persistent synthesis cache).
* :mod:`repro.serve.jobs` — :class:`JobManager`: bounded worker pool over
  the engine, a shared multi-tenant :class:`~repro.engine.store.ResultStore`,
  per-job event logs, cooperative cancellation, journal recovery.
* :mod:`repro.serve.sse` — NDJSON / SSE event-stream encodings.
* :mod:`repro.serve.app` — :class:`ServeApp`: the ThreadingHTTPServer
  routing layer.
* :mod:`repro.serve.client` — :class:`TelsClient`: the urllib client the
  ``tels submit/status/result/events/cancel`` subcommands drive.

Kept import-light: submodules resolve lazily so ``import repro.serve``
never drags in the HTTP stack (or the engine) for library users.
"""

from __future__ import annotations

__all__ = [
    "ApiError",
    "JobJournal",
    "JobManager",
    "ServeApp",
    "ServeClientError",
    "TelsClient",
]

_LAZY = {
    "ApiError": "repro.serve.schemas",
    "JobJournal": "repro.serve.journal",
    "JobManager": "repro.serve.jobs",
    "ServeApp": "repro.serve.app",
    "ServeClientError": "repro.serve.client",
    "TelsClient": "repro.serve.client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
