"""Event-stream encodings for ``GET /jobs/{id}/events``.

Two wire formats over one event source:

* **NDJSON** (default, ``application/x-ndjson``) — one JSON object per
  line; trivially consumed by ``tels events``, ``curl``, or any language
  with a line reader.
* **SSE** (``text/event-stream``, selected via the ``Accept`` header) —
  each event is a ``event:``/``id:``/``data:`` block per the
  EventSource spec, so browsers can subscribe natively; the ``id`` field
  carries the event ``seq`` for ``Last-Event-ID`` resumption.
"""

from __future__ import annotations

import json

NDJSON_CONTENT_TYPE = "application/x-ndjson"
SSE_CONTENT_TYPE = "text/event-stream"


def wants_sse(accept_header: str | None) -> bool:
    """True when the request's Accept header asks for an SSE stream."""
    return bool(accept_header) and "text/event-stream" in accept_header


def encode_ndjson(event: dict) -> bytes:
    return (json.dumps(event, separators=(",", ":")) + "\n").encode()


def encode_sse(event: dict) -> bytes:
    """One SSE message block; ``event`` name and ``id`` ride the metadata."""
    name = event.get("event", "message")
    lines = [f"event: {name}"]
    seq = event.get("seq")
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append(f"data: {json.dumps(event, separators=(',', ':'))}")
    return ("\n".join(lines) + "\n\n").encode()
