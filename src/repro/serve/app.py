"""The ``tels serve`` HTTP daemon: stdlib-only JSON API over the engine.

Routes (all JSON unless noted):

===========================  =====================================================
``POST   /jobs``             submit a BLIF + options; 202 with the job snapshot
``GET    /jobs``             list job snapshots (most recent last)
``GET    /jobs/{id}``        job status (result summary once done)
``GET    /jobs/{id}/result`` full result; ``?format=thblif`` (text) or
                             ``?format=sarif`` (SARIF 2.1.0 lint log)
``GET    /jobs/{id}/events`` live progress stream: NDJSON, or SSE when the
                             Accept header asks for ``text/event-stream``;
                             ``?since=N`` resumes after event ``N-1``
``DELETE /jobs/{id}``        cooperative cancellation
``GET    /healthz``          liveness (always 200 while serving) + fault counters
``GET    /stats``            queue depth, job counts, store/cache hit rates,
                             resilience and work-broker counters
``GET    /cache/{key}``      network cache tier: one NP-canonical entry
                             (ETag = content hash; 412 on fingerprint skew)
``PUT    /cache/{key}``      publish one solved entry into the shared tier
``POST   /work/sessions``    open a distribution session (opaque payload)
``POST   /work/claim``       worker: lease a batch of queued cone tasks
``POST   /work/heartbeat``   worker: renew liveness + every held lease
``...    /work/sessions/{id}/...``  payload / tasks / results / collect /
                             withdraw / DELETE — see :mod:`repro.serve.broker`
===========================  =====================================================

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, so long-lived event streams never starve control requests —
with all synthesis work delegated to the :class:`~repro.serve.jobs.JobManager`
worker pool.  Errors are structured: every non-2xx body is
``{"error": {"code", "message", ...}}`` (a malformed BLIF is a 400 carrying
the parser's line number, never a 500).
"""

from __future__ import annotations

import contextlib
import json
import logging
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.jobs import JobManager
from repro.serve.schemas import ApiError
from repro.serve.sse import (
    NDJSON_CONTENT_TYPE,
    SSE_CONTENT_TYPE,
    encode_ndjson,
    encode_sse,
    wants_sse,
)

logger = logging.getLogger("repro.serve")

#: Submission bodies larger than this are rejected up front (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServeHandler(BaseHTTPRequestHandler):
    """Request router; the owning server carries the :class:`JobManager`."""

    server_version = "tels-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload, indent=2).encode() + b"\n"
        self._send_bytes(status, body, "application/json")

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, exc: ApiError) -> None:
        self._send_json(exc.status, exc.to_dict())

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError(400, "a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "request body too large", code="too-large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(
                400, f"request body is not valid JSON: {exc}"
            ) from exc

    def _route(self, method: str) -> None:
        path, _, query_text = self.path.partition("?")
        query: dict[str, str] = {}
        for part in query_text.split("&"):
            if part:
                key, _, value = part.partition("=")
                query[key] = value
        parts = [p for p in path.split("/") if p]
        try:
            self._dispatch(method, parts, query)
        except ApiError as exc:
            self._send_error_payload(exc)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # defensive: bugs become structured 500s
            logger.exception("unhandled error serving %s %s", method, path)
            self._send_error_payload(
                ApiError(500, f"internal error: {exc}", code="internal-error")
            )

    # -- dispatch ------------------------------------------------------
    def _dispatch(
        self, method: str, parts: list[str], query: dict[str, str]
    ) -> None:
        if method == "GET" and parts == ["healthz"]:
            self._send_json(
                200,
                {
                    "status": "ok",
                    "service": "tels-serve",
                    "resilience": self.manager.resilience_counters(),
                },
            )
            return
        if method == "GET" and parts == ["stats"]:
            self._send_json(200, self.manager.stats())
            return
        if parts and parts[0] == "cache" and len(parts) == 2:
            self._dispatch_cache(method, parts[1], query)
            return
        if parts and parts[0] == "work":
            if self._dispatch_work(method, parts[1:]):
                return
        if parts and parts[0] == "jobs":
            if method == "POST" and len(parts) == 1:
                job = self.manager.submit(self._read_body())
                self._send_json(202, job.snapshot())
                return
            if method == "GET" and len(parts) == 1:
                self._send_json(
                    200,
                    {
                        "jobs": [
                            job.snapshot() for job in self.manager.jobs()
                        ]
                    },
                )
                return
            if len(parts) >= 2:
                job = self.manager.get(parts[1])
                if method == "GET" and len(parts) == 2:
                    self._send_json(200, job.snapshot())
                    return
                if method == "DELETE" and len(parts) == 2:
                    self._send_json(200, self.manager.cancel(job.job_id).snapshot())
                    return
                if method == "GET" and parts[2:] == ["result"]:
                    self._send_result(job, query.get("format", "json"))
                    return
                if method == "GET" and parts[2:] == ["events"]:
                    self._stream_events(job, query)
                    return
        raise ApiError(
            404,
            f"no route for {method} /{'/'.join(parts)}",
            code="not-found",
        )

    # -- network cache tier --------------------------------------------
    def _dispatch_cache(
        self, method: str, raw_key: str, query: dict[str, str]
    ) -> None:
        key = urllib.parse.unquote(raw_key)
        fingerprint = urllib.parse.unquote(query.get("fp", ""))
        if method == "GET":
            payload, etag = self.manager.cache_get(key, fingerprint)
            body = json.dumps(payload, indent=2).encode() + b"\n"
            self._send_bytes(
                200, body, "application/json", extra_headers={"ETag": etag}
            )
            return
        if method == "PUT":
            body = self._read_body()
            self._send_json(
                200,
                self.manager.cache_put(key, fingerprint, body.get("values")),
            )
            return
        raise ApiError(
            404, f"no route for {method} /cache/...", code="not-found"
        )

    # -- work broker ---------------------------------------------------
    def _dispatch_work(self, method: str, parts: list[str]) -> bool:
        """Route ``/work/...``; returns False to fall through to a 404."""
        broker = self.manager.broker
        if method == "POST" and parts == ["sessions"]:
            body = self._read_body()
            payload = body.get("payload")
            if not isinstance(payload, str):
                raise ApiError(400, "a base64 'payload' field is required")
            self._send_json(
                201, broker.create_session(payload, body.get("meta"))
            )
            return True
        if method == "POST" and parts == ["claim"]:
            body = self._read_body()
            self._send_json(
                200,
                broker.claim(
                    self._worker_id(body), int(body.get("max_tasks", 4))
                ),
            )
            return True
        if method == "POST" and parts == ["heartbeat"]:
            body = self._read_body()
            self._send_json(200, broker.heartbeat(self._worker_id(body)))
            return True
        if len(parts) >= 2 and parts[0] == "sessions":
            session_id = parts[1]
            if method == "DELETE" and len(parts) == 2:
                self._send_json(200, broker.close(session_id))
                return True
            if method == "GET" and parts[2:] == ["payload"]:
                payload, etag = broker.payload(session_id)
                self._send_bytes(
                    200,
                    payload,
                    "application/octet-stream",
                    extra_headers={"ETag": etag},
                )
                return True
            if method == "POST" and parts[2:] == ["tasks"]:
                body = self._read_body()
                tasks = body.get("tasks")
                if not isinstance(tasks, list):
                    raise ApiError(400, "a 'tasks' list is required")
                self._send_json(200, broker.enqueue(session_id, tasks))
                return True
            if method == "POST" and parts[2:] == ["results"]:
                body = self._read_body()
                self._send_json(
                    200,
                    broker.post_results(
                        session_id,
                        self._worker_id(body),
                        body.get("results") or [],
                        body.get("failures") or [],
                    ),
                )
                return True
            if method == "POST" and parts[2:] == ["collect"]:
                self._send_json(200, broker.collect(session_id))
                return True
            if method == "POST" and parts[2:] == ["withdraw"]:
                self._send_json(200, broker.withdraw(session_id))
                return True
        return False

    @staticmethod
    def _worker_id(body: dict) -> str:
        from repro.serve.schemas import validate_work_id

        return validate_work_id(body.get("worker"), "worker")

    # -- results -------------------------------------------------------
    def _send_result(self, job, fmt: str) -> None:
        if job.state != "done" or job.result is None:
            status = 404 if job.is_terminal else 409
            raise ApiError(
                status,
                f"job {job.job_id} has no result (state: {job.state})",
                code="no-result",
                detail={"state": job.state, "error": job.error},
            )
        if fmt == "json":
            self._send_json(200, job.result)
        elif fmt == "thblif":
            text = job.result.get("network", {}).get("thblif", "")
            self._send_bytes(200, text.encode(), "text/plain; charset=utf-8")
        elif fmt == "sarif":
            lint = job.result.get("lint")
            if lint is None:
                raise ApiError(
                    404,
                    f"job {job.job_id} ran with lint disabled",
                    code="no-result",
                )
            body = json.dumps(lint["sarif"], indent=2).encode() + b"\n"
            self._send_bytes(200, body, "application/sarif+json")
        else:
            raise ApiError(
                400,
                f"unknown result format {fmt!r}",
                detail={"formats": ["json", "thblif", "sarif"]},
            )

    # -- event streaming -----------------------------------------------
    def _stream_events(self, job, query: dict[str, str]) -> None:
        try:
            since = int(query.get("since", "0"))
        except ValueError:
            raise ApiError(400, "'since' must be an integer") from None
        sse = wants_sse(self.headers.get("Accept"))
        self.send_response(200)
        self.send_header(
            "Content-Type", SSE_CONTENT_TYPE if sse else NDJSON_CONTENT_TYPE
        )
        self.send_header("Cache-Control", "no-store")
        # Unknown length: signal end-of-stream by closing the connection.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        encode = encode_sse if sse else encode_ndjson
        # Suppress disconnects: the client went away, nothing to clean up.
        with contextlib.suppress(BrokenPipeError, ConnectionResetError):
            for event in self.manager.iter_events(job, since=since):
                self.wfile.write(encode(event))
                self.wfile.flush()

    # -- HTTP verbs ----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")

    def do_PUT(self) -> None:  # noqa: N802
        self._route("PUT")


class ServeApp:
    """The composed daemon: job manager + threading HTTP server.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    bound value.  :meth:`start_background` runs the accept loop in a
    daemon thread (tests, embedding); :meth:`serve_forever` blocks (CLI).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        cache_dir: str | None = None,
        journal_dir: str | None = None,
        max_workers: int = 2,
        queue_limit: int = 256,
        lease_s: float | None = None,
    ):
        self.manager = JobManager(
            cache_dir=cache_dir,
            journal_dir=journal_dir,
            max_workers=max_workers,
            queue_limit=queue_limit,
            lease_s=lease_s,
        )
        self.httpd = ThreadingHTTPServer((host, port), ServeHandler)
        self.httpd.daemon_threads = True
        self.httpd.manager = self.manager  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        logger.info("tels serve listening on %s", self.url)
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        finally:
            self.shutdown()

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="tels-serve-http",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return thread

    def shutdown(self) -> None:
        """Stop the accept loop and drain/persist the job manager (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.manager.shutdown()
