"""The daemon's job layer: queue, worker pool, events, and persistence.

A :class:`Job` is one accepted synthesis request moving through the
lifecycle ``queued → running → done | failed | cancelled``.  The
:class:`JobManager` owns:

* a bounded FIFO queue drained by ``max_workers`` daemon threads, each
  driving the existing engine (:func:`repro.core.synthesis.synthesize_with_report`)
  with the manager's **shared** :class:`~repro.engine.store.ResultStore` —
  one hot in-memory cache plus the persistent NP-canonical tier, so every
  tenant's synthesis warms every other tenant's (per-gate-model key
  isolation included, exactly as in the single-process engine);
* per-job **event logs**: the engine's structured per-task events (tapped
  via the scheduler's ``on_event`` hook) plus job-lifecycle markers, each
  stamped with a monotonic ``seq`` so streams are ordered and resumable;
* cooperative **cancellation**: ``cancel()`` sets the job's flag, which the
  scheduler observes between cones — pool workers are reaped, solved
  vectors are still flushed to the persistent tier;
* the crash-tolerant :class:`~repro.serve.journal.JobJournal`: accepted
  requests, state transitions, and results are journaled as they happen,
  so a restarted daemon re-enqueues interrupted jobs and serves finished
  ones from history.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.engine.store import ResultStore
from repro.errors import ReproError, SynthesisCancelled
from repro.serve.broker import WorkBroker
from repro.serve.journal import JobJournal
from repro.serve.schemas import (
    ApiError,
    JobRequest,
    parse_job_request,
    report_to_dict,
)

#: Job lifecycle states; the last three are terminal.
ACTIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One accepted synthesis request and everything it has produced."""

    job_id: str
    request: JobRequest
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: dict | None = None
    #: Set by DELETE /jobs/{id}; observed by the scheduler between cones.
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Ordered event log; guarded by ``cond`` (also signals appends).
    events: list[dict] = field(default_factory=list)
    cond: threading.Condition = field(default_factory=threading.Condition)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self, include_result: bool = False) -> dict:
        """The API status payload (and the journal's folded shape)."""
        snap: dict = {
            "id": self.job_id,
            "state": self.state,
            "name": self.request.name,
            "gate_model": self.request.options.get("gate_model", "ltg"),
            "submitted_at": round(self.submitted_at, 3),
        }
        if self.started_at is not None:
            snap["started_at"] = round(self.started_at, 3)
        if self.finished_at is not None:
            snap["finished_at"] = round(self.finished_at, 3)
        if self.error is not None:
            snap["error"] = self.error
        if self.result is not None:
            if include_result:
                snap["result"] = self.result
            else:
                network = self.result.get("network", {})
                lint = self.result.get("lint")
                snap["summary"] = {
                    "gates": network.get("gates"),
                    "levels": network.get("levels"),
                    "area": network.get("area"),
                    "verified": self.result.get("verified"),
                    "lint_clean": None if lint is None else lint.get("clean"),
                    "wall_s": self.result.get("wall_s"),
                }
        return snap


class JobManager:
    """Accept, schedule, execute, persist, and stream synthesis jobs."""

    def __init__(
        self,
        cache_dir: str | None = None,
        journal_dir: str | None = None,
        max_workers: int = 2,
        queue_limit: int = 256,
        lease_s: float | None = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.store = (
            ResultStore.with_cache_dir(cache_dir)
            if cache_dir is not None
            else ResultStore()
        )
        self.cache_dir = cache_dir
        self.journal = (
            JobJournal(journal_dir) if journal_dir is not None else None
        )
        self.max_workers = max_workers
        self.started_at = time.time()
        self.broker = (
            WorkBroker(lease_s=lease_s) if lease_s is not None else WorkBroker()
        )
        #: In-memory network cache tier when no --cache directory is set.
        self._memory_tier: dict | None = None
        #: Daemon-side network-cache counters (the tier's served side).
        self._cache_counters = {
            "gets": 0,
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "installs": 0,
            "fingerprint_rejects": 0,
        }
        #: Engine resilience counters folded from every finished job.
        self._resilience = {
            "retries": 0,
            "requeues": 0,
            "degraded_cones": 0,
            "quarantined_cones": 0,
            "lease_expirations": 0,
        }
        self._jobs: dict[str, Job] = {}
        self._queue: queue.Queue[str | None] = queue.Queue(maxsize=queue_limit)
        self._lock = threading.RLock()
        self._seq = itertools.count(1)
        self._model_done: dict[str, int] = {}
        self._stop = False
        self._recover()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"tels-job-{i}", daemon=True
            )
            for i in range(max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- recovery ------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild job history from the journal; re-enqueue unfinished work."""
        if self.journal is None:
            return
        max_seq = 0
        for job_id, record in self.journal.load().items():
            # Ids are "j<seq>"; keep the counter ahead of history.
            digits = job_id.lstrip("j")
            if digits.isdigit():
                max_seq = max(max_seq, int(digits))
            raw = record.get("request")
            state = record.get("state")
            if not isinstance(raw, dict) or state is None:
                continue  # never fully accepted; nothing to resume
            try:
                request = parse_job_request(raw)
            except ApiError as exc:
                request = JobRequest(blif="", name=str(raw.get("name", "?")))
                job = Job(job_id=job_id, request=request, state="failed")
                job.error = {
                    "code": "unrecoverable",
                    "message": f"journaled request no longer valid: {exc}",
                }
                self._jobs[job_id] = job
                continue
            job = Job(job_id=job_id, request=request, state=state)
            job.submitted_at = record.get("submitted_at", job.submitted_at)
            job.started_at = record.get("started_at")
            job.finished_at = record.get("finished_at")
            job.result = record.get("result")
            job.error = record.get("error")
            self._jobs[job_id] = job
            if job.is_terminal:
                self._publish(job, {"event": f"job-{job.state}"})
            else:
                # Accepted but interrupted by the crash/restart: run again.
                job.state = "queued"
                job.started_at = None
                self._journal_append(
                    job, {"state": "queued", "recovered": True}
                )
                self._publish(job, {"event": "job-queued", "recovered": True})
                try:
                    self._queue.put_nowait(job.job_id)
                except queue.Full:
                    self._set_terminal(
                        job,
                        "failed",
                        error={
                            "code": "queue-full",
                            "message": "queue overflow during recovery",
                        },
                    )
        self._seq = itertools.count(max_seq + 1)

    # -- submission ----------------------------------------------------
    def submit(self, payload: dict) -> Job:
        """Validate and enqueue a request; returns the accepted job."""
        request = parse_job_request(payload)
        with self._lock:
            if self._stop:
                raise ApiError(
                    503, "daemon is shutting down", code="unavailable"
                )
            job = Job(job_id=f"j{next(self._seq):06d}", request=request)
            self._jobs[job.job_id] = job
        self._journal_append(
            job,
            {
                "state": "queued",
                "request": request.to_dict(),
                "submitted_at": round(job.submitted_at, 3),
            },
        )
        self._publish(job, {"event": "job-queued"})
        try:
            self._queue.put_nowait(job.job_id)
        except queue.Full:
            self._set_terminal(
                job,
                "failed",
                error={"code": "queue-full", "message": "job queue is full"},
            )
            raise ApiError(
                503, "job queue is full, retry later", code="queue-full"
            ) from None
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ApiError(
                404, f"no such job {job_id!r}", code="not-found"
            ) from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    # -- cancellation --------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Request cooperative cancellation of a queued or running job."""
        job = self.get(job_id)
        with self._lock:
            if job.is_terminal:
                raise ApiError(
                    409,
                    f"job {job_id} already {job.state}",
                    code="conflict",
                )
            job.cancel_event.set()
            if job.state == "queued":
                # Not started yet: resolve immediately; the worker skips it.
                self._set_terminal(job, "cancelled")
        return job

    # -- events --------------------------------------------------------
    def _publish(self, job: Job, payload: dict) -> None:
        event = dict(payload)
        with job.cond:
            event["seq"] = len(job.events)
            event["job"] = job.job_id
            job.events.append(event)
            job.cond.notify_all()

    def iter_events(self, job: Job, since: int = 0, poll_s: float = 10.0):
        """Yield the job's events from ``since`` until it turns terminal.

        Blocks for new events while the job is active; after the terminal
        transition the remaining log drains and the iterator ends, so a
        streaming HTTP response closes by itself.
        """
        index = max(0, since)
        while True:
            with job.cond:
                while index >= len(job.events) and not job.is_terminal:
                    job.cond.wait(timeout=poll_s)
                if index < len(job.events):
                    event = job.events[index]
                    index += 1
                else:
                    return
            yield event

    # -- execution -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                continue
            if job.cancel_event.is_set():
                self._set_terminal(job, "cancelled")
                continue
            with self._lock:
                job.state = "running"
                job.started_at = time.time()
            self._journal_append(
                job,
                {"state": "running", "started_at": round(job.started_at, 3)},
            )
            self._publish(job, {"event": "job-started"})
            try:
                result = self._execute(job)
            except SynthesisCancelled:
                self._set_terminal(job, "cancelled")
            except ReproError as exc:
                self._set_terminal(
                    job,
                    "failed",
                    error={
                        "code": "synthesis-error",
                        "type": type(exc).__name__,
                        "message": str(exc),
                    },
                )
            except Exception as exc:  # a bug must fail the job, not the pool
                self._set_terminal(
                    job,
                    "failed",
                    error={
                        "code": "internal-error",
                        "type": type(exc).__name__,
                        "message": str(exc),
                    },
                )
            else:
                self._set_terminal(job, "done", result=result)

    def _execute(self, job: Job) -> dict:
        from repro.core.synthesis import synthesize_with_report
        from repro.core.verify import verify_threshold_network
        from repro.io.blif import parse_blif
        from repro.network.scripts import prepare_tels

        started = time.perf_counter()
        source = parse_blif(job.request.blif, default_name=job.request.name)
        prepared = prepare_tels(source)
        # ``use_cache=False`` opts this job out of the shared store: it
        # synthesizes against a private, empty store (cold, isolated).
        store = self.store if job.request.use_cache else ResultStore()
        network, report = synthesize_with_report(
            prepared,
            job.request.build_options(),
            jobs=job.request.jobs,
            store=store,
            on_event=lambda event: self._publish(job, event),
            cancel=job.cancel_event,
        )
        verified = verify_threshold_network(source, network)
        self._fold_resilience(report.trace)
        return report_to_dict(
            network, report, verified, time.perf_counter() - started
        )

    def _fold_resilience(self, trace) -> None:
        """Accumulate one finished run's fault-handling counters."""
        if trace is None:
            return
        with self._lock:
            self._resilience["retries"] += trace.retries
            self._resilience["requeues"] += trace.requeues
            self._resilience["degraded_cones"] += len(trace.degraded)
            self._resilience["quarantined_cones"] += len(trace.quarantined)
            self._resilience["lease_expirations"] += getattr(
                trace, "lease_expirations", 0
            )

    # -- network cache tier --------------------------------------------
    def _cache_tier(self):
        """The tier behind ``GET/PUT /cache``: on-disk cache or memory dict."""
        if self.store.persistent is not None:
            return self.store.persistent
        with self._lock:
            if self._memory_tier is None:
                self._memory_tier = {}
            return self._memory_tier

    def _check_fingerprint(self, fingerprint: str) -> None:
        from repro.cache.canonical import CANONICAL_FINGERPRINT

        if fingerprint and fingerprint != CANONICAL_FINGERPRINT:
            with self._lock:
                self._cache_counters["fingerprint_rejects"] += 1
            raise ApiError(
                412,
                "canonicalization fingerprint mismatch "
                f"(daemon: {CANONICAL_FINGERPRINT})",
                code="fingerprint-mismatch",
            )

    def cache_get(self, key: str, fingerprint: str) -> tuple[dict, str]:
        """One entry of the network cache tier, or a structured 404/412."""
        from repro.cache.store import ABSENT, values_etag

        self._check_fingerprint(fingerprint)
        tier = self._cache_tier()
        values = (
            tier.get(key) if not isinstance(tier, dict)
            else tier.get(key, ABSENT)
        )
        with self._lock:
            self._cache_counters["gets"] += 1
            if values is ABSENT:
                self._cache_counters["misses"] += 1
            else:
                self._cache_counters["hits"] += 1
        if values is ABSENT:
            raise ApiError(
                404, f"no cache entry for {key!r}", code="not-found"
            )
        payload = {"key": key, "values": values, "entries": len(tier)}
        return payload, values_etag(values)

    def cache_put(self, key: str, fingerprint: str, values) -> dict:
        """Install one solved entry into the shared tier (idempotent)."""
        self._check_fingerprint(fingerprint)
        if values is not None:
            if not isinstance(values, list) or not all(
                isinstance(v, int) and not isinstance(v, bool) for v in values
            ):
                raise ApiError(
                    400, "'values' must be null or a list of integers"
                )
        tier = self._cache_tier()
        if isinstance(tier, dict):
            installed = key not in tier
            if installed:
                tier[key] = values
        else:
            installed = tier.put(key, values)
        with self._lock:
            self._cache_counters["puts"] += 1
            if installed:
                self._cache_counters["installs"] += 1
        return {"installed": installed, "entries": len(tier)}

    def resilience_counters(self) -> dict:
        """The compact fault-handling summary (``/healthz`` + ``/stats``)."""
        with self._lock:
            counters = dict(self._resilience)
        counters["broker_lease_expirations"] = self.broker.lease_expirations
        counters["cache_rejects"] = self.store.stats.transform_rejects
        return counters

    # -- terminal transitions ------------------------------------------
    def _set_terminal(
        self,
        job: Job,
        state: str,
        result: dict | None = None,
        error: dict | None = None,
    ) -> None:
        with self._lock:
            if job.is_terminal:
                return
            job.state = state
            job.finished_at = time.time()
            job.result = result
            job.error = error
            if state == "done":
                model = job.request.options.get("gate_model", "ltg")
                self._model_done[model] = self._model_done.get(model, 0) + 1
        record: dict = {
            "state": state,
            "finished_at": round(job.finished_at, 3),
        }
        if result is not None:
            record["result"] = result
        if error is not None:
            record["error"] = error
        self._journal_append(job, record)
        terminal_event: dict = {"event": f"job-{state}"}
        if error is not None:
            terminal_event["error"] = error
        if result is not None:
            network = result.get("network", {})
            terminal_event["gates"] = network.get("gates")
            terminal_event["verified"] = result.get("verified")
        self._publish(job, terminal_event)

    def _journal_append(self, job: Job, fields_: dict) -> None:
        if self.journal is None:
            return
        record = {"id": job.job_id, "t": round(time.time(), 3)}
        record.update(fields_)
        self.journal.append(record)

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        """The ``GET /stats`` payload: queue, jobs, store, and cache state."""
        with self._lock:
            states = {state: 0 for state in ACTIVE_STATES + TERMINAL_STATES}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            model_done = dict(self._model_done)
        store_stats = self.store.stats
        payload = {
            "uptime_s": round(time.time() - self.started_at, 3),
            "max_workers": self.max_workers,
            "queue_depth": self._queue.qsize(),
            "jobs": {"total": len(self._jobs), **states},
            "models_done": model_done,
            "store": {
                "vectors": self.store.num_vectors,
                "analyses": self.store.num_analyses,
                "vector_hits": store_stats.vector_hits,
                "vector_misses": store_stats.vector_misses,
                "vector_hit_rate": round(store_stats.vector_hit_rate, 4),
                "analysis_hits": store_stats.analysis_hits,
                "persistent_hits": store_stats.persistent_hits,
                "persistent_misses": store_stats.persistent_misses,
                "persistent_hit_rate": round(
                    store_stats.persistent_hit_rate, 4
                ),
                "transformed_hits": store_stats.transformed_hits,
                "transform_rejects": store_stats.transform_rejects,
            },
            "resilience": self.resilience_counters(),
            "work": self.broker.stats(),
            "network_cache": dict(self._cache_counters),
        }
        if self.store.persistent is not None:
            payload["cache"] = {
                "dir": self.cache_dir,
                "entries": len(self.store.persistent),
                "dirty": self.store.persistent.dirty_count,
            }
        if self.journal is not None:
            payload["journal"] = {
                "path": str(self.journal.path),
                "corrupt_lines": self.journal.corrupt_lines,
            }
        return payload

    # -- shutdown ------------------------------------------------------
    def shutdown(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Stop accepting work, wake the workers, and persist state.

        Running jobs get their cancel flag set (they stop between cones);
        queued jobs stay journaled as ``queued`` and will be re-enqueued by
        the next daemon start.
        """
        with self._lock:
            self._stop = True
            for job in self._jobs.values():
                if job.state == "running":
                    job.cancel_event.set()
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            for worker in self._workers:
                worker.join(timeout=timeout)
        self.store.flush_persistent()
        if self.journal is not None:
            with self._lock:
                snapshots = [
                    {
                        **job.snapshot(include_result=True),
                        "request": job.request.to_dict(),
                    }
                    for job in self._jobs.values()
                ]
            self.journal.compact(snapshots)
