"""Wire schemas of the ``tels serve`` job API.

Everything that crosses the HTTP boundary (or the jobs journal) is a plain
JSON-serializable dict, produced and validated here so the daemon, the
client, and the journal agree on one shape:

* **job request** — ``{"blif": "...", "options": {...}, "name", "jobs",
  "use_cache"}``; :func:`parse_job_request` validates field types, bounds,
  and the BLIF text itself (fail fast: a malformed circuit is rejected at
  submission with a structured 400, it never reaches the queue).
* **job snapshot** — id, state, timestamps, and (when terminal) the result
  or error payload; this is also the journal's folded record, so a
  restarted daemon serves exactly what it persisted.
* **result** — the :class:`~repro.core.synthesis.SynthesisReport` rendered
  to JSON: the synthesized network as BLIF-TH text (byte-identical to what
  ``tels synth -o`` writes), gate/level/area stats, the lint report in both
  JSON and SARIF 2.1.0 form (the PR 4 emitters), engine-trace totals, and
  the per-job cache counters the multi-tenant tests gate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BlifError, ReproError, SynthesisError

#: SynthesisOptions fields settable over the API, with their JSON types.
#: Everything else (retry/backoff internals, chaos knobs) stays server-side.
OPTION_FIELDS: dict[str, tuple[type, ...]] = {
    "psi": (int,),
    "delta_on": (int,),
    "delta_off": (int,),
    "seed": (int,),
    "backend": (str,),
    "gate_model": (str,),
    "splitting_strategy": (str,),
    "use_fastpath": (bool,),
    "use_presolve": (bool,),
    "max_weight": (int, type(None)),
    "lint": (bool,),
    "analyze": (bool,),
    "deadline_per_cone_s": (int, float, type(None)),
    "deadline_total_s": (int, float, type(None)),
    "max_attempts": (int,),
    "strict_synthesis": (bool,),
}

#: Cap on per-job cone worker processes a client may request.
MAX_JOB_WORKERS = 8

#: Cap on remote-worker ids / task ids crossing the work API (DoS hygiene:
#: these land in dict keys and log lines verbatim).
MAX_WORK_ID_LEN = 128


def validate_work_id(value, field_name: str) -> str:
    """Validate a worker/task identifier crossing the ``/work`` API."""
    if not isinstance(value, str) or not value:
        raise ApiError(
            400, f"{field_name!r} must be a non-empty string", code="bad-work"
        )
    if len(value) > MAX_WORK_ID_LEN:
        raise ApiError(
            400,
            f"{field_name!r} exceeds {MAX_WORK_ID_LEN} characters",
            code="bad-work",
        )
    return value


class ApiError(ReproError):
    """A structured API failure: HTTP status plus a JSON error payload."""

    def __init__(
        self,
        status: int,
        message: str,
        code: str = "bad-request",
        detail: dict | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.detail = detail or {}

    def to_dict(self) -> dict:
        payload = {"code": self.code, "message": str(self)}
        if self.detail:
            payload["detail"] = self.detail
        return {"error": payload}


@dataclass
class JobRequest:
    """A validated submission: the circuit plus how to synthesize it."""

    blif: str
    name: str = "network"
    options: dict = field(default_factory=dict)
    jobs: int = 1
    use_cache: bool = True

    def to_dict(self) -> dict:
        """The journal/wire form (re-parseable by :func:`parse_job_request`)."""
        return {
            "blif": self.blif,
            "name": self.name,
            "options": dict(self.options),
            "jobs": self.jobs,
            "use_cache": self.use_cache,
        }

    def build_options(self):
        """Construct the :class:`SynthesisOptions` this request describes."""
        from repro.core.synthesis import SynthesisOptions

        try:
            return SynthesisOptions(**self.options)
        except SynthesisError as exc:
            raise ApiError(
                400, f"invalid synthesis options: {exc}", code="bad-options"
            ) from exc


def validate_options(options: dict) -> dict:
    """Type-check an options dict against :data:`OPTION_FIELDS`."""
    if not isinstance(options, dict):
        raise ApiError(400, "options must be an object", code="bad-options")
    clean: dict = {}
    for key, value in options.items():
        allowed = OPTION_FIELDS.get(key)
        if allowed is None:
            raise ApiError(
                400,
                f"unknown option {key!r}",
                code="bad-options",
                detail={"allowed": sorted(OPTION_FIELDS)},
            )
        # bool is an int subclass: reject True where an int is expected.
        if isinstance(value, bool) and bool not in allowed:
            raise ApiError(
                400, f"option {key!r} must not be a boolean", code="bad-options"
            )
        if not isinstance(value, allowed):
            names = "/".join(
                t.__name__ for t in allowed if t is not type(None)
            )
            raise ApiError(
                400,
                f"option {key!r} must be {names}",
                code="bad-options",
            )
        clean[key] = value
    return clean


def parse_job_request(payload) -> JobRequest:
    """Validate a ``POST /jobs`` body into a :class:`JobRequest`.

    Raises :class:`ApiError` (status 400) on any malformation, including a
    BLIF text that does not parse — the error payload carries the
    structured :class:`~repro.errors.BlifError` coordinates so clients see
    ``{"code": "blif-error", "detail": {"line": N}}`` instead of a 500.
    """
    if not isinstance(payload, dict):
        raise ApiError(400, "request body must be a JSON object")
    blif = payload.get("blif")
    if not isinstance(blif, str) or not blif.strip():
        raise ApiError(400, "a non-empty 'blif' field is required")
    name = payload.get("name", "network")
    if not isinstance(name, str) or not name:
        raise ApiError(400, "'name' must be a non-empty string")
    jobs = payload.get("jobs", 1)
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ApiError(400, "'jobs' must be an integer")
    if not 1 <= jobs <= MAX_JOB_WORKERS:
        raise ApiError(
            400, f"'jobs' must be between 1 and {MAX_JOB_WORKERS}"
        )
    use_cache = payload.get("use_cache", True)
    if not isinstance(use_cache, bool):
        raise ApiError(400, "'use_cache' must be a boolean")
    unknown = set(payload) - {"blif", "name", "options", "jobs", "use_cache"}
    if unknown:
        raise ApiError(
            400, f"unknown field(s): {', '.join(sorted(unknown))}"
        )
    options = validate_options(payload.get("options", {}))
    request = JobRequest(
        blif=blif, name=name, options=options, jobs=jobs, use_cache=use_cache
    )
    # Fail fast on both the circuit and the option values: a job that can
    # never run must be rejected at the door, not enqueued.
    request.build_options()
    from repro.io.blif import parse_blif

    try:
        parse_blif(blif, default_name=name)
    except BlifError as exc:
        message = str(exc)
        if exc.line_number is not None:
            message = message.removeprefix(f"line {exc.line_number}: ")
        raise ApiError(
            400,
            f"malformed BLIF: {message}",
            code="blif-error",
            detail={"line": exc.line_number},
        ) from exc
    return request


def report_to_dict(network, report, source_verified: bool, wall_s: float) -> dict:
    """Render a finished synthesis into the job-result JSON payload."""
    from repro.core.area import network_stats
    from repro.io.thblif import to_thblif
    from repro.lint.emitters import to_json as lint_to_json
    from repro.lint.emitters import to_sarif as lint_to_sarif

    stats = network_stats(network)
    trace = report.trace
    result: dict = {
        "network": {
            "name": network.name,
            "gates": stats.gates,
            "levels": stats.levels,
            "area": stats.area,
            "thblif": to_thblif(network),
        },
        "verified": source_verified,
        "wall_s": round(wall_s, 6),
        "synthesis": {
            "nodes_processed": report.nodes_processed,
            "gates_emitted": report.gates_emitted,
            "binate_splits": report.binate_splits,
            "unate_splits": report.unate_splits,
            "theorem2_applications": report.theorem2_applications,
            "degraded_cones": report.degraded_cones,
            "degraded": [
                {"task": d.task_id, "reason": d.reason}
                for d in report.degraded
            ],
        },
    }
    if trace is not None:
        result["trace"] = {
            "tasks": trace.num_tasks,
            "backend": trace.backend,
            "jobs": trace.jobs,
            "gate_model": trace.gate_model,
            "wall_s": round(trace.wall_s, 6),
            "retries": trace.retries,
            "requeues": trace.requeues,
            "lease_expirations": trace.lease_expirations,
            "remote_workers": trace.remote_workers,
            "remote_fallback_tasks": trace.remote_fallback_tasks,
            "remote_fallback_reason": trace.remote_fallback_reason,
            "quarantined": len(trace.quarantined),
            "degraded": len(trace.degraded),
        }
        result["cache"] = {
            "checker_calls": int(trace.total("checker_calls")),
            "store_hits": int(trace.total("checker_cache_hits")),
            "persistent_hits": int(trace.total("persistent_hits")),
            "persistent_misses": int(trace.total("persistent_misses")),
            "transformed_hits": int(trace.total("transformed_hits")),
            "ilp_solved": int(trace.total("ilp_solved")),
            "fastpath_hits": int(trace.total("fastpath_hits")),
        }
    if report.lint is not None:
        result["lint"] = {
            "clean": report.lint.is_clean,
            "violations": report.lint.violations,
            "json": lint_to_json(report.lint),
            "sarif": lint_to_sarif(report.lint),
        }
    if getattr(report, "analysis", None) is not None:
        # The dataflow post-pass (options.analyze): certificate, verified
        # removal candidates, fixpoint accounting.
        result["analysis"] = report.analysis.to_dict()
    return result
