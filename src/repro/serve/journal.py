"""Crash-tolerant jobs journal for the ``tels serve`` daemon.

Same idiom as the persistent synthesis cache
(:mod:`repro.cache.store`): one JSON-lines file (``jobs.jsonl``) holding a
version header followed by incremental job records.  Every state change
appends one line ``{"id": ..., "t": ..., ...changed fields...}``; loading
folds the lines per job id (last writer wins per field), skipping torn or
corrupt lines, so the journal survives a daemon killed mid-write:

* a job that reached ``done``/``failed``/``cancelled`` before the crash is
  restored with its full result and served as history;
* a job still ``queued`` or ``running`` is restored with its persisted
  request and re-enqueued — an accepted job is never lost;
* a torn trailing line (the crash interrupted the append itself) only
  costs that one record: the previous state of the job still folds.

:meth:`JobJournal.compact` rewrites the file as one snapshot line per job,
durable-then-atomic exactly like cache compaction (fsync before rename),
bounding journal growth across restarts.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from pathlib import Path

logger = logging.getLogger("repro.serve")

JOURNAL_FILENAME = "jobs.jsonl"
FORMAT_NAME = "tels-jobs"
FORMAT_VERSION = 1


def journal_file(directory: str | Path) -> Path:
    return Path(directory) / JOURNAL_FILENAME


class JobJournal:
    """Append-only JSON-lines persistence of job state transitions."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.path = journal_file(directory)
        self._lock = threading.Lock()
        self.corrupt_lines = 0
        self.rejected_header = False
        self.directory.mkdir(parents=True, exist_ok=True)

    def _header(self) -> dict:
        return {"format": FORMAT_NAME, "version": FORMAT_VERSION}

    # -- writing -------------------------------------------------------
    def append(self, record: dict) -> None:
        """Persist one job record (must carry an ``id``); best effort."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            try:
                fresh = not self.path.exists()
                with open(self.path, "a") as handle:
                    if fresh:
                        handle.write(json.dumps(self._header()) + "\n")
                    handle.write(line + "\n")
                    handle.flush()
            except OSError as exc:
                logger.warning(
                    "jobs journal %s append failed (%s)", self.path, exc
                )

    def compact(self, snapshots: list[dict]) -> bool:
        """Rewrite the journal as one folded record per job, crash-safely."""
        lines = [json.dumps(self._header())]
        lines.extend(
            json.dumps(snap, separators=(",", ":"), sort_keys=True)
            for snap in snapshots
        )
        payload = "".join(line + "\n" for line in lines)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with self._lock:
            try:
                with open(tmp, "w") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self.path)
            except OSError as exc:
                logger.warning(
                    "jobs journal %s compaction failed (%s)", self.path, exc
                )
                return False
        return True

    # -- loading -------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """Fold the journal into ``{job_id: merged record}`` (insert order).

        Corrupt lines and records without an ``id`` are counted and
        skipped; a missing, unreadable, or header-mismatched file loads as
        empty (the daemon starts with no history rather than failing).
        """
        folded: dict[str, dict] = {}
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return folded
        except OSError as exc:
            logger.warning(
                "jobs journal %s unreadable (%s); starting empty",
                self.path,
                exc,
            )
            return folded
        lines = text.splitlines()
        if not lines:
            return folded
        try:
            header = json.loads(lines[0])
            ok = (
                header.get("format") == FORMAT_NAME
                and header.get("version") == FORMAT_VERSION
            )
        except (json.JSONDecodeError, AttributeError):
            ok = False
        if not ok:
            logger.warning(
                "jobs journal %s has a mismatched or corrupt header; "
                "starting empty",
                self.path,
            )
            self.rejected_header = True
            return folded
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                job_id = record["id"]
                if not isinstance(job_id, str):
                    raise TypeError("job id must be a string")
            except (json.JSONDecodeError, KeyError, TypeError):
                self.corrupt_lines += 1
                continue
            folded.setdefault(job_id, {}).update(record)
        if self.corrupt_lines:
            logger.warning(
                "jobs journal %s: skipped %d corrupt line(s)",
                self.path,
                self.corrupt_lines,
            )
        return folded
