"""The ``tels worker`` loop: a remote cone-synthesis worker process.

A worker is the distributed twin of one process-pool worker
(:mod:`repro.engine.executor`): it claims leased task batches from the
daemon's work broker, rebuilds the session state exactly like the pool
initializer would (network + options + preserved set + store seed, one
long-lived checker), runs each cone through the same
:class:`~repro.engine.cone.ConeSynthesizer` with the same per-task RNG
stream and chaos hook, and posts each :class:`~repro.engine.tasks.TaskResult`
back as an opaque blob.  Because cones are deterministic functions of
(task_id, options, source network), it does not matter *which* worker — or
the local fallback pool — runs a cone: the assembled network is
byte-identical either way.

Two deliberate differences from a pool worker:

* the persistent tier is the daemon's **network cache**
  (:class:`~repro.cache.network.NetworkCacheClient`): a fresh solve is
  published immediately, so a second worker sees it mid-run, and every
  served entry is re-verified by the store before use;
* liveness is leased, not parented: a background heartbeat renews every
  held lease, and a worker that dies (SIGKILL included) simply goes
  silent — the broker expires its leases into ``"crash"`` failures and
  the scheduler's retry ladder takes over.

Results are posted per cone, not per batch, so a worker killed mid-batch
only forfeits the cones it had not finished.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
import uuid
from dataclasses import dataclass

from repro.cache.network import NetworkCacheClient
from repro.core.identify import ThresholdChecker
from repro.engine.cone import ConeSynthesizer
from repro.engine.executor import _worker_fault_hook
from repro.engine.resilience import Deadline, ResiliencePolicy
from repro.engine.store import ResultStore
from repro.engine.tasks import TaskResult
from repro.errors import DeadlineExceeded, SynthesisError, TransientError
from repro.serve.broker import DEFAULT_LEASE_S, WorkClient, encode_blob
from repro.serve.transport import (
    HttpStatusError,
    HttpTransport,
    TransportError,
)

logger = logging.getLogger("repro.serve.worker")


def make_worker_id() -> str:
    return f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class _SessionState:
    """Rebuilt per-session worker state (the pool initializer's globals)."""

    etag: str
    network: object
    options: object
    preserved: frozenset
    checker: ThresholdChecker
    store: ResultStore
    deadline_per_cone_s: float | None


class Worker:
    """One claim/run/post loop against a daemon's work broker."""

    def __init__(
        self,
        url: str,
        worker_id: str | None = None,
        max_tasks: int = 4,
        poll_s: float = 0.2,
        stop: threading.Event | None = None,
        use_network_cache: bool = True,
    ):
        self.url = url.rstrip("/")
        self.worker_id = worker_id or make_worker_id()
        self.max_tasks = max_tasks
        self.poll_s = poll_s
        self.stop = stop if stop is not None else threading.Event()
        self.use_network_cache = use_network_cache
        self.client = WorkClient(HttpTransport(self.url))
        self._sessions: dict[str, _SessionState] = {}
        self._lease_s = DEFAULT_LEASE_S
        #: Posts that failed in flight, retried each loop turn.  Without
        #: this a finished cone whose post kept failing would stay leased
        #: forever (the heartbeat renews it); with it, delivery is at-least
        #: -once and the broker's first-write-wins absorbs the extras.
        self._outbox: list[tuple[str, list, list]] = []
        self.tasks_done = 0
        self.tasks_failed = 0

    # -- heartbeat -----------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self.stop.is_set():
            try:
                self.client.heartbeat(self.worker_id)
            except (TransportError, HttpStatusError):
                pass  # the broker being briefly away is the lease's problem
            # Renew at a third of the lease, bounded so a reconfigured
            # (shorter) lease takes effect within one beat.
            self.stop.wait(max(0.05, min(self._lease_s / 3.0, 2.0)))

    # -- session state -------------------------------------------------
    def _session(self, session_id: str, etag: str) -> _SessionState:
        state = self._sessions.get(session_id)
        if state is not None and state.etag == etag:
            return state
        # The payload travels as raw (ETag-checked) pickle bytes.
        payload = pickle.loads(self.client.fetch_payload(session_id))
        network = payload["network"]
        options = payload["options"]
        preserved = payload["preserved"]
        persistent = (
            NetworkCacheClient(self.url) if self.use_network_cache else None
        )
        store = ResultStore(persistent=persistent)
        store.merge(payload["store_seed"])
        store.begin_journal()
        checker = ThresholdChecker.from_options(options, store=store)
        state = _SessionState(
            etag=etag,
            network=network,
            options=options,
            preserved=preserved,
            checker=checker,
            store=store,
            deadline_per_cone_s=ResiliencePolicy.from_options(
                options
            ).deadline_per_cone_s,
        )
        self._sessions[session_id] = state
        return state

    # -- cone execution ------------------------------------------------
    def _run_task(
        self, state: _SessionState, task_id: str, root: str, attempt: int
    ) -> TaskResult:
        deadline = Deadline.after(state.deadline_per_cone_s)
        outcome = ConeSynthesizer(
            state.network,
            root,
            state.options,
            state.checker,
            state.preserved,
            deadline=deadline,
            fault_hook=_worker_fault_hook(task_id, attempt),
        ).run()
        outcome.metrics.attempts = attempt
        return TaskResult(
            task_id=task_id,
            gates=outcome.gates,
            discovered=outcome.discovered,
            metrics=outcome.metrics,
            stats_delta=outcome.stats_delta,
            store_delta=state.store.take_journal(),
            store_stats_delta=outcome.store_stats_delta,
            attempts=attempt,
        )

    def _post(
        self, session_id: str, results: list[dict], failures: list[dict]
    ) -> None:
        try:
            self.client.post_results(
                session_id, self.worker_id, results, failures
            )
        except (TransportError, HttpStatusError) as exc:
            logger.warning("posting results failed (will retry): %s", exc)
            self._outbox.append((session_id, results, failures))

    def _flush_outbox(self) -> None:
        pending, self._outbox = self._outbox, []
        for session_id, results, failures in pending:
            try:
                self.client.post_results(
                    session_id, self.worker_id, results, failures
                )
            except (TransportError, HttpStatusError):
                self._outbox.append((session_id, results, failures))

    def _handle_batch(self, session_id: str, etag: str, tasks: list[dict]):
        try:
            state = self._session(session_id, etag)
        except (TransportError, HttpStatusError, KeyError) as exc:
            self._post(
                session_id,
                [],
                [
                    {
                        "task_id": row["task_id"],
                        "kind": "error",
                        "message": f"worker could not load session: {exc}",
                        "attempt": row.get("attempt", 1),
                    }
                    for row in tasks
                ],
            )
            return
        for row in tasks:
            if self.stop.is_set():
                return  # unfinished leases expire and re-enqueue
            task_id = str(row["task_id"])
            attempt = int(row.get("attempt", 1))
            try:
                result = self._run_task(
                    state, task_id, str(row["root"]), attempt
                )
            except DeadlineExceeded as exc:
                failure = {"kind": "timeout", "message": str(exc)}
            except TransientError as exc:
                failure = {"kind": "error", "message": str(exc)}
            except SynthesisError as exc:
                # Deterministic synthesis bugs must fail the run, exactly
                # as they would propagate out of a pool worker.
                failure = {"kind": "fatal", "message": str(exc)}
            except Exception as exc:  # defensive: never kill the loop
                failure = {
                    "kind": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            else:
                self.tasks_done += 1
                self._post(
                    session_id,
                    [{"task_id": task_id, "blob": encode_blob(result)}],
                    [],
                )
                continue
            self.tasks_failed += 1
            failure.update({"task_id": task_id, "attempt": attempt})
            self._post(session_id, [], [failure])

    # -- main loop -----------------------------------------------------
    def run(self) -> int:
        """Claim and run cones until the stop event; returns cones done."""
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"tels-worker-hb-{self.worker_id}",
            daemon=True,
        )
        heartbeat.start()
        logger.info("worker %s polling %s", self.worker_id, self.url)
        try:
            while not self.stop.is_set():
                if self._outbox:
                    self._flush_outbox()
                try:
                    claim = self.client.claim(self.worker_id, self.max_tasks)
                except (TransportError, HttpStatusError):
                    self.stop.wait(self.poll_s)
                    continue
                self._lease_s = float(
                    claim.get("lease_s") or DEFAULT_LEASE_S
                )
                tasks = claim.get("tasks") or []
                if not tasks:
                    self.stop.wait(self.poll_s)
                    continue
                self._handle_batch(
                    claim["session"], claim.get("etag", ""), tasks
                )
        finally:
            self.stop.set()
            heartbeat.join(timeout=2.0)
        return self.tasks_done


def run_worker(
    url: str,
    worker_id: str | None = None,
    max_tasks: int = 4,
    poll_s: float = 0.2,
    stop: threading.Event | None = None,
    use_network_cache: bool = True,
) -> int:
    """Run a worker loop until ``stop`` is set (module-level convenience)."""
    return Worker(
        url,
        worker_id=worker_id,
        max_tasks=max_tasks,
        poll_s=poll_s,
        stop=stop,
        use_network_cache=use_network_cache,
    ).run()


def start_worker_thread(
    url: str, worker_id: str | None = None, **kwargs
) -> tuple[threading.Thread, threading.Event]:
    """An in-process worker (tests, benches): returns (thread, stop event)."""
    stop = threading.Event()
    worker = Worker(url, worker_id=worker_id, stop=stop, **kwargs)
    thread = threading.Thread(
        target=worker.run,
        name=f"tels-worker-{worker.worker_id}",
        daemon=True,
    )
    thread.start()
    return thread, stop


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``tels worker`` (also runnable as a module)."""
    import argparse
    import signal

    parser = argparse.ArgumentParser(prog="tels worker")
    parser.add_argument("--url", default=None)
    parser.add_argument("--id", default=None, dest="worker_id")
    parser.add_argument("--max-tasks", type=int, default=4)
    parser.add_argument("--poll-s", type=float, default=0.2)
    parser.add_argument("--no-network-cache", action="store_true")
    args = parser.parse_args(argv)

    from repro.serve.client import resolve_url

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        run_worker(
            resolve_url(args.url),
            worker_id=args.worker_id,
            max_tasks=args.max_tasks,
            poll_s=args.poll_s,
            stop=stop,
            use_network_cache=not args.no_network_cache,
        )
    except KeyboardInterrupt:
        stop.set()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
