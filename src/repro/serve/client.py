"""A stdlib (urllib) client for the ``tels serve`` job API.

Backs the ``tels submit/status/result/events/cancel`` subcommands and the
test suite; importable as a library for scripted submission.  Errors come
back as :class:`ServeClientError` carrying the daemon's structured payload
(``{"error": {"code", "message", ...}}``) plus the HTTP status, so callers
can distinguish a 400 (bad circuit) from a 404 (unknown job) from a 503
(queue full) without parsing prose.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from collections.abc import Iterator

from repro.errors import ReproError

#: Default daemon address; overridden by --url or $TELS_SERVE_URL.
DEFAULT_URL = "http://127.0.0.1:8765"


def resolve_url(explicit: str | None = None) -> str:
    """The daemon base URL from an explicit flag, the environment, or default."""
    return (
        explicit or os.environ.get("TELS_SERVE_URL") or DEFAULT_URL
    ).rstrip("/")


class ServeClientError(ReproError):
    """A non-2xx API response (or an unreachable daemon)."""

    def __init__(self, message: str, status: int = 0, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}

    @property
    def code(self) -> str:
        return self.payload.get("error", {}).get("code", "unknown")


class TelsClient:
    """Thin JSON-over-HTTP wrapper around one daemon."""

    def __init__(self, base_url: str | None = None, timeout: float = 60.0):
        self.base_url = resolve_url(base_url)
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _open(self, method: str, path: str, body: dict | None = None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except (json.JSONDecodeError, ValueError):
                payload = {"error": {"message": raw.decode(errors="replace")}}
            message = payload.get("error", {}).get("message", str(exc))
            raise ServeClientError(
                message, status=exc.code, payload=payload
            ) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"cannot reach daemon at {self.base_url}: {exc.reason}"
            ) from None

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        with self._open(method, path, body) as response:
            return json.loads(response.read())

    # -- API -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def submit(
        self,
        blif: str,
        name: str = "network",
        options: dict | None = None,
        jobs: int = 1,
        use_cache: bool = True,
    ) -> dict:
        """Submit BLIF text; returns the accepted job snapshot (202)."""
        return self._json(
            "POST",
            "/jobs",
            {
                "blif": blif,
                "name": name,
                "options": options or {},
                "jobs": jobs,
                "use_cache": use_cache,
            },
        )

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/jobs/{job_id}")

    def result(self, job_id: str, fmt: str = "json") -> dict | str:
        """The finished job's result: a dict for json/sarif, text for thblif."""
        with self._open("GET", f"/jobs/{job_id}/result?format={fmt}") as resp:
            raw = resp.read()
        if fmt == "thblif":
            return raw.decode()
        return json.loads(raw)

    def events(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Stream the job's NDJSON events until it turns terminal."""
        with self._open("GET", f"/jobs/{job_id}/events?since={since}") as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(
        self, job_id: str, timeout: float = 600.0, poll_s: float = 0.1
    ) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() > deadline:
                raise ServeClientError(
                    f"timed out waiting for job {job_id} "
                    f"(last state: {snapshot['state']})"
                )
            time.sleep(poll_s)
