"""A stdlib (urllib) client for the ``tels serve`` job API.

Backs the ``tels submit/status/result/events/cancel`` subcommands and the
test suite; importable as a library for scripted submission.  Errors come
back as :class:`ServeClientError` carrying the daemon's structured payload
(``{"error": {"code", "message", ...}}``) plus the HTTP status, so callers
can distinguish a 400 (bad circuit) from a 404 (unknown job) from a 503
(queue full) without parsing prose.

Requests ride the shared :class:`~repro.serve.transport.HttpTransport`:
every call has a connect/read timeout and a bounded deterministic
retry-with-backoff schedule (:mod:`repro.faults.retry`), so a hung or
briefly unreachable daemon costs a few seconds, never a hung ``tels
submit``.  Retries only fire on transport failures — a non-2xx response is
an answer and surfaces immediately.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterator

from repro.errors import ReproError
from repro.faults.retry import RetryPolicy
from repro.serve.transport import (
    HttpStatusError,
    HttpTransport,
    TransportError,
)

#: Default daemon address; overridden by --url or $TELS_SERVE_URL.
DEFAULT_URL = "http://127.0.0.1:8765"

#: Default per-request socket timeout for the job API.
DEFAULT_TIMEOUT_S = 60.0


def resolve_url(explicit: str | None = None) -> str:
    """The daemon base URL from an explicit flag, the environment, or default."""
    return (
        explicit or os.environ.get("TELS_SERVE_URL") or DEFAULT_URL
    ).rstrip("/")


class ServeClientError(ReproError):
    """A non-2xx API response (or an unreachable daemon)."""

    def __init__(self, message: str, status: int = 0, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}

    @property
    def code(self) -> str:
        return self.payload.get("error", {}).get("code", "unknown")


class TelsClient:
    """Thin JSON-over-HTTP wrapper around one daemon."""

    def __init__(
        self,
        base_url: str | None = None,
        timeout: float = DEFAULT_TIMEOUT_S,
        retry: RetryPolicy | None = None,
    ):
        self.base_url = resolve_url(base_url)
        self.timeout = timeout
        self.transport = HttpTransport(
            self.base_url, timeout_s=timeout, retry=retry
        )

    # -- transport -----------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None):
        try:
            return self.transport.request(method, path, body)
        except HttpStatusError as exc:
            payload = exc.payload()
            message = payload.get("error", {}).get("message", str(exc))
            raise ServeClientError(
                message, status=exc.status, payload=payload
            ) from None
        except TransportError as exc:
            raise ServeClientError(
                f"cannot reach daemon at {self.base_url}: {exc}"
            ) from None

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        _status, raw, _headers = self._request(method, path, body)
        return json.loads(raw)

    # -- API -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def submit(
        self,
        blif: str,
        name: str = "network",
        options: dict | None = None,
        jobs: int = 1,
        use_cache: bool = True,
    ) -> dict:
        """Submit BLIF text; returns the accepted job snapshot (202)."""
        return self._json(
            "POST",
            "/jobs",
            {
                "blif": blif,
                "name": name,
                "options": options or {},
                "jobs": jobs,
                "use_cache": use_cache,
            },
        )

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/jobs/{job_id}")

    def result(self, job_id: str, fmt: str = "json") -> dict | str:
        """The finished job's result: a dict for json/sarif, text for thblif."""
        _status, raw, _headers = self._request(
            "GET", f"/jobs/{job_id}/result?format={fmt}"
        )
        if fmt == "thblif":
            return raw.decode()
        return json.loads(raw)

    def events(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Stream the job's NDJSON events until it turns terminal."""
        try:
            stream = self.transport.open_stream(
                "GET", f"/jobs/{job_id}/events?since={since}"
            )
        except HttpStatusError as exc:
            payload = exc.payload()
            message = payload.get("error", {}).get("message", str(exc))
            raise ServeClientError(
                message, status=exc.status, payload=payload
            ) from None
        except TransportError as exc:
            raise ServeClientError(
                f"cannot reach daemon at {self.base_url}: {exc}"
            ) from None
        with stream:
            for line in stream:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(
        self, job_id: str, timeout: float = 600.0, poll_s: float = 0.1
    ) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() > deadline:
                raise ServeClientError(
                    f"timed out waiting for job {job_id} "
                    f"(last state: {snapshot['state']})"
                )
            time.sleep(poll_s)
