"""Shared HTTP transport for everything that talks to the daemon.

One :class:`HttpTransport` instance backs the job-API client
(:class:`~repro.serve.client.TelsClient`), the work-broker client
(:class:`~repro.serve.broker.WorkClient`), and the network cache tier
(:class:`~repro.cache.network.NetworkCacheClient`).  Centralizing the
transport buys three properties every caller needs and none should
re-implement:

* **timeouts** — a connect/read timeout on every request, so a hung daemon
  turns into a :class:`TransportError` instead of hanging the caller
  forever;
* **bounded retry with backoff** — transient transport failures (refused
  connections, dropped sockets) retry through the deterministic
  :mod:`repro.faults.retry` schedule before surfacing;
* **chaos injection** — the ``TELS_CHAOS`` network sites (``net-refuse``,
  ``net-disconnect``, ``net-latency``, ``net-dup``) fire here, on the real
  request path, so the whole distribution layer is fault-testable exactly
  like the engine.  Decisions are keyed on ``{method} {path}`` plus a
  per-transport sequence number and the attempt, so a retried request
  rolls the dice again.

Retried POSTs can be delivered twice when the first response is lost
mid-flight — the broker's idempotent result handling (first write wins,
duplicates dropped) is what makes that safe, and the ``net-dup`` site
exists to prove it stays safe.
"""

from __future__ import annotations

import itertools
import json
import time
import urllib.error
import urllib.request

from repro.faults.injector import NET_LATENCY_SECONDS, get_injector
from repro.faults.retry import RetryPolicy, retry_call

#: Default per-request socket timeout (connect + read), seconds.
DEFAULT_TIMEOUT_S = 30.0

#: Default transport retry schedule for transient network failures.
DEFAULT_RETRY = RetryPolicy(
    max_attempts=3, base_backoff_s=0.05, max_backoff_s=0.5
)


class TransportError(OSError):
    """The daemon could not be reached (after the retry budget)."""


class HttpStatusError(Exception):
    """A non-2xx HTTP response; carries the status and decoded body."""

    def __init__(self, status: int, body: bytes, url: str):
        super().__init__(f"HTTP {status} from {url}")
        self.status = status
        self.body = body

    def payload(self) -> dict:
        try:
            decoded = json.loads(self.body)
        except (json.JSONDecodeError, ValueError):
            return {"error": {"message": self.body.decode(errors="replace")}}
        return decoded if isinstance(decoded, dict) else {}


class HttpTransport:
    """Timeout-bounded, retrying, chaos-instrumented JSON-over-HTTP calls."""

    def __init__(
        self,
        base_url: str,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        retry: RetryPolicy | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry or DEFAULT_RETRY
        self._seq = itertools.count(1)

    # -- chaos ---------------------------------------------------------
    def _chaos_key(self, method: str, path: str) -> str:
        return f"{method} {path}|{next(self._seq)}"

    @staticmethod
    def _chaos_pre(key: str, attempt: int) -> None:
        """Sites that fire before the request leaves: refuse + latency."""
        injector = get_injector()
        if injector is None:
            return
        if injector.decide("net-latency", f"{key}|a{attempt}"):
            time.sleep(NET_LATENCY_SECONDS)
        if injector.decide("net-refuse", f"{key}|a{attempt}"):
            raise TransportError("chaos: connection refused")

    @staticmethod
    def _chaos_post(key: str, attempt: int) -> None:
        """Mid-body disconnect: the request was sent, the reply is lost."""
        injector = get_injector()
        if injector is not None and injector.decide(
            "net-disconnect", f"{key}|a{attempt}"
        ):
            raise TransportError("chaos: connection dropped mid-body")

    @staticmethod
    def _chaos_duplicate(key: str, method: str) -> bool:
        """Should this successful POST be delivered a second time?"""
        if method != "POST":
            return False
        injector = get_injector()
        return injector is not None and injector.decide("net-dup", key)

    # -- requests ------------------------------------------------------
    def _send(
        self,
        method: str,
        path: str,
        data: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, bytes, dict[str, str]]:
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return (
                    response.status,
                    response.read(),
                    dict(response.headers),
                )
        except urllib.error.HTTPError as exc:
            # A structured status is a *response*, not a transport failure:
            # never retried (the daemon already acted on the request).
            raise HttpStatusError(
                exc.code, exc.read(), self.base_url + path
            ) from None
        except urllib.error.URLError as exc:
            raise TransportError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None
        except (TimeoutError, ConnectionError, OSError) as exc:
            raise TransportError(
                f"transport failure against {self.base_url}: {exc}"
            ) from None

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """Issue one request; returns ``(status, body, headers)``.

        Transient transport failures (including injected ones) retry per
        the policy; a non-2xx response raises :class:`HttpStatusError`
        immediately (it is an answer, not an outage).
        """
        data = None
        send_headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            send_headers["Content-Type"] = "application/json"
        if headers:
            send_headers.update(headers)
        key = self._chaos_key(method, path)

        def attempt_once(attempt: int) -> tuple[int, bytes, dict[str, str]]:
            self._chaos_pre(key, attempt)
            result = self._send(method, path, data, send_headers)
            self._chaos_post(key, attempt)
            return result

        result = retry_call(
            attempt_once,
            self.retry,
            retryable=(TransportError,),
            key=key,
        )
        if self._chaos_duplicate(key, method):
            # Duplicate delivery: replay the successful POST and discard
            # the second answer — receivers must be idempotent.
            try:
                self._send(method, path, data, send_headers)
            except (TransportError, HttpStatusError):
                pass
        return result

    def json(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        """A JSON request/response round trip."""
        _status, raw, _headers = self.request(method, path, body, headers)
        return json.loads(raw) if raw.strip() else {}

    def open_stream(self, method: str, path: str, headers: dict | None = None):
        """A raw streaming response (event streams); no retry, one timeout."""
        send_headers = {"Accept": "application/json"}
        if headers:
            send_headers.update(headers)
        request = urllib.request.Request(
            self.base_url + path, headers=send_headers, method=method
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout_s)
        except urllib.error.HTTPError as exc:
            raise HttpStatusError(
                exc.code, exc.read(), self.base_url + path
            ) from None
        except urllib.error.URLError as exc:
            raise TransportError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None
