"""Defect-tolerance sweeps over a shared result store.

The Section VI-C experiments resynthesize the same benchmarks at several
``delta_on`` settings.  The ILP solutions change with the tolerances, but
the delta-independent half of every threshold check — cover minimization,
the positive-unate rewrite, the complement — does not.  Sweeping with one
shared :class:`~repro.engine.store.ResultStore` therefore re-solves only the
ILPs: the analysis tier reports hits from the second sweep point on, which
is the effect this module measures and the CLI ``tels sweep`` command
prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchgen.extended import build_extended_benchmark
from repro.core.area import network_stats
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.core.verify import verify_threshold_network
from repro.engine.store import ResultStore, StoreStats
from repro.errors import SynthesisError
from repro.network.scripts import prepare_tels


@dataclass(frozen=True)
class SweepPoint:
    """One delta setting of the sweep, with its store-reuse counters."""

    delta_on: int
    delta_off: int
    gates: int
    area: int
    checker_calls: int
    checker_cache_hits: int
    store_stats: StoreStats  # store activity during this point only

    @property
    def analysis_hit_rate(self) -> float:
        return self.store_stats.analysis_hit_rate

    @property
    def cache_hits(self) -> int:
        """Hits across both store tiers while this point synthesized."""
        return self.store_stats.hits


def run_delta_sweep(
    names: list[str],
    delta_ons: tuple[int, ...] = (0, 1, 2, 3),
    delta_off: int = 1,
    psi: int = 3,
    seed: int = 0,
    jobs: int = 1,
    store: ResultStore | None = None,
    verify_vectors: int = 512,
    cache_dir: str | None = None,
    gate_model: str = "ltg",
) -> list[SweepPoint]:
    """Synthesize every benchmark at every ``delta_on``, sharing one store.

    ``cache_dir`` (ignored when ``store`` is given) additionally layers the
    persistent NP-canonical cache under the shared store, so repeated sweeps
    warm-start from disk.  ``gate_model`` selects the :mod:`repro.gates`
    backend every sweep point synthesizes for — the store is shared either
    way, but backends never share entries (the store keys carry the model
    fingerprint).
    """
    if store is None:
        store = (
            ResultStore.with_cache_dir(cache_dir)
            if cache_dir is not None
            else ResultStore()
        )
    sources = {name: build_extended_benchmark(name) for name in names}
    prepared = {name: prepare_tels(net) for name, net in sources.items()}
    points: list[SweepPoint] = []
    for delta_on in delta_ons:
        before = store.stats.snapshot()
        gates = area = calls = hits = 0
        for name in names:
            th, report = synthesize_with_report(
                prepared[name],
                SynthesisOptions(
                    psi=psi,
                    delta_on=delta_on,
                    delta_off=delta_off,
                    seed=seed,
                    gate_model=gate_model,
                ),
                jobs=jobs,
                store=store,
            )
            if not verify_threshold_network(
                sources[name], th, vectors=verify_vectors
            ):
                raise SynthesisError(
                    f"sweep verification failed for {name!r} at "
                    f"delta_on={delta_on}"
                )
            stats = network_stats(th)
            gates += stats.gates
            area += stats.area
            calls += report.checker.stats.calls
            hits += report.checker.stats.cache_hits
        points.append(
            SweepPoint(
                delta_on=delta_on,
                delta_off=delta_off,
                gates=gates,
                area=area,
                checker_calls=calls,
                checker_cache_hits=hits,
                store_stats=store.stats.since(before),
            )
        )
    return points


def format_sweep(points: list[SweepPoint]) -> str:
    """Render the sweep with the store-reuse columns."""
    lines = [
        f"{'d_on':>5s} {'gates':>6s} {'area':>7s} {'checks':>7s} "
        f"{'hits':>6s} {'analysis-reuse':>14s}"
    ]
    for p in points:
        lines.append(
            f"{p.delta_on:5d} {p.gates:6d} {p.area:7d} "
            f"{p.checker_calls:7d} {p.cache_hits:6d} "
            f"{100.0 * p.analysis_hit_rate:13.1f}%"
        )
    if len(points) > 1:
        later = points[1:]
        reused = sum(p.store_stats.analysis_hits for p in later)
        lines.append(
            f"shared store: {reused} analyses reused after the first sweep "
            f"point (only the ILPs were re-solved)"
        )
    return "\n".join(lines)
