"""End-to-end synthesis flows for the experiments.

``run_flows`` takes a benchmark name, runs both competing flows —

* **one-to-one**: ``script.boolean`` stand-in → technology decomposition to
  fanin ψ (explicit inverters) → one LTG per gate;
* **TELS**: ``script.algebraic`` stand-in → fine factored decomposition →
  recursive threshold synthesis (Fig. 3) —

verifies both against the source network, and returns the
:class:`FlowResult`.  Results are cached per (benchmark, ψ, δ_on, δ_off,
seed), because the figure experiments re-use Table I's synthesized networks
many times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchgen.mcnc import build_benchmark
from repro.core.area import NetworkStats, network_stats
from repro.core.mapping import one_to_one_map
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.core.threshold import ThresholdNetwork
from repro.core.verify import verify_threshold_network
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork
from repro.network.scripts import prepare_one_to_one, prepare_tels


@dataclass
class FlowResult:
    """Both flows' outputs for one benchmark at one configuration."""

    name: str
    psi: int
    delta_on: int
    delta_off: int
    source: BooleanNetwork
    one_to_one: ThresholdNetwork
    tels: ThresholdNetwork
    one_to_one_stats: NetworkStats
    tels_stats: NetworkStats
    verified: bool

    @property
    def best(self) -> ThresholdNetwork:
        """The better-of-two guarantee from Section VI-A: TELS never ships a
        network with more gates than one-to-one mapping."""
        if self.tels_stats.gates <= self.one_to_one_stats.gates:
            return self.tels
        return self.one_to_one

    @property
    def gate_reduction_percent(self) -> float:
        before = self.one_to_one_stats.gates
        if before == 0:
            return 0.0
        return 100.0 * (before - self.tels_stats.gates) / before


_CACHE: dict[tuple, FlowResult] = {}
_NETWORK_CACHE: dict[str, BooleanNetwork] = {}
_PREP_CACHE: dict[tuple, BooleanNetwork] = {}


def clear_flow_cache() -> None:
    """Drop all cached flow results (for tests that tweak generators)."""
    _CACHE.clear()
    _NETWORK_CACHE.clear()
    _PREP_CACHE.clear()


def _source(name: str) -> BooleanNetwork:
    if name not in _NETWORK_CACHE:
        _NETWORK_CACHE[name] = build_benchmark(name)
    return _NETWORK_CACHE[name]


def run_flows(
    name: str,
    psi: int = 3,
    delta_on: int = 0,
    delta_off: int = 1,
    seed: int = 0,
    verify_vectors: int = 1024,
    jobs: int = 1,
    store=None,
) -> FlowResult:
    """Run (or fetch cached) one-to-one and TELS flows for one benchmark.

    ``jobs`` and ``store`` pass straight to the synthesis engine; neither
    changes the emitted network, so they are not part of the cache key.
    """
    key = (name, psi, delta_on, delta_off, seed)
    if key in _CACHE:
        return _CACHE[key]
    source = _source(name)

    prep_key = ("1to1", name, psi)
    if prep_key not in _PREP_CACHE:
        _PREP_CACHE[prep_key] = prepare_one_to_one(source, max_fanin=psi)
    one_to_one_net = one_to_one_map(
        _PREP_CACHE[prep_key], delta_on=delta_on, delta_off=delta_off
    )

    tels_key = ("tels", name)
    if tels_key not in _PREP_CACHE:
        _PREP_CACHE[tels_key] = prepare_tels(source)
    tels_net, report = synthesize_with_report(
        _PREP_CACHE[tels_key],
        SynthesisOptions(
            psi=psi, delta_on=delta_on, delta_off=delta_off, seed=seed
        ),
        jobs=jobs,
        store=store,
    )
    if report.lint is not None and report.lint.violations:
        # The figure experiments re-use these networks many times; never
        # cache one the static post-pass rejected.
        raise SynthesisError(
            f"flow lint failed for {name!r}: "
            f"{report.lint.violations} violation(s) "
            f"({', '.join(sorted(report.lint.by_rule()))})"
        )

    verified = verify_threshold_network(
        source, tels_net, vectors=verify_vectors
    ) and verify_threshold_network(
        source, one_to_one_net, vectors=verify_vectors
    )
    if not verified:
        raise SynthesisError(f"flow verification failed for {name!r}")
    result = FlowResult(
        name=name,
        psi=psi,
        delta_on=delta_on,
        delta_off=delta_off,
        source=source,
        one_to_one=one_to_one_net,
        tels=tels_net,
        one_to_one_stats=network_stats(one_to_one_net),
        tels_stats=network_stats(tels_net),
        verified=True,
    )
    _CACHE[key] = result
    return result
