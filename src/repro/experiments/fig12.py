"""Fig. 12: failure rate and network area vs defect tolerance at v = 0.8.

The tradeoff figure: raising δ_on makes the synthesized networks more robust
(failure rate drops) but costs RTD area, because the ILP must leave a larger
gap between ON-set and OFF-set weighted sums (Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchgen.mcnc import benchmark_names
from repro.core.defects import suite_failure_rate
from repro.experiments.flows import run_flows


@dataclass(frozen=True)
class Fig12Point:
    """One δ_on sample at fixed v: failure rate plus total suite area."""

    delta_on: int
    v: float
    failure_rate_percent: float
    total_area: int
    area_increase_percent: float


def run_fig12(
    names: list[str] | None = None,
    delta_ons: tuple[int, ...] = (0, 1, 2, 3),
    v: float = 0.8,
    psi: int = 3,
    trials: int = 3,
    vectors: int = 256,
    seed: int = 0,
) -> list[Fig12Point]:
    """Regenerate Fig. 12 (failure and area vs δ_on at one v)."""
    if names is None:
        names = benchmark_names(include_large=False)
    base_area: int | None = None
    points = []
    for delta_on in delta_ons:
        circuits = []
        total_area = 0
        for name in names:
            flow = run_flows(name, psi=psi, delta_on=delta_on, seed=seed)
            circuits.append((flow.source, flow.tels))
            total_area += flow.tels_stats.area
        if base_area is None:
            base_area = total_area
        rate = suite_failure_rate(
            circuits, v, trials=trials, seed=seed, vectors=vectors
        )
        increase = 100.0 * (total_area - base_area) / base_area
        points.append(Fig12Point(delta_on, v, rate, total_area, increase))
    return points


def format_fig12(points: list[Fig12Point]) -> str:
    """Render the tradeoff as an aligned text table."""
    lines = [
        f"Fig. 12 — failure rate and area vs delta_on (v={points[0].v})"
        if points
        else "Fig. 12 — (no points)",
        f"{'d_on':>5s} {'failure%':>9s} {'area':>8s} {'area+%':>7s}",
    ]
    for p in points:
        lines.append(
            f"{p.delta_on:5d} {p.failure_rate_percent:9.1f} "
            f"{p.total_area:8d} {p.area_increase_percent:7.1f}"
        )
    return "\n".join(lines)
