"""Suite-wide sweep over the full (34-circuit) benchmark population.

The paper synthesized "about 60 multi-output benchmarks" and reported 10.
This harness runs both flows over every stand-in (Table-I tier plus the
extended tier), verifies each result by simulation, and aggregates the same
statistics the paper summarizes in prose: average reduction, how often TELS
wins / ties / loses, and worst cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchgen.extended import build_extended_benchmark
from repro.core.area import NetworkStats, network_stats
from repro.core.identify import CheckStats
from repro.core.mapping import one_to_one_map
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.core.verify import verify_threshold_network
from repro.engine.store import StoreStats
from repro.errors import SynthesisError
from repro.network.scripts import prepare_one_to_one, prepare_tels


@dataclass(frozen=True)
class SuiteRow:
    """One benchmark's outcome in the suite sweep."""

    name: str
    one_to_one: NetworkStats
    tels: NetworkStats
    verified: bool
    check_stats: CheckStats | None = None
    store_stats: StoreStats | None = None
    #: Cones the resilience layer completed with the one-to-one fallback
    #: (0 in a healthy run; nonzero only under deadlines or chaos).
    degraded_cones: int = 0

    @property
    def reduction_percent(self) -> float:
        if not self.one_to_one.gates:
            return 0.0
        return (
            100.0
            * (self.one_to_one.gates - self.tels.gates)
            / self.one_to_one.gates
        )


@dataclass(frozen=True)
class SuiteSummary:
    """Aggregate over all rows."""

    rows: tuple[SuiteRow, ...]

    @property
    def mean_reduction_percent(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.reduction_percent for r in self.rows) / len(self.rows)

    @property
    def wins(self) -> int:
        return sum(1 for r in self.rows if r.tels.gates < r.one_to_one.gates)

    @property
    def ties(self) -> int:
        return sum(1 for r in self.rows if r.tels.gates == r.one_to_one.gates)

    @property
    def losses(self) -> int:
        return sum(1 for r in self.rows if r.tels.gates > r.one_to_one.gates)

    def worst(self) -> SuiteRow | None:
        return min(self.rows, key=lambda r: r.reduction_percent, default=None)

    def best(self) -> SuiteRow | None:
        return max(self.rows, key=lambda r: r.reduction_percent, default=None)

    @property
    def mean_tels_levels(self) -> float:
        """Average depth of the TELS networks ("well-balanced" claim)."""
        if not self.rows:
            return 0.0
        return sum(r.tels.levels for r in self.rows) / len(self.rows)

    @property
    def mean_one_to_one_levels(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.one_to_one.levels for r in self.rows) / len(self.rows)

    def check_totals(self) -> CheckStats:
        """Checker counters folded over every row (missing rows skipped)."""
        totals = CheckStats()
        for row in self.rows:
            if row.check_stats is not None:
                totals.add(row.check_stats)
        return totals

    @property
    def degraded_cones(self) -> int:
        """Degraded cones across the whole suite (expected 0)."""
        return sum(r.degraded_cones for r in self.rows)

    def store_totals(self) -> StoreStats:
        """Store counters folded over every row (missing rows skipped)."""
        totals = StoreStats()
        for row in self.rows:
            if row.store_stats is not None:
                totals.add(row.store_stats)
        return totals


def _run_one(
    name: str,
    psi: int,
    seed: int,
    verify_vectors: int,
    backend: str = "auto",
    cache_dir: str | None = None,
    gate_model: str = "ltg",
) -> SuiteRow:
    """Both flows for one benchmark (module-level: process-pool friendly)."""
    source = build_extended_benchmark(name)
    one_net = one_to_one_map(prepare_one_to_one(source, max_fanin=psi))
    tels_net, report = synthesize_with_report(
        prepare_tels(source),
        SynthesisOptions(
            psi=psi, seed=seed, backend=backend, gate_model=gate_model
        ),
        cache_dir=cache_dir,
    )
    verified = verify_threshold_network(
        source, tels_net, vectors=verify_vectors
    ) and verify_threshold_network(
        source, one_net, vectors=verify_vectors
    )
    if not verified:
        raise SynthesisError(f"suite verification failed on {name!r}")
    if report.lint is not None and report.lint.violations:
        # Fail fast: a suite run must not aggregate statistics over a
        # network the static post-pass rejected.
        worst = ", ".join(
            f"{rid}x{n}" for rid, n in sorted(report.lint.by_rule().items())
        )
        raise SynthesisError(
            f"suite lint failed on {name!r}: "
            f"{report.lint.violations} violation(s) ({worst})"
        )
    check = (
        report.checker.stats.snapshot() if report.checker is not None else None
    )
    store = report.checker.store if report.checker is not None else None
    return SuiteRow(
        name,
        network_stats(one_net),
        network_stats(tels_net),
        verified,
        check_stats=check,
        store_stats=store.stats.snapshot() if store is not None else None,
        degraded_cones=report.degraded_cones,
    )


def run_suite(
    names: list[str],
    psi: int = 3,
    seed: int = 0,
    verify_vectors: int = 512,
    jobs: int = 1,
    backend: str = "auto",
    cache_dir: str | None = None,
    gate_model: str = "ltg",
) -> SuiteSummary:
    """Run both flows over every named benchmark; verify everything.

    With ``jobs > 1`` whole benchmarks are dispatched across a process pool
    (the sweep is embarrassingly parallel); row order — and every synthesized
    network — is identical to a serial run.  ``backend`` selects the ILP
    solver backend for the TELS flow.  ``cache_dir`` points every run at the
    same persistent synthesis cache; loads are corruption-tolerant and each
    benchmark flushes only its new entries, so concurrent rows stay safe.
    ``gate_model`` selects the :mod:`repro.gates` backend the TELS flow
    synthesizes for (the one-to-one baseline always maps to plain LTGs).
    """
    from repro.engine.executor import resolve_jobs

    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(names) <= 1:
        rows = [
            _run_one(
                n, psi, seed, verify_vectors, backend, cache_dir, gate_model
            )
            for n in names
        ]
        return SuiteSummary(tuple(rows))
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        futures = [
            pool.submit(
                _run_one,
                n,
                psi,
                seed,
                verify_vectors,
                backend,
                cache_dir,
                gate_model,
            )
            for n in names
        ]
        rows = [f.result() for f in futures]
    return SuiteSummary(tuple(rows))


def format_suite(summary: SuiteSummary) -> str:
    """Render the sweep as aligned text plus the aggregate line."""
    lines = [
        f"{'benchmark':10s} {'1-to-1':>8s} {'TELS':>6s} {'red%':>7s}",
    ]
    for row in sorted(summary.rows, key=lambda r: -r.reduction_percent):
        lines.append(
            f"{row.name:10s} {row.one_to_one.gates:8d} {row.tels.gates:6d} "
            f"{row.reduction_percent:6.1f}"
        )
    worst = summary.worst()
    lines.append(
        f"\n{len(summary.rows)} circuits: mean reduction "
        f"{summary.mean_reduction_percent:.1f}%  "
        f"(W/T/L = {summary.wins}/{summary.ties}/{summary.losses}; "
        f"worst: {worst.name} {worst.reduction_percent:.1f}%)"
        if worst
        else "no rows"
    )
    totals = summary.check_totals()
    if totals.calls:
        lines.append(
            f"checks: {totals.calls} calls, {totals.ilp_solved} ILPs; "
            f"fastpath {totals.fastpath_hits} hits / "
            f"{totals.fastpath_negatives} negatives / "
            f"{totals.fastpath_misses} misses "
            f"({100.0 * totals.fastpath_hit_rate:.1f}% without ILP); "
            f"solvers: exact {totals.exact_solves} "
            f"({totals.exact_wall_s:.3f}s), "
            f"scipy {totals.scipy_solves} ({totals.scipy_wall_s:.3f}s)"
        )
    if summary.degraded_cones:
        lines.append(
            f"degraded: {summary.degraded_cones} cone(s) fell back to "
            "one-to-one mapping"
        )
    store = summary.store_totals()
    if store.persistent_lookups:
        lines.append(
            f"persistent cache: {store.persistent_hits} hits / "
            f"{store.persistent_misses} misses "
            f"({100.0 * store.persistent_hit_rate:.1f}%), "
            f"{store.transformed_hits} NP-transformed, "
            f"{store.transform_rejects} rejected"
        )
    return "\n".join(lines)
