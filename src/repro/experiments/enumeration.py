"""Section VI-B's enumeration claims about threshold functions.

The paper cites Muroga's counts: all positive-unate functions of three or
fewer variables are threshold; 17 of 20 four-variable and 92 of 168
five-variable positive-unate functions are (classes under variable
permutation, functions depending on all their variables).  This module
regenerates those numbers: monotone functions are enumerated by the
Dedekind recursion (a monotone function of n variables is a pair
``f(x_n=0) <= f(x_n=1)`` of monotone functions of n-1 variables),
canonicalized under variable permutation, filtered to full support, and each
class is checked with the ILP.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations

from repro.boolean.cover import Cover
from repro.core.identify import ThresholdChecker

#: (positive-unate classes, threshold classes) quoted in Section VI-B,
#: for functions depending on all n variables, up to permutation.
#: Note: our enumeration (and OEIS A006602 differences) gives 180 classes of
#: full-support monotone 5-variable functions, not the paper's 168 (which
#: coincides with the Dedekind number D(4) and appears to be a transcription
#: slip); the threshold count 92 matches exactly.
PAPER_COUNTS = {1: (1, 1), 2: (2, 2), 3: (5, 5), 4: (20, 17), 5: (168, 92)}
MEASURED_COUNTS = {1: (1, 1), 2: (2, 2), 3: (5, 5), 4: (20, 17), 5: (180, 92)}


@dataclass(frozen=True)
class EnumerationResult:
    """Counts for one variable arity."""

    nvars: int
    positive_unate_classes: int
    threshold_classes: int

    @property
    def fraction_threshold(self) -> float:
        if not self.positive_unate_classes:
            return 0.0
        return self.threshold_classes / self.positive_unate_classes


@lru_cache(maxsize=None)
def monotone_functions(nvars: int) -> tuple[tuple[int, ...], ...]:
    """All monotone (positive-unate) functions of ``nvars`` variables.

    Returned as truth-table tuples; the counts are the Dedekind numbers
    (2, 3, 6, 20, 168, 7581 for n = 0..5).
    """
    if nvars == 0:
        return ((0,), (1,))
    smaller = monotone_functions(nvars - 1)
    result = []
    for f0 in smaller:
        for f1 in smaller:
            if all(a <= b for a, b in zip(f0, f1)):
                result.append(f0 + f1)
    return tuple(result)


def _depends_on_all(bits: tuple[int, ...], nvars: int) -> bool:
    for var in range(nvars):
        step = 1 << var
        if all(
            bits[p] == bits[p + step]
            for p in range(len(bits))
            if not (p >> var) & 1
        ):
            return False
    return True


def _canonical_under_permutation(bits: tuple[int, ...], nvars: int) -> tuple:
    best = None
    for perm in permutations(range(nvars)):
        permuted = [0] * len(bits)
        for point in range(len(bits)):
            target = 0
            for var in range(nvars):
                if (point >> var) & 1:
                    target |= 1 << perm[var]
            permuted[target] = bits[point]
        key = tuple(permuted)
        if best is None or key < best:
            best = key
    return best


def count_positive_unate_threshold(
    nvars: int,
    full_support: bool = True,
    include_constants: bool = False,
    backend: str = "auto",
) -> EnumerationResult:
    """Count positive-unate permutation classes and how many are threshold.

    Args:
        nvars: variable count (5 reproduces the paper's 92/168; runs in
            seconds thanks to the Dedekind recursion).
        full_support: count only functions depending on *all* variables
            (the paper's convention).
        include_constants: also count the two constants (only meaningful
            with ``full_support=False``).
        backend: ILP backend for the threshold checks.
    """
    checker = ThresholdChecker(backend=backend)
    seen: set[tuple] = set()
    unate = threshold = 0
    for bits in monotone_functions(nvars):
        if not include_constants and (not any(bits) or all(bits)):
            continue
        if full_support and not _depends_on_all(bits, nvars):
            continue
        key = _canonical_under_permutation(bits, nvars)
        if key in seen:
            continue
        seen.add(key)
        unate += 1
        cover = Cover.from_truth_table(bits, nvars)
        if checker.check(cover) is not None:
            threshold += 1
    return EnumerationResult(nvars, unate, threshold)
