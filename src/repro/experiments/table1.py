"""Table I: threshold synthesis results with fanin restriction 3.

For each benchmark, the one-to-one mapping columns (gates / levels / area)
and the TELS columns, plus the per-row and average gate reduction.  The
paper's reference numbers are included so the harness can print paper-vs-
measured side by side (absolute values differ — our benchmark stand-ins are
not the original MCNC netlists — but the relative shape should match: TELS
well below one-to-one except on the wiring-dominated ``tcon``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchgen.mcnc import benchmark_names
from repro.experiments.flows import FlowResult, run_flows

#: (gates, levels, area) columns of Table I in the paper.
PAPER_TABLE1: dict[str, tuple[tuple[int, int, int], tuple[int, int, int]]] = {
    "cm152a": ((28, 4, 99), (13, 4, 69)),
    "cordic": ((92, 9, 307), (39, 8, 219)),
    "cm85a": ((70, 8, 254), (16, 6, 158)),
    "comp": ((181, 12, 625), (70, 9, 435)),
    "cmb": ((41, 7, 142), (16, 7, 103)),
    "term1": ((397, 12, 1459), (144, 16, 787)),
    "pm1": ((49, 5, 176), (22, 3, 119)),
    "x1": ((428, 10, 1589), (144, 10, 968)),
    "i10": ((2874, 49, 10934), (1276, 47, 7261)),
    "tcon": ((24, 2, 80), (32, 2, 96)),
}


@dataclass
class Table1Row:
    """One benchmark's measured row next to the paper's reference row."""

    flow: FlowResult
    paper_one_to_one: tuple[int, int, int]
    paper_tels: tuple[int, int, int]

    @property
    def name(self) -> str:
        return self.flow.name

    @property
    def paper_reduction_percent(self) -> float:
        gates_before = self.paper_one_to_one[0]
        return 100.0 * (gates_before - self.paper_tels[0]) / gates_before


def run_table1(
    names: list[str] | None = None,
    psi: int = 3,
    seed: int = 0,
    jobs: int = 1,
) -> list[Table1Row]:
    """Regenerate Table I (both flows on every benchmark, ψ = ``psi``)."""
    if names is None:
        names = benchmark_names()
    rows = []
    for name in names:
        flow = run_flows(name, psi=psi, seed=seed, jobs=jobs)
        paper_oto, paper_tels = PAPER_TABLE1.get(name, ((0, 0, 0), (0, 0, 0)))
        rows.append(Table1Row(flow, paper_oto, paper_tels))
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render the measured table (with paper reference) as aligned text."""
    header = (
        f"{'benchmark':10s} | {'one-to-one (ours)':>22s} | {'TELS (ours)':>22s} "
        f"| {'red%':>6s} | {'paper red%':>10s}"
    )
    lines = [header, "-" * len(header)]
    total_before = total_after = 0
    for row in rows:
        a, b = row.flow.one_to_one_stats, row.flow.tels_stats
        total_before += a.gates
        total_after += b.gates
        lines.append(
            f"{row.name:10s} | g={a.gates:5d} l={a.levels:3d} a={a.area:6d} "
            f"| g={b.gates:5d} l={b.levels:3d} a={b.area:6d} "
            f"| {row.flow.gate_reduction_percent:5.1f} "
            f"| {row.paper_reduction_percent:9.1f}"
        )
    if total_before:
        overall = 100.0 * (total_before - total_after) / total_before
        mean = sum(r.flow.gate_reduction_percent for r in rows) / len(rows)
        lines.append(
            f"{'TOTAL':10s} | g={total_before:5d}{'':16s} | "
            f"g={total_after:5d}{'':16s} | {overall:5.1f} | mean {mean:4.1f}"
        )
    return "\n".join(lines)
