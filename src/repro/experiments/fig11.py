"""Fig. 11: suite failure rate under parametric weight variation.

For each defect tolerance δ_on in 0..3 (δ_off fixed at 1), re-synthesize the
suite with those tolerances and sweep the variation multiplier ``v``; the
failure rate is the percentage of benchmarks for which some disturbed-weight
instance produces a wrong output during simulation (Section VI-C).  The
expected shape: failure rises with ``v`` and falls as δ_on grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchgen.mcnc import benchmark_names
from repro.core.defects import suite_failure_rate
from repro.experiments.flows import run_flows

DEFAULT_V = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)


@dataclass(frozen=True)
class Fig11Point:
    """Failure rate of the suite at one (δ_on, v) configuration."""

    delta_on: int
    v: float
    failure_rate_percent: float


def run_fig11(
    names: list[str] | None = None,
    delta_ons: tuple[int, ...] = (0, 1, 2, 3),
    multipliers: tuple[float, ...] = DEFAULT_V,
    psi: int = 3,
    trials: int = 3,
    vectors: int = 256,
    seed: int = 0,
) -> list[Fig11Point]:
    """Regenerate the Fig. 11 series (all δ_on curves)."""
    if names is None:
        names = benchmark_names(include_large=False)
    points = []
    for delta_on in delta_ons:
        circuits = []
        for name in names:
            flow = run_flows(name, psi=psi, delta_on=delta_on, seed=seed)
            circuits.append((flow.source, flow.tels))
        for v in multipliers:
            rate = suite_failure_rate(
                circuits, v, trials=trials, seed=seed, vectors=vectors
            )
            points.append(Fig11Point(delta_on, v, rate))
    return points


def format_fig11(points: list[Fig11Point]) -> str:
    """Render the curves as a (δ_on × v) text matrix."""
    delta_ons = sorted({p.delta_on for p in points})
    multipliers = sorted({p.v for p in points})
    by_key = {(p.delta_on, p.v): p.failure_rate_percent for p in points}
    lines = ["Fig. 11 — failure rate (%) vs variation multiplier v"]
    lines.append(
        f"{'v':>5s} " + " ".join(f"d_on={d:<4d}" for d in delta_ons)
    )
    for v in multipliers:
        cells = " ".join(f"{by_key[(d, v)]:8.1f}" for d in delta_ons)
        lines.append(f"{v:5.2f} {cells}")
    return "\n".join(lines)
