"""Reproduction harnesses for every table and figure in the paper.

* :mod:`repro.experiments.flows` — the two synthesis flows (TELS and
  one-to-one) packaged end-to-end, with caching;
* :mod:`repro.experiments.table1` — Table I (gates / levels / area at ψ=3);
* :mod:`repro.experiments.fig10` — Fig. 10 (gate count vs fanin restriction
  for ``comp``);
* :mod:`repro.experiments.fig11` — Fig. 11 (failure rate vs variation
  multiplier for δ_on = 0..3);
* :mod:`repro.experiments.fig12` — Fig. 12 (failure rate and area vs δ_on at
  v = 0.8);
* :mod:`repro.experiments.enumeration` — Section VI-B's counts of threshold
  functions among positive-unate functions of up to five variables.
"""

from repro.experiments.flows import FlowResult, run_flows, clear_flow_cache
from repro.experiments.table1 import Table1Row, run_table1, format_table1
from repro.experiments.fig10 import Fig10Point, run_fig10, format_fig10
from repro.experiments.fig11 import Fig11Point, run_fig11, format_fig11
from repro.experiments.fig12 import Fig12Point, run_fig12, format_fig12
from repro.experiments.enumeration import (
    count_positive_unate_threshold,
    EnumerationResult,
)

__all__ = [
    "FlowResult",
    "run_flows",
    "clear_flow_cache",
    "Table1Row",
    "run_table1",
    "format_table1",
    "Fig10Point",
    "run_fig10",
    "format_fig10",
    "Fig11Point",
    "run_fig11",
    "format_fig11",
    "Fig12Point",
    "run_fig12",
    "format_fig12",
    "count_positive_unate_threshold",
    "EnumerationResult",
]
