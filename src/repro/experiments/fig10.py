"""Fig. 10: gate count vs fanin restriction for ``comp``.

The paper relaxes ψ from 3 to 8 and observes that one-to-one mapping keeps
improving markedly (larger allowed fanin → better Boolean decomposition)
while TELS barely moves, because the fraction of wide functions that are
threshold drops steeply with fanin (Section VI-B).  The sweep here
regenerates both series for any benchmark (default ``comp``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.flows import run_flows


@dataclass(frozen=True)
class Fig10Point:
    """One ψ sample: both flows' gate counts."""

    psi: int
    one_to_one_gates: int
    tels_gates: int


def run_fig10(
    name: str = "comp",
    fanins: tuple[int, ...] = (3, 4, 5, 6, 7, 8),
    seed: int = 0,
) -> list[Fig10Point]:
    """Sweep the fanin restriction and collect both flows' gate counts."""
    points = []
    for psi in fanins:
        flow = run_flows(name, psi=psi, seed=seed)
        points.append(
            Fig10Point(
                psi=psi,
                one_to_one_gates=flow.one_to_one_stats.gates,
                tels_gates=flow.tels_stats.gates,
            )
        )
    return points


def format_fig10(points: list[Fig10Point], name: str = "comp") -> str:
    """Render the sweep as an aligned text table."""
    lines = [
        f"Fig. 10 — gate count vs fanin restriction ({name})",
        f"{'psi':>4s} {'one-to-one':>11s} {'TELS':>6s}",
    ]
    for p in points:
        lines.append(f"{p.psi:4d} {p.one_to_one_gates:11d} {p.tels_gates:6d}")
    return "\n".join(lines)
