"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Run as a module::

    python -m repro.experiments.report [--full] [-o EXPERIMENTS.md]

``--full`` includes the large i10 benchmark in Table I (slower).  All other
artifacts run on the standard suite.  Every number in the generated document
is measured at generation time; nothing is hard-coded except the paper's
reference values.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.benchgen.mcnc import benchmark_names
from repro.experiments.enumeration import (
    PAPER_COUNTS,
    count_positive_unate_threshold,
)
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.table1 import run_table1


def _table1_section(names: list[str]) -> str:
    rows = run_table1(names, psi=3)
    out = [
        "## E1 — Table I: synthesis results, fanin restriction ψ = 3",
        "",
        "Columns are gates / levels / area (Eq. 14).  Absolute values differ",
        "from the paper because the MCNC netlists are replaced by",
        "functionally-matched stand-ins (DESIGN.md §4); the reproduction",
        "target is the *shape*: TELS substantially below one-to-one",
        "everywhere except the wiring-dominated `tcon`.",
        "",
        "| benchmark | paper 1-to-1 | paper TELS | paper red% "
        "| ours 1-to-1 | ours TELS | ours red% |",
        "|---|---|---|---|---|---|---|",
    ]
    total_before = total_after = 0
    for row in rows:
        po, pt = row.paper_one_to_one, row.paper_tels
        a, b = row.flow.one_to_one_stats, row.flow.tels_stats
        total_before += a.gates
        total_after += b.gates
        out.append(
            f"| {row.name} | {po[0]}/{po[1]}/{po[2]} "
            f"| {pt[0]}/{pt[1]}/{pt[2]} | {row.paper_reduction_percent:.1f} "
            f"| {a.gates}/{a.levels}/{a.area} | {b.gates}/{b.levels}/{b.area} "
            f"| {row.flow.gate_reduction_percent:.1f} |"
        )
    mean = sum(r.flow.gate_reduction_percent for r in rows) / len(rows)
    overall = 100.0 * (total_before - total_after) / total_before
    paper_mean = sum(r.paper_reduction_percent for r in rows) / len(rows)
    out += [
        "",
        f"**Measured:** mean per-benchmark reduction {mean:.1f}% "
        f"(paper: {paper_mean:.1f}%), total-gate reduction {overall:.1f}%.",
        "All networks functionally verified against their sources by",
        "simulation (exhaustive up to 14 inputs, randomized above).",
        "The better-of-two selection (`FlowResult.best`) reproduces the",
        "paper's guarantee of never shipping more gates than one-to-one.",
        "",
        "Deviation: our `tcon` ties instead of losing (paper: 24 → 32",
        "gates).  The paper's TELS emitted redundant per-output buffer",
        "roots on wiring-dominated circuits; our collapsing avoids that",
        "artifact, so the guard never has to fire on this suite — the",
        "qualitative point (no benefit on wiring fabrics) still holds.",
    ]
    return "\n".join(out)


def _fig10_section() -> str:
    points = run_fig10("comp")
    out = [
        "## E2 — Fig. 10: gate count vs fanin restriction (`comp`)",
        "",
        "| ψ | one-to-one gates | TELS gates |",
        "|---|---|---|",
    ]
    for p in points:
        out.append(f"| {p.psi} | {p.one_to_one_gates} | {p.tels_gates} |")
    oto = [p.one_to_one_gates for p in points]
    tels = [p.tels_gates for p in points]
    out += [
        "",
        f"**Measured:** one-to-one drops {oto[0]} → {oto[-1]} "
        f"({100 * (oto[0] - oto[-1]) / oto[0]:.0f}%) as ψ is relaxed 3 → 8, "
        f"while TELS moves {tels[0]} → {tels[-1]} "
        f"({100 * (tels[0] - tels[-1]) / tels[0]:.0f}%).",
        "Paper's claim reproduced: larger fanin helps Boolean decomposition",
        "a lot but threshold synthesis very little, because the fraction of",
        "wide functions that are threshold collapses (see E8); ψ of 3-5 is",
        "the useful regime.",
    ]
    return "\n".join(out)


def _fig11_section(names: list[str]) -> str:
    multipliers = (0.2, 0.6, 1.0, 1.4, 1.8)
    deltas = (0, 1, 2, 3)
    points = run_fig11(
        names=names,
        delta_ons=deltas,
        multipliers=multipliers,
        trials=3,
        vectors=256,
    )
    by_key = {(p.delta_on, p.v): p.failure_rate_percent for p in points}
    out = [
        "## E3 — Fig. 11: failure rate vs weight-variation multiplier",
        "",
        "`w' = w + v*U(-0.5, 0.5)`; a benchmark fails when any simulated",
        "vector yields a wrong output under a disturbed-weight instance;",
        "the rate is the percentage of failing benchmarks (paper's metric).",
        "",
        "| v | " + " | ".join(f"δ_on={d}" for d in deltas) + " |",
        "|---|" + "---|" * len(deltas),
    ]
    for v in multipliers:
        cells = " | ".join(f"{by_key[(d, v)]:.0f}%" for d in deltas)
        out.append(f"| {v} | {cells} |")
    out += [
        "",
        "**Measured:** both paper trends hold — failure rate increases",
        "with v for every δ_on, and increasing δ_on pushes the curve down",
        "(robustness).  δ_on = 0 fails at any multiplier because the",
        "area-minimal ILP solution always leaves some true vector exactly",
        "at T (zero margin), and the exhaustive simulation always finds it;",
        "a single unit of tolerance moves the failure onset to v ≈ 2δ/k.",
        "Absolute rates depend on the stand-in suite and trial count, not",
        "compared numerically with the paper's figure.",
    ]
    return "\n".join(out)


def _fig12_section(names: list[str]) -> str:
    deltas = (0, 1, 2, 3)
    points = run_fig12(names=names, delta_ons=deltas, v=0.8, trials=3, vectors=256)
    out = [
        "## E4 — Fig. 12: failure rate and area vs δ_on (v = 0.8)",
        "",
        "| δ_on | failure rate | total suite area | area increase |",
        "|---|---|---|---|",
    ]
    for p in points:
        out.append(
            f"| {p.delta_on} | {p.failure_rate_percent:.0f}% "
            f"| {p.total_area} | +{p.area_increase_percent:.1f}% |"
        )
    out += [
        "",
        "**Measured:** the paper's tradeoff reproduces — each unit of",
        "δ_on lowers the failure rate and raises RTD area, because the ILP",
        "must separate ON and OFF weighted sums by a wider margin.",
    ]
    return "\n".join(out)


def _suite_section() -> str:
    from repro.benchgen.extended import all_benchmark_names
    from repro.experiments.extended_suite import run_suite

    names = [n for n in all_benchmark_names() if n != "i10"]
    summary = run_suite(names, psi=3)
    worst = summary.worst()
    best = summary.best()
    out = [
        "## E9 — suite-wide sweep (the paper's \"about 60 benchmarks\")",
        "",
        f"Both flows over {len(summary.rows)} stand-in circuits (Table-I",
        "tier + extended tier), every result verified by simulation:",
        "",
        f"* mean gate reduction **{summary.mean_reduction_percent:.1f}%**;",
        f"* TELS wins / ties / loses: **{summary.wins} / {summary.ties} / "
        f"{summary.losses}**;",
        f"* best case {best.name} ({best.reduction_percent:.1f}%), worst "
        f"case {worst.name} ({worst.reduction_percent:.1f}%)."
        if best and worst
        else "",
        "",
        "The losses are exactly the circuit class the paper flags in",
        "Section VI-A — functions that need *more* threshold gates than",
        "Boolean gates — and are neutralized by the better-of-two guard.",
        "Regenerate with `tels suite` or",
        "`pytest benchmarks/test_extended_suite.py -s`.",
    ]
    return "\n".join(out)


def _enumeration_section() -> str:
    out = [
        "## E8 — Section VI-B: threshold classes among positive-unate functions",
        "",
        "Classes are counted up to variable permutation, for functions",
        "depending on all variables (Muroga's convention).",
        "",
        "| variables | paper (threshold/unate) | measured |",
        "|---|---|---|",
    ]
    for n in (1, 2, 3, 4, 5):
        result = count_positive_unate_threshold(n)
        paper = PAPER_COUNTS[n]
        out.append(
            f"| {n} | {paper[1]}/{paper[0]} "
            f"| {result.threshold_classes}/{result.positive_unate_classes} |"
        )
    out += [
        "",
        "**Measured:** threshold counts match the paper exactly (all ≤3-var",
        "unate functions are threshold; 17 of 20 at four variables; 92 at",
        "five).  The five-variable *class* count measures 180, not the",
        "paper's 168 — 168 equals the Dedekind number D(4) and appears to be",
        "a transcription of a different convention; the threshold count 92",
        "is unambiguous and matches.",
    ]
    return "\n".join(out)


def _worked_examples_section() -> str:
    from repro.boolean.function import BooleanFunction
    from repro.core.identify import is_threshold_function

    v1 = is_threshold_function(BooleanFunction.parse("x1 x2' + x1 x3'"))
    v2 = is_threshold_function(BooleanFunction.parse("x1 x2' + x3"))
    v3 = is_threshold_function(BooleanFunction.parse("x1 x2 + x3 x4"))
    return "\n".join(
        [
            "## E6 — Section V-B / IV worked examples",
            "",
            "| function | paper | measured |",
            "|---|---|---|",
            f"| x1 x2' + x1 x3' | ⟨2,−1,−1;1⟩ | {v1} |",
            f"| x1 x2' + x3 | ⟨1,−1,2;1⟩ | {v2} |",
            f"| x1 x2 + x3 x4 | not threshold | "
            f"{'not threshold' if v3 is None else v3} |",
            "",
            "**Measured:** exact match, including the minimized objective",
            "`Σw + T` and the phase mapping of Section IV.",
        ]
    )


def _motivational_section() -> str:
    from repro.benchgen.paper_examples import motivational_network
    from repro.core.area import boolean_stats, network_stats
    from repro.core.synthesis import SynthesisOptions, synthesize
    from repro.core.verify import verify_threshold_network

    net = motivational_network()
    th = synthesize(net, SynthesisOptions(psi=4))
    ok = verify_threshold_network(net, th)
    before = boolean_stats(net)
    after = network_stats(th)
    return "\n".join(
        [
            "## E7 — Section III motivational example",
            "",
            f"Source network: {before.gates} gates, {before.levels} levels "
            "(paper Fig. 2(a): 7 gates, 5 levels).",
            f"Synthesized: {after.gates} gates, {after.levels} levels, "
            f"area {after.area}; verified = {ok}.",
            "",
            "**Measured:** the paper's hand-derived network (Fig. 2(b)) has",
            "5 gates and 3 levels; our flow finds an equivalent network with",
            f"{after.gates} gates and {after.levels} levels — the collapsing",
            "step discovers that x5·(n4 ∨ x̄1 x4) is a single threshold",
            "function, which the paper's derivation kept as two gates.",
        ]
    )


def _engine_section() -> str:
    from repro.benchgen.extended import build_extended_benchmark
    from repro.core.synthesis import SynthesisOptions, synthesize_with_report
    from repro.experiments.sweep import run_delta_sweep
    from repro.network.scripts import prepare_tels

    prepared = prepare_tels(build_extended_benchmark("comp"))
    _, report = synthesize_with_report(prepared, SynthesisOptions(psi=3))
    trace = report.trace
    check = report.checker.stats
    out = [
        "## E10 — engine instrumentation (per-cone tasks, shared store)",
        "",
        "The synthesis engine runs one task per preserved cone and records",
        "structured per-task events; `comp` at ψ = 3:",
        "",
        f"* {len(trace.tasks)} cone tasks, backend `{trace.backend}`, "
        f"wall {trace.wall_s:.2f}s;",
        f"* pass time: collapse {trace.total('collapse_s'):.2f}s, "
        f"check {trace.total('check_s'):.2f}s, "
        f"split {trace.total('split_s'):.2f}s;",
        f"* checker: {check.calls} calls, {check.cache_hits} cache hits "
        f"({100.0 * check.cache_hit_rate:.1f}%), {check.ilp_solved} ILPs, "
        f"{check.constraints_emitted} constraints emitted "
        f"(vs {check.constraints_without_elimination} without Theorem-3 "
        "elimination).",
        "",
        "Sweeping δ_on with one shared result store re-solves only the",
        "δ-dependent ILPs — the cover analyses (minimize, positive-unate",
        "rewrite, complement) are reused from the first sweep point:",
        "",
        "| δ_on | gates | checker calls | store analysis reuse |",
        "|---|---|---|---|",
    ]
    points = run_delta_sweep(
        ["cm152a", "cm85a", "cmb"], delta_ons=(0, 1, 2, 3)
    )
    for p in points:
        out.append(
            f"| {p.delta_on} | {p.gates} | {p.checker_calls} "
            f"| {100.0 * p.analysis_hit_rate:.0f}% |"
        )
    reused = sum(p.store_stats.analysis_hits for p in points[1:])
    out += [
        "",
        f"**Measured:** {reused} analyses reused after the first point;",
        "regenerate with `tels sweep`.  Parallel execution (`--jobs N`)",
        "distributes cones over a process pool and is bit-identical to the",
        "serial schedule (`tests/engine/test_engine.py`).",
    ]
    return "\n".join(out)


def generate(full: bool) -> str:
    names = benchmark_names(include_large=full)
    small = [n for n in names if n != "i10"]
    started = time.time()
    sections = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every number below is produced by the code in this repository at",
        "document-generation time (`python -m repro.experiments.report`).",
        "Paper values are transcribed from the DATE 2004 text.  See",
        "DESIGN.md for the experiment-to-module index and the substitutions",
        "(benchmark stand-ins, SIS and LP_SOLVE replacements).",
        "",
        _table1_section(names),
        "",
        _fig10_section(),
        "",
        _fig11_section(small),
        "",
        _fig12_section(small),
        "",
        "## E5 — functional correctness and the never-worse guarantee",
        "",
        "Every synthesized network in every experiment above was verified",
        "against its source by simulation (exhaustive for ≤ 14 inputs,",
        "randomized otherwise) — reproducing the paper's \"all synthesized",
        "networks were simulated for functional correctness\".  The",
        "better-of-two selection is exercised in",
        "`benchmarks/test_table1.py::test_better_of_two_guarantee`.",
        "",
        _worked_examples_section(),
        "",
        _motivational_section(),
        "",
        _enumeration_section(),
        "",
        _suite_section(),
        "",
        _engine_section(),
        "",
        "## Ablations (DESIGN.md §6)",
        "",
        "Regenerated by `pytest benchmarks/test_ablation_*.py -s`:",
        "",
        "* **Splitting heuristic** — most-frequent-variable vs random",
        "  splitting (Theorem-1 motivation);",
        "* **Theorem-2 combining** — on/off gate and area deltas plus",
        "  application counts;",
        "* **ILP** — redundant-constraint elimination counts and exact vs",
        "  HiGHS backend agreement/speed;",
        "* **Sharing preservation** — fanout-barrier on/off.",
        "",
        f"_Generated in {time.time() - started:.1f}s"
        f" ({'full suite incl. i10' if full else 'standard suite, i10 excluded'})._",
        "",
    ]
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="include i10")
    parser.add_argument(
        "-o", "--output", default="EXPERIMENTS.md", help="output path"
    )
    args = parser.parse_args(argv)
    text = generate(full=args.full)
    Path(args.output).write_text(text)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
