"""Lint report emitters: human text, machine JSON, and SARIF 2.1.0.

The SARIF emitter produces a minimal-but-valid 2.1.0 log — one run, the
full rule catalog in ``tool.driver.rules``, one result per diagnostic with
physical (file/line) and logical (gate) locations — so CI can upload the
output to code-scanning services directly.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.rules import registered_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF result levels for our severities.
_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}


def format_text(report: LintReport) -> str:
    """Compiler-style one-line-per-finding text, plus a summary line."""
    lines = []
    for diag in report.diagnostics:
        line = (
            f"{diag.location}: {diag.severity.value}: "
            f"[{diag.rule_id}] {diag.message}"
        )
        if diag.hint:
            line += f"  (hint: {diag.hint})"
        lines.append(line)
    if report.is_clean:
        lines.append(
            f"{report.network_name}: clean "
            f"({report.gates_checked} gates, "
            f"{len(report.rules_run)} rules, {report.wall_s:.3f}s)"
        )
    else:
        lines.append(
            f"{report.network_name}: {report.errors} error(s), "
            f"{report.warnings} warning(s), {report.notes} note(s) "
            f"({report.gates_checked} gates, "
            f"{len(report.rules_run)} rules, {report.wall_s:.3f}s)"
        )
    return "\n".join(lines)


def _diag_dict(diag: Diagnostic) -> dict:
    out = {
        "rule": diag.rule_id,
        "severity": diag.severity.value,
        "category": diag.category,
        "message": diag.message,
    }
    for key in ("gate", "net", "hint", "file", "line"):
        value = getattr(diag, key)
        if value is not None:
            out[key] = value
    return out


def to_json(report: LintReport) -> dict:
    """A plain-dict rendering (the ``--format json`` payload)."""
    return {
        "network": report.network_name,
        "file": report.file,
        "gates_checked": report.gates_checked,
        "rules_run": list(report.rules_run),
        "wall_s": round(report.wall_s, 6),
        "errors": report.errors,
        "warnings": report.warnings,
        "notes": report.notes,
        "clean": report.is_clean,
        "diagnostics": [_diag_dict(d) for d in report.diagnostics],
    }


def format_json(report: LintReport) -> str:
    return json.dumps(to_json(report), indent=2)


def _sarif_rules() -> list[dict]:
    rules = []
    for spec in registered_rules():
        rules.append(
            {
                "id": spec.rule_id,
                "name": spec.name,
                "shortDescription": {"text": spec.name},
                "fullDescription": {"text": spec.description},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[spec.severity]
                },
                "properties": {"category": spec.category},
            }
        )
    return rules


def _sarif_result(
    diag: Diagnostic,
    rule_index: dict[str, int],
    artifact_index: dict[str, int],
) -> dict:
    location: dict = {}
    if diag.file:
        artifact: dict = {"uri": diag.file}
        if diag.file in artifact_index:
            artifact["index"] = artifact_index[diag.file]
        physical: dict = {"artifactLocation": artifact}
        if diag.line is not None:
            physical["region"] = {"startLine": diag.line}
        location["physicalLocation"] = physical
    logical_name = diag.gate or diag.net
    if logical_name:
        location["logicalLocations"] = [
            {"name": logical_name, "kind": "element"}
        ]
    message = diag.message
    if diag.hint:
        message += f" (hint: {diag.hint})"
    result = {
        "ruleId": diag.rule_id,
        "ruleIndex": rule_index[diag.rule_id],
        "level": _SARIF_LEVEL[diag.severity],
        "message": {"text": message},
    }
    if location:
        result["locations"] = [location]
    return result


def to_sarif(report: LintReport) -> dict:
    """Render the report as a SARIF 2.1.0 log dict."""
    rules = _sarif_rules()
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    uris = report.artifact_files()
    artifact_index = {uri: i for i, uri in enumerate(uris)}
    run: dict = {
        "tool": {
            "driver": {
                "name": "tels-lint",
                "informationUri": (
                    "https://example.invalid/tels/docs/LINT.md"
                ),
                "version": "1.0.0",
                "rules": rules,
            }
        },
        "results": [
            _sarif_result(d, rule_index, artifact_index)
            for d in report.diagnostics
        ],
        "columnKind": "utf16CodeUnits",
    }
    if uris:
        run["artifacts"] = [{"location": {"uri": uri}} for uri in uris]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def format_sarif(report: LintReport) -> str:
    return json.dumps(to_sarif(report), indent=2)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "sarif": format_sarif,
}


def render(report: LintReport, fmt: str = "text") -> str:
    try:
        return FORMATTERS[fmt](report)
    except KeyError:
        raise ValueError(f"unknown lint output format {fmt!r}") from None
