"""The lint rule registry: structural and semantic checks over networks.

Every rule is a :class:`LintRule` — an id, a severity, a category, and a
check function over a :class:`LintContext` — registered at import time via
the :func:`rule` decorator so emitters, the CLI ``--rules`` filter, and the
SARIF rule table all enumerate one catalog (see ``docs/LINT.md``).

Rule families:

* ``TLS0xx`` **structural** — DAG shape: cycles, dangling fanins, undriven
  outputs, unreachable gates, fanin over the ψ restriction, duplicate gate
  bodies the cache tier should have deduplicated;
* ``TLM1xx`` **semantic** — gate meaning: the weight–threshold vector must
  realize its claimed defect tolerances (Eq. 1), weight signs must agree
  with the gate function's unateness, and the threshold must sit inside
  the bounds implied by the weights (the same empty-bound-box reasoning
  as ``repro.ilp.presolve``);
* ``TLP2xx`` **parse** — carriers for structured ``.thblif`` parse errors
  (raised by :mod:`repro.io.thblif`, surfaced as diagnostics by the CLI).

Gate-local semantic checks are factored as plain generator functions so the
engine's per-cone post-pass (:func:`repro.lint.runner.lint_gates`) can run
them on a task's gate list before the network is even assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator
from typing import TYPE_CHECKING

from repro.boolean.unate import Phase, semantic_unateness
from repro.core.threshold import (
    MultiThresholdVector,
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)
from repro.lint.diagnostics import Diagnostic, LintOptions, Severity

if TYPE_CHECKING:
    from repro.analysis.report import AnalysisResult
    from repro.gates import GateModel

#: Signature of every registered rule's check function.
RuleCheck = Callable[["LintContext"], Iterable[Diagnostic]]


@dataclass
class LintContext:
    """Everything a rule may consult, computed once per run."""

    network: ThresholdNetwork
    options: LintOptions
    source: object | None = None  # BooleanNetwork, for equivalence rules
    file: str | None = None
    _gates: list[ThresholdGate] | None = field(default=None, repr=False)
    #: Cached whole-network AnalysisResult shared by the TLA3xx rules.
    _analysis: AnalysisResult | None = field(default=None, repr=False)

    @property
    def gates(self) -> list[ThresholdGate]:
        if self._gates is None:
            self._gates = list(self.network.gates())
        return self._gates

    @property
    def defined(self) -> set[str]:
        """Every signal something may legally read."""
        return set(self.network.inputs) | {g.name for g in self.gates}

    def line_of(self, gate: str | None) -> int | None:
        if gate is None:
            return None
        return self.options.gate_lines.get(gate)

    def diag(
        self,
        rule: "LintRule",
        message: str,
        gate: str | None = None,
        net: str | None = None,
        hint: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=message,
            category=rule.category,
            gate=gate,
            net=net,
            hint=hint,
            file=self.file,
            line=self.line_of(gate),
        )


@dataclass(frozen=True)
class LintRule:
    """One registered check."""

    rule_id: str
    name: str
    severity: Severity
    category: str
    description: str
    check: Callable[["LintContext"], Iterable[Diagnostic]]
    needs_source: bool = False


#: Registry in registration order (stable: module import order).
RULE_REGISTRY: dict[str, LintRule] = {}


def rule(
    rule_id: str,
    name: str,
    severity: Severity,
    category: str,
    description: str,
    needs_source: bool = False,
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a check function as a lint rule."""

    def decorate(fn: RuleCheck) -> RuleCheck:
        if rule_id in RULE_REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        RULE_REGISTRY[rule_id] = LintRule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            category=category,
            description=description,
            check=fn,
            needs_source=needs_source,
        )
        return fn

    return decorate


def registered_rules() -> tuple[LintRule, ...]:
    return tuple(RULE_REGISTRY.values())


def get_rule(rule_id: str) -> LintRule:
    return RULE_REGISTRY[rule_id]


# ----------------------------------------------------------------------
# Structural rules (TLS0xx)
# ----------------------------------------------------------------------
@rule(
    "TLS001",
    "combinational-cycle",
    Severity.ERROR,
    "structure",
    "The gate graph must be acyclic; a cycle has no combinational meaning.",
)
def check_cycles(ctx: LintContext) -> Iterator[Diagnostic]:
    indegree: dict[str, int] = {}
    readers: dict[str, list[str]] = {}
    gate_names = {g.name for g in ctx.gates}
    for gate in ctx.gates:
        indegree.setdefault(gate.name, 0)
        for fanin in gate.inputs:
            if fanin in gate_names:
                indegree[gate.name] += 1
                readers.setdefault(fanin, []).append(gate.name)
    ready = [n for n, d in indegree.items() if d == 0]
    seen = 0
    while ready:
        name = ready.pop()
        seen += 1
        for reader in readers.get(name, ()):
            indegree[reader] -= 1
            if indegree[reader] == 0:
                ready.append(reader)
    if seen == len(indegree):
        return
    cyclic = sorted(n for n, d in indegree.items() if d > 0)
    yield ctx.diag(
        RULE_REGISTRY["TLS001"],
        f"combinational cycle through {len(cyclic)} gate(s): "
        + ", ".join(cyclic[:5])
        + ("…" if len(cyclic) > 5 else ""),
        gate=cyclic[0],
        hint="break the loop by re-synthesizing the cone rooted at one "
        "of the listed gates",
    )


@rule(
    "TLS002",
    "dangling-fanin",
    Severity.ERROR,
    "structure",
    "Every gate input must name a primary input or another gate.",
)
def check_dangling_fanins(ctx: LintContext) -> Iterator[Diagnostic]:
    defined = ctx.defined
    for gate in ctx.gates:
        for fanin in gate.inputs:
            if fanin not in defined:
                yield ctx.diag(
                    RULE_REGISTRY["TLS002"],
                    f"gate {gate.name!r} reads undefined signal {fanin!r}",
                    gate=gate.name,
                    net=fanin,
                    hint="declare the signal as a primary input or add the "
                    "gate that drives it",
                )


@rule(
    "TLS003",
    "undriven-output",
    Severity.ERROR,
    "structure",
    "Every primary output must be a primary input or a gate output.",
)
def check_undriven_outputs(ctx: LintContext) -> Iterator[Diagnostic]:
    defined = ctx.defined
    for out in ctx.network.outputs:
        if out not in defined:
            yield ctx.diag(
                RULE_REGISTRY["TLS003"],
                f"primary output {out!r} is driven by nothing",
                net=out,
                hint="add the gate driving the output or drop it from "
                ".outputs",
            )


@rule(
    "TLS004",
    "unreachable-gate",
    Severity.WARNING,
    "structure",
    "Gates outside every primary-output cone are dead area.",
)
def check_unreachable_gates(ctx: LintContext) -> Iterator[Diagnostic]:
    gates = {g.name: g for g in ctx.gates}
    live: set[str] = set()
    stack = [o for o in ctx.network.outputs if o in gates]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        for fanin in gates[name].inputs:
            if fanin in gates:
                stack.append(fanin)
    for gate in ctx.gates:
        if gate.name not in live:
            yield ctx.diag(
                RULE_REGISTRY["TLS004"],
                f"gate {gate.name!r} feeds no primary output",
                gate=gate.name,
                hint="run ThresholdNetwork.cleanup() (the engine does this "
                "before emitting)",
            )


@rule(
    "TLS005",
    "fanin-overflow",
    Severity.ERROR,
    "structure",
    "No gate may exceed the fanin restriction ψ it was synthesized under.",
)
def check_fanin_overflow(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.options.psi is None:
        return
    for gate in ctx.gates:
        yield from check_gate_fanin(gate, ctx.options.psi, ctx)


@rule(
    "TLS006",
    "duplicate-gate-body",
    Severity.NOTE,
    "structure",
    "Two gates computing the same function of the same fanins could be "
    "shared.  Note-level: independent cones legitimately re-emit equal "
    "bodies (the cache dedupes their ILP solves, not the gate instances), "
    "but each duplicate is a gate of recoverable area.",
)
def check_duplicate_bodies(ctx: LintContext) -> Iterator[Diagnostic]:
    seen: dict[tuple, str] = {}
    for gate in ctx.gates:
        # Key on the whole (frozen) vector: multi-threshold gates agreeing
        # on weights and first threshold may still differ in later ones.
        body = (gate.inputs, gate.vector)
        first = seen.get(body)
        if first is None:
            seen[body] = gate.name
            continue
        yield ctx.diag(
            RULE_REGISTRY["TLS006"],
            f"gate {gate.name!r} duplicates the body of {first!r} "
            f"(same fanins, same vector)",
            gate=gate.name,
            hint=f"rewire readers of {gate.name!r} onto {first!r} and drop "
            "the duplicate",
        )


@rule(
    "TLS007",
    "unused-input",
    Severity.NOTE,
    "structure",
    "A primary input no gate reads (and that is not itself an output).",
)
def check_unused_inputs(ctx: LintContext) -> Iterator[Diagnostic]:
    read: set[str] = set()
    for gate in ctx.gates:
        read.update(gate.inputs)
    for pi in ctx.network.inputs:
        if pi not in read and pi not in ctx.network.outputs:
            yield ctx.diag(
                RULE_REGISTRY["TLS007"],
                f"primary input {pi!r} is never read",
                net=pi,
            )


@rule(
    "TLS008",
    "duplicate-fanin",
    Severity.ERROR,
    "structure",
    "A gate listing the same signal twice double-counts its weight.",
)
def check_duplicate_fanins(ctx: LintContext) -> Iterator[Diagnostic]:
    for gate in ctx.gates:
        seen: set[str] = set()
        for fanin in gate.inputs:
            if fanin in seen:
                yield ctx.diag(
                    RULE_REGISTRY["TLS008"],
                    f"gate {gate.name!r} lists fanin {fanin!r} twice",
                    gate=gate.name,
                    net=fanin,
                    hint="merge the two connections into one input with the "
                    "summed weight",
                )
            seen.add(fanin)


# ----------------------------------------------------------------------
# Gate-local semantic checks (shared with the per-cone post-pass)
# ----------------------------------------------------------------------
def _enumerable(gate: ThresholdGate, max_fanin: int) -> bool:
    return gate.fanin <= max_fanin


def check_gate_fanin(
    gate: ThresholdGate, psi: int, ctx: LintContext | None = None
) -> Iterator[Diagnostic]:
    if gate.fanin > psi:
        yield _gate_diag(
            "TLS005",
            ctx,
            gate,
            f"gate {gate.name!r} has fanin {gate.fanin} > psi={psi}",
            hint="re-synthesize the cone with the intended fanin "
            "restriction",
        )


def check_gate_margins(
    gate: ThresholdGate,
    max_fanin: int,
    ctx: LintContext | None = None,
    model: GateModel | None = None,
) -> Iterator[Diagnostic]:
    """Recompute worst-case ON/OFF margins against the claimed tolerances.

    The Eq. (1) contract: every true input vector's weighted sum reaches
    ``T + delta_on`` and every false one stays at or below
    ``T - delta_off``.  The recompute is delegated to the gate model
    (``model.gate_margins``) rather than assuming the single-threshold
    ``sum(w·x) >= T`` form — multi-threshold gates measure against the
    *nearest enclosing* thresholds.  Enumeration is ``2**fanin`` points,
    so wide gates are skipped (they cannot come out of the synthesizer,
    whose ψ is small).
    """
    if not _enumerable(gate, max_fanin):
        return
    if model is not None:
        on_margin, off_margin = model.gate_margins(gate)
    else:
        on_margin, off_margin = gate.margins()
    if on_margin is not None and on_margin < gate.delta_on:
        yield _gate_diag(
            "TLM101",
            ctx,
            gate,
            f"gate {gate.name!r} claims delta_on={gate.delta_on} but its "
            f"tightest ON vector clears T by only {on_margin}",
            hint="re-solve the gate's ILP with the claimed tolerances or "
            "lower the recorded delta_on",
        )
    if off_margin is not None and off_margin < gate.delta_off:
        yield _gate_diag(
            "TLM101",
            ctx,
            gate,
            f"gate {gate.name!r} claims delta_off={gate.delta_off} but its "
            f"tightest OFF vector sits only {off_margin} below T",
            hint="re-solve the gate's ILP with the claimed tolerances or "
            "lower the recorded delta_off",
        )


def check_gate_weight_signs(
    gate: ThresholdGate, max_fanin: int, ctx: LintContext | None = None
) -> Iterator[Diagnostic]:
    """Weight signs must agree with the gate function's unateness.

    A threshold function is positive unate in every positive-weight input
    and negative unate in every negative-weight input; an input whose
    weight cannot change the output (semantically absent) is a redundant
    connection, and a zero weight is a dead input outright.

    Only the zero-weight check applies to multi-threshold gates: crossing
    a higher threshold can turn the output back *off*, so their functions
    are legitimately binate in positive-weight inputs (that is the whole
    point of the backend — absorbing parity cones into one gate).
    """
    if gate.fanin == 0:
        return
    zero_named = [
        name for name, w in zip(gate.inputs, gate.weights) if w == 0
    ]
    for name in zero_named:
        yield _gate_diag(
            "TLM102",
            ctx,
            gate,
            f"gate {gate.name!r} input {name!r} has weight 0 (dead input)",
            hint="drop the input from the gate; the function cannot depend "
            "on it",
        )
    if not _enumerable(gate, max_fanin):
        return
    if not isinstance(gate.vector, WeightThresholdVector):
        return  # multi-threshold gates are deliberately binate
    report = semantic_unateness(gate.local_function().cover)
    for name, weight, phase in zip(gate.inputs, gate.weights, report.phases):
        if weight == 0:
            continue  # already reported above
        if phase is Phase.ABSENT:
            yield _gate_diag(
                "TLM102",
                ctx,
                gate,
                f"gate {gate.name!r} input {name!r} has weight {weight} but "
                f"the gate function does not depend on it",
                hint="the weight is redundant area; re-solve the gate "
                "without this input",
            )
        elif weight > 0 and phase is Phase.NEGATIVE:
            yield _gate_diag(
                "TLM102",
                ctx,
                gate,
                f"gate {gate.name!r} input {name!r}: positive weight "
                f"{weight} but the function is negative unate in it",
            )
        elif weight < 0 and phase is Phase.POSITIVE:
            yield _gate_diag(
                "TLM102",
                ctx,
                gate,
                f"gate {gate.name!r} input {name!r}: negative weight "
                f"{weight} but the function is positive unate in it",
            )


def check_gate_threshold_bounds(
    gate: ThresholdGate, ctx: LintContext | None = None
) -> Iterator[Diagnostic]:
    """The threshold must sit inside the bounds the weights imply.

    In the positive-unate form the reachable weighted sums span
    ``[0, sum(|w|)]``, so a meaningful gate needs
    ``1 <= T_pos <= sum(|w|)``; anything outside is a constant gate —
    the same empty-bound-box reasoning ``repro.ilp.presolve`` uses to
    declare a model infeasible before any solver runs.  Zero-fanin gates
    are exempt: the synthesizer legitimately emits them for constant
    nodes.

    Multi-threshold gates have no positive-unate normal form; for them
    the equivalent check is that at least one threshold is *crossable* —
    it lies strictly above the minimum reachable sum and at or below the
    maximum.  If none is, the output never changes and the gate is
    constant.
    """
    if gate.fanin == 0:
        return
    if isinstance(gate.vector, MultiThresholdVector):
        lo = sum(w for w in gate.weights if w < 0)
        hi = sum(w for w in gate.weights if w > 0)
        if not any(lo < t <= hi for t in gate.vector.thresholds):
            yield _gate_diag(
                "TLM103",
                ctx,
                gate,
                f"gate {gate.name!r}: no threshold in "
                f"{gate.vector.thresholds} lies within the reachable sum "
                f"range ({lo}, {hi}]: the gate is constant",
                hint="replace the gate with a constant gate and drop the "
                "uncrossable thresholds",
            )
        return
    t_pos = gate.vector.to_positive_threshold()
    weight_sum = sum(abs(w) for w in gate.weights)
    if t_pos <= 0:
        yield _gate_diag(
            "TLM103",
            ctx,
            gate,
            f"gate {gate.name!r} threshold {gate.threshold} is at or below "
            f"the minimum reachable sum: the gate is constant 1",
            hint="replace the gate with a constant-1 gate (no inputs, T=0)",
        )
    elif t_pos > weight_sum:
        yield _gate_diag(
            "TLM103",
            ctx,
            gate,
            f"gate {gate.name!r} threshold {gate.threshold} exceeds the "
            f"maximum reachable sum {weight_sum}: the gate is constant 0",
            hint="replace the gate with a constant-0 gate (no inputs, T>0)",
        )


def check_gate_delta_sanity(
    gate: ThresholdGate, ctx: LintContext | None = None
) -> Iterator[Diagnostic]:
    if gate.delta_on < 0 or gate.delta_off < 0:
        yield _gate_diag(
            "TLM104",
            ctx,
            gate,
            f"gate {gate.name!r} records negative defect tolerances "
            f"(delta_on={gate.delta_on}, delta_off={gate.delta_off})",
        )
    elif gate.fanin > 0 and gate.delta_off == 0:
        yield _gate_diag(
            "TLM104",
            ctx,
            gate,
            f"gate {gate.name!r} claims delta_off=0, which tolerates no "
            f"OFF-side perturbation at all",
            hint="integer weighted sums always sit >= 1 below T when off; "
            "record delta_off=1 for an honest margin",
        )


def check_gate_flash_grid(
    gate: ThresholdGate,
    model: GateModel,
    max_fanin: int = 16,
    ctx: LintContext | None = None,
) -> Iterator[Diagnostic]:
    """Flash calibration audit: weights on the device grid, δ over drift.

    A flash-calibrated network only programs weight magnitudes the device
    exposes (``|w| <= levels``), and must hold margins at least the
    drift-derived floor ``ceil(drift * max|w|)`` — otherwise threshold
    drift over the retention window can flip the gate.  Multi-threshold
    vectors cannot be programmed on a single-threshold flash cell at all.
    """
    if gate.fanin == 0:
        return
    if not isinstance(gate.vector, WeightThresholdVector):
        yield _gate_diag(
            "TLM106",
            ctx,
            gate,
            f"gate {gate.name!r} is a multi-threshold gate, which a "
            f"single-threshold flash cell cannot realize",
            hint="re-synthesize the network with --gate-model flash",
        )
        return
    levels = model.levels
    off_grid = [
        (name, w)
        for name, w in zip(gate.inputs, gate.weights)
        if abs(w) > levels
    ]
    for name, weight in off_grid:
        yield _gate_diag(
            "TLM106",
            ctx,
            gate,
            f"gate {gate.name!r} input {name!r} weight {weight} is off the "
            f"device grid (|w| > {levels} programmable levels)",
            hint="re-solve the gate with the flash model's weight box",
        )
    if off_grid or not _enumerable(gate, max_fanin):
        return
    required = model.required_margin(gate.weights)
    if required == 0:
        return
    on_margin, off_margin = model.gate_margins(gate)
    for side, margin in (("ON", on_margin), ("OFF", off_margin)):
        if margin is not None and margin < required:
            yield _gate_diag(
                "TLM106",
                ctx,
                gate,
                f"gate {gate.name!r} {side} margin {margin} is below the "
                f"drift floor {required} "
                f"(ceil({model.drift} * max|w|))",
                hint="re-solve with larger tolerances or smaller weights; "
                "the flash backend's re-quantization loop does this "
                "automatically",
            )


GATE_CHECKS: tuple[tuple[str, Callable], ...] = (
    ("TLM101", check_gate_margins),
    ("TLM102", check_gate_weight_signs),
    ("TLM103", check_gate_threshold_bounds),
    ("TLM104", check_gate_delta_sanity),
)


def _gate_diag(
    rule_id: str,
    ctx: LintContext | None,
    gate: ThresholdGate,
    message: str,
    hint: str | None = None,
) -> Diagnostic:
    spec = RULE_REGISTRY[rule_id]
    if ctx is not None:
        return ctx.diag(spec, message, gate=gate.name, hint=hint)
    return Diagnostic(
        rule_id=spec.rule_id,
        severity=spec.severity,
        message=message,
        category=spec.category,
        gate=gate.name,
        hint=hint,
    )


# ----------------------------------------------------------------------
# Semantic rules (TLM1xx) — network-level wrappers over the gate checks
# ----------------------------------------------------------------------
@rule(
    "TLM101",
    "margin-violation",
    Severity.ERROR,
    "semantic",
    "Every gate's recomputed worst-case ON/OFF margins must cover the "
    "delta_on/delta_off tolerances it was solved with (Eq. 1).",
)
def check_margins(ctx: LintContext) -> Iterator[Diagnostic]:
    from repro.gates import get_model

    model = get_model(getattr(ctx.options, "gate_model", "ltg"))
    for gate in ctx.gates:
        yield from check_gate_margins(
            gate, ctx.options.max_enumeration_fanin, ctx, model=model
        )


@rule(
    "TLM102",
    "weight-sign-consistency",
    Severity.WARNING,
    "semantic",
    "Weight signs must match the gate function's per-input unateness; "
    "zero or semantically-dead weights are wasted area.",
)
def check_weight_signs(ctx: LintContext) -> Iterator[Diagnostic]:
    for gate in ctx.gates:
        yield from check_gate_weight_signs(
            gate, ctx.options.max_enumeration_fanin, ctx
        )


@rule(
    "TLM103",
    "threshold-out-of-bounds",
    Severity.WARNING,
    "semantic",
    "The threshold must lie within the bounds implied by the weights "
    "(otherwise the gate is constant), mirroring the presolve bound box.",
)
def check_threshold_bounds(ctx: LintContext) -> Iterator[Diagnostic]:
    for gate in ctx.gates:
        yield from check_gate_threshold_bounds(gate, ctx)


@rule(
    "TLM104",
    "implausible-tolerances",
    Severity.NOTE,
    "semantic",
    "Recorded defect tolerances must be plausible (non-negative; a "
    "delta_off of 0 is vacuous for integer weights).",
)
def check_delta_sanity(ctx: LintContext) -> Iterator[Diagnostic]:
    for gate in ctx.gates:
        yield from check_gate_delta_sanity(gate, ctx)


@rule(
    "TLM105",
    "functional-mismatch",
    Severity.ERROR,
    "semantic",
    "The synthesized network must agree with its source Boolean network "
    "on every primary output (bit-parallel core/verify simulation; the "
    "counterexample is the first disagreeing packed vector).",
    needs_source=True,
)
def check_functional_equivalence(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.source is None:
        return
    from repro.core.verify import first_mismatch, verify_threshold_network

    if verify_threshold_network(ctx.source, ctx.network):
        return
    witness = first_mismatch(ctx.source, ctx.network)
    detail = ""
    if witness is not None:
        bits = ", ".join(
            f"{k}={int(v)}" for k, v in sorted(witness.items())
        )
        detail = f" (counterexample: {bits})"
    yield ctx.diag(
        RULE_REGISTRY["TLM105"],
        f"network {ctx.network.name!r} disagrees with its source on at "
        f"least one input vector{detail}",
        hint="one of the structural or per-gate semantic findings above "
        "usually pinpoints the broken cone",
    )


@rule(
    "TLM106",
    "flash-grid-violation",
    Severity.ERROR,
    "semantic",
    "Under the flash gate model, every weight magnitude must lie on the "
    "device's programmable grid and every margin must cover the "
    "drift-derived floor; only runs when the lint options name the flash "
    "model.",
)
def check_flash_grid(ctx: LintContext) -> Iterator[Diagnostic]:
    if getattr(ctx.options, "gate_model", "ltg") != "flash":
        return
    from repro.gates import get_model

    model = get_model("flash")
    for gate in ctx.gates:
        yield from check_gate_flash_grid(
            gate, model, ctx.options.max_enumeration_fanin, ctx
        )


# ----------------------------------------------------------------------
# Analysis rules (TLA3xx) — findings of the whole-network dataflow
# analyses (repro.analysis).  They only fire under LintOptions.analysis
# (the fixpoint plus packed verification is far heavier than the
# structural rules) and share one cached AnalysisResult per run.
# ----------------------------------------------------------------------
def _network_analysis(ctx: LintContext) -> AnalysisResult | None:
    """The run's shared AnalysisResult, or None when analysis is off."""
    if not getattr(ctx.options, "analysis", False):
        return None
    if ctx._analysis is None:
        from repro.analysis import AnalysisOptions, analyze_threshold_network

        ctx._analysis = analyze_threshold_network(
            ctx.network,
            AnalysisOptions(
                gate_model=getattr(ctx.options, "gate_model", "ltg"),
                max_enumeration_fanin=ctx.options.max_enumeration_fanin,
            ),
        )
    return ctx._analysis


@rule(
    "TLA301",
    "interval-constant-gate",
    Severity.WARNING,
    "analysis",
    "Interval analysis proves the gate's weighted-sum range never crosses "
    "a threshold: the gate (and any output it drives) is constant, so its "
    "logic cone is wasted area.",
)
def check_interval_constants(ctx: LintContext) -> Iterator[Diagnostic]:
    analysis = _network_analysis(ctx)
    if analysis is None:
        return
    spec = RULE_REGISTRY["TLA301"]
    for name, value in sorted(analysis.interval.constant_gates.items()):
        if ctx.network.gate(name).fanin == 0:
            continue  # deliberate constant emitted by the synthesizer
        yield ctx.diag(
            spec,
            f"gate {name!r} is provably constant {value} "
            f"(sum interval {analysis.interval.sums[name]})",
            gate=name,
            hint="run `tels analyze --apply` to remove the constant cone",
        )
    for out, value in sorted(analysis.interval.stuck_outputs.items()):
        yield ctx.diag(
            spec,
            f"primary output {out!r} is stuck at {value}",
            net=out,
        )


@rule(
    "TLA302",
    "redundant-fanin",
    Severity.WARNING,
    "analysis",
    "Don't-care analysis found a gate input whose removal (weight dropped, "
    "threshold unchanged) provably preserves every primary output; each "
    "finding is re-verified by a packed equivalence check before being "
    "reported.",
)
def check_redundant_fanins(ctx: LintContext) -> Iterator[Diagnostic]:
    analysis = _network_analysis(ctx)
    if analysis is None:
        return
    spec = RULE_REGISTRY["TLA302"]
    for finding in analysis.findings:
        if finding.kind != "redundant-fanin":
            continue
        if finding.verified:
            yield ctx.diag(
                spec,
                finding.message + " (verified by packed equivalence)",
                gate=finding.gate,
                net=finding.fanin,
                hint="run `tels analyze --apply` to drop the connection",
            )
        else:
            yield ctx.diag(
                spec,
                "unverified removal candidate: " + finding.message,
                gate=finding.gate,
                net=finding.fanin,
                hint="the equivalence check could not confirm the "
                "don't-care filter; do NOT apply this suggestion",
            )


@rule(
    "TLA303",
    "unobservable-gate",
    Severity.WARNING,
    "analysis",
    "Observability analysis proves no primary output ever notices the "
    "gate's value, even though it is structurally connected; verified by "
    "packed equivalence before being reported.",
)
def check_unobservable_gates(ctx: LintContext) -> Iterator[Diagnostic]:
    analysis = _network_analysis(ctx)
    if analysis is None:
        return
    spec = RULE_REGISTRY["TLA303"]
    for finding in analysis.findings:
        if finding.kind != "unobservable-gate":
            continue
        message = finding.message
        if not finding.verified:
            message = "unverified removal candidate: " + message
        yield ctx.diag(
            spec,
            message
            + (" (verified by packed equivalence)" if finding.verified else ""),
            gate=finding.gate,
        )


@rule(
    "TLA304",
    "margin-slack-deficit",
    Severity.NOTE,
    "analysis",
    "The robustness certificate's network-wide margin slack is negative: "
    "at least one gate sits below its required tolerance floor, so the "
    "gate model's assumed device drift can flip an output.  Zero slack "
    "(tolerances met exactly) is normal for tight synthesis and does not "
    "fire this rule.",
)
def check_margin_slack(ctx: LintContext) -> Iterator[Diagnostic]:
    analysis = _network_analysis(ctx)
    if analysis is None:
        return
    cert = analysis.certificate
    if cert.min_slack is None or cert.min_slack >= 0:
        return
    bound = cert.perturbation_bound
    yield ctx.diag(
        RULE_REGISTRY["TLA304"],
        f"network margin slack is {cert.min_slack} at gate "
        f"{cert.weakest_gate!r} (provable per-weight perturbation bound "
        f"{bound:.4f})",
        gate=cert.weakest_gate,
        hint="re-synthesize with larger delta_on/delta_off to buy margin",
    )


# ----------------------------------------------------------------------
# Parse rules (TLP2xx) — catalog entries for diagnostics the CLI builds
# from structured parse errors; they have no network-level check to run.
# ----------------------------------------------------------------------
@rule(
    "TLP201",
    "parse-error",
    Severity.ERROR,
    "parse",
    "The .thblif file is malformed (bad directive, weight count, or "
    "truncated framing); reported with the offending line number.",
)
def check_parse(ctx: LintContext) -> Iterator[Diagnostic]:
    return iter(())


def parse_diagnostic(
    message: str, file: str | None, line: int | None
) -> Diagnostic:
    """Wrap a structured ``BlifError`` as a TLP201 diagnostic."""
    spec = RULE_REGISTRY["TLP201"]
    return Diagnostic(
        rule_id=spec.rule_id,
        severity=spec.severity,
        message=message,
        category=spec.category,
        file=file,
        line=line,
        hint="fix the file by hand or re-export it with write_thblif()",
    )
