"""Diagnostic records and lint reports.

A :class:`Diagnostic` is one finding of one rule: where (gate / signal /
file / line), what (rule id, severity, message), and — when the rule can
tell — how to fix it.  A :class:`LintReport` is the ordered collection a
lint run produced, with the severity roll-ups and the shared exit-code
convention (0 clean / 1 violations / 2 usage or parse error) every consumer
uses: the CLI, the engine post-pass, and the experiment gates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class Severity(enum.Enum):
    """Diagnostic severities, ordered from informational to fatal."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.NOTE: 0, Severity.WARNING: 1, Severity.ERROR: 2}

#: Exit codes shared by every ``tels`` subcommand (see README).
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule fired at a location inside a network."""

    rule_id: str
    severity: Severity
    message: str
    category: str = "structure"
    gate: str | None = None
    net: str | None = None
    hint: str | None = None
    file: str | None = None
    line: int | None = None

    @property
    def location(self) -> str:
        """Human-readable location prefix (``file:line:gate`` as available)."""
        parts = []
        if self.file:
            parts.append(self.file)
        if self.line is not None:
            parts.append(str(self.line))
        where = self.gate or self.net
        if where:
            parts.append(where)
        return ":".join(parts) if parts else "<network>"

    def with_location(
        self, file: str | None = None, line: int | None = None
    ) -> "Diagnostic":
        """A copy carrying file/line coordinates (emitters need them)."""
        return replace(
            self,
            file=file if file is not None else self.file,
            line=line if line is not None else self.line,
        )


@dataclass
class LintReport:
    """Everything one lint run found, plus run metadata."""

    network_name: str
    diagnostics: tuple[Diagnostic, ...] = ()
    rules_run: tuple[str, ...] = ()
    gates_checked: int = 0
    wall_s: float = 0.0
    file: str | None = None
    files: tuple[str, ...] = ()

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def notes(self) -> int:
        return self.count(Severity.NOTE)

    @property
    def is_clean(self) -> bool:
        """No findings at all (the engine's post-pass invariant)."""
        return not self.diagnostics

    @property
    def violations(self) -> int:
        """Findings that gate a run: errors plus warnings (notes advise)."""
        return self.errors + self.warnings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule_id] = counts.get(diag.rule_id, 0) + 1
        return counts

    def exit_code(self, strict: bool = False) -> int:
        """The CLI exit code: 1 on errors (or any finding under strict)."""
        if self.errors or (strict and self.diagnostics):
            return EXIT_VIOLATIONS
        return EXIT_CLEAN

    def extend(self, diagnostics: tuple[Diagnostic, ...]) -> None:
        self.diagnostics = self.diagnostics + tuple(diagnostics)

    def artifact_files(self) -> tuple[str, ...]:
        """Every source file this report covers, in first-seen order.

        Clean files stay listed (they produced a report, just no
        diagnostics), which is what SARIF ``run.artifacts`` wants.
        """
        seen: dict[str, None] = {}
        for uri in (*self.files, self.file):
            if uri:
                seen.setdefault(uri, None)
        for diag in self.diagnostics:
            if diag.file:
                seen.setdefault(diag.file, None)
        return tuple(seen)


def merge_reports(
    reports: list[LintReport], name: str = "<multiple>"
) -> LintReport:
    """Aggregate several per-file reports into one.

    Diagnostics keep their per-file coordinates (each run already stamps
    ``diag.file``), so SARIF ``artifactLocation``s stay per-file; the
    roll-up counters and wall time sum across the inputs.
    """
    if len(reports) == 1:
        return reports[0]
    merged = LintReport(network_name=name)
    merged.files = tuple(r.file for r in reports if r.file)
    rules: list[str] = []
    for report in reports:
        merged.extend(report.diagnostics)
        merged.gates_checked += report.gates_checked
        merged.wall_s += report.wall_s
        for rule_id in report.rules_run:
            if rule_id not in rules:
                rules.append(rule_id)
    merged.rules_run = tuple(sorted(rules))
    return merged


@dataclass
class LintOptions:
    """Knobs shared by the CLI, the engine post-pass, and the library API.

    Attributes:
        psi: fanin restriction to enforce (None skips the fanin rule — a
            ``.thblif`` file does not record the ψ it was synthesized with).
        rules: rule-id selection; each entry may be a full id (``TLS005``)
            or a prefix (``TLS`` selects every structural rule).  None runs
            every registered rule.
        strict: escalate the exit code on any finding, not just errors.
        max_enumeration_fanin: semantic rules enumerate ``2**fanin`` points
            per gate; gates wider than this are skipped (with a note).
        gate_model: the :mod:`repro.gates` backend the network was
            synthesized for.  Margin recomputation asks the model (not a
            hard-coded ``sum(w·x) >= T``), and the flash-grid rule TLM106
            only fires under ``"flash"``.
        gate_lines: per-gate source line numbers (from ``parse_thblif``)
            so diagnostics carry file coordinates.
        analysis: run the whole-network dataflow analyses so the TLA3xx
            rules can fire.  Off by default — the fixpoint plus packed
            verification is much heavier than the structural rules.
    """

    psi: int | None = None
    rules: tuple[str, ...] | None = None
    strict: bool = False
    max_enumeration_fanin: int = 16
    gate_model: str = "ltg"
    gate_lines: dict[str, int] = field(default_factory=dict)
    analysis: bool = False

    def selects(self, rule_id: str) -> bool:
        if self.rules is None:
            return True
        return any(rule_id == r or rule_id.startswith(r) for r in self.rules)
