"""Static verification and lint framework over threshold networks.

Two rule families audit a :class:`~repro.core.threshold.ThresholdNetwork`
without simulating it end to end: **structural** rules (cycles, dangling
fanins, undriven outputs, unreachable gates, fanin over ψ, duplicate gate
bodies) and **semantic** rules (per-gate margin re-verification against the
claimed ``delta_on``/``delta_off``, weight-sign/unateness consistency,
threshold bound checks, and — given the source network — full functional
equivalence).  See ``docs/LINT.md`` for the rule catalog.

Entry points:

* :func:`run_lint` — the library API (CLI, engine post-pass, experiments);
* :func:`lint_gates` — gate-local subset the engine runs per cone;
* :mod:`repro.lint.emitters` — text / JSON / SARIF 2.1.0 renderers.
"""

from repro.lint.diagnostics import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    Diagnostic,
    LintOptions,
    LintReport,
    Severity,
)
from repro.lint.emitters import (
    format_json,
    format_sarif,
    format_text,
    render,
    to_json,
    to_sarif,
)
from repro.lint.rules import (
    LintRule,
    get_rule,
    parse_diagnostic,
    registered_rules,
)
from repro.lint.runner import lint_gates, run_lint, select_rules

__all__ = [
    "EXIT_CLEAN",
    "EXIT_USAGE",
    "EXIT_VIOLATIONS",
    "Diagnostic",
    "LintOptions",
    "LintReport",
    "LintRule",
    "Severity",
    "format_json",
    "format_sarif",
    "format_text",
    "get_rule",
    "lint_gates",
    "parse_diagnostic",
    "registered_rules",
    "render",
    "run_lint",
    "select_rules",
    "to_json",
    "to_sarif",
]
