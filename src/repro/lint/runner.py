"""Lint drivers: the library API, the CLI entry, and the per-cone hook.

``run_lint`` is the one entry point every consumer shares: the ``tels
lint`` CLI (over parsed ``.thblif`` files), the engine's post-pass (over
freshly assembled networks), and the experiment harnesses (which fail fast
on an invalid network instead of producing a wrong table row).

``lint_gates`` is the cheap subset the engine runs *per cone*, before
assembly: gate-local semantic checks plus the fanin restriction, over a
bare gate list.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.threshold import ThresholdGate, ThresholdNetwork
from repro.lint.diagnostics import Diagnostic, LintOptions, LintReport
from repro.lint.rules import (
    GATE_CHECKS,
    LintContext,
    LintRule,
    check_gate_fanin,
    registered_rules,
)

if TYPE_CHECKING:
    from repro.analysis.report import AnalysisResult
    from repro.network.network import BooleanNetwork

#: Severity order for the stable diagnostic sort (errors first).
_ORDER = {"error": 0, "warning": 1, "note": 2}


def select_rules(options: LintOptions) -> tuple[LintRule, ...]:
    """The registered rules the options select, in registry order."""
    return tuple(
        r for r in registered_rules() if options.selects(r.rule_id)
    )


def run_lint(
    network: ThresholdNetwork,
    options: LintOptions | None = None,
    source: BooleanNetwork | None = None,
    file: str | None = None,
    analysis: AnalysisResult | None = None,
) -> LintReport:
    """Run the selected rules over a threshold network.

    Args:
        network: the network to audit.
        options: rule selection, ψ, strictness, and location metadata.
        source: the source :class:`BooleanNetwork`, enabling the
            ``needs_source`` rules (functional equivalence); None skips
            them.
        file: path the network came from, stamped onto diagnostics.
        analysis: a precomputed
            :class:`~repro.analysis.report.AnalysisResult` for this
            network; seeds the TLA3xx rules' shared cache so callers that
            already ran the dataflow analyses (``tels analyze``) don't pay
            for them twice.
    """
    options = options or LintOptions()
    started = time.perf_counter()
    ctx = LintContext(
        network=network, options=options, source=source, file=file
    )
    ctx._analysis = analysis
    diagnostics: list[Diagnostic] = []
    ran: list[str] = []
    for spec in select_rules(options):
        if spec.needs_source and source is None:
            continue
        ran.append(spec.rule_id)
        diagnostics.extend(spec.check(ctx))
    diagnostics.sort(
        key=lambda d: (
            _ORDER[d.severity.value],
            d.rule_id,
            d.gate or "",
            d.net or "",
            d.message,
        )
    )
    return LintReport(
        network_name=network.name,
        diagnostics=tuple(diagnostics),
        rules_run=tuple(ran),
        gates_checked=network.num_gates,
        wall_s=time.perf_counter() - started,
        file=file,
    )


def lint_gates(
    gates: Sequence[ThresholdGate],
    psi: int | None = None,
    max_enumeration_fanin: int = 16,
    rules: Iterable[str] | None = None,
    gate_model: str = "ltg",
) -> tuple[Diagnostic, ...]:
    """Gate-local lint over a bare gate list (the engine's per-cone hook).

    Runs only checks that need no network topology: the fanin restriction
    and the TLM1xx gate semantics.  The margin recompute is routed through
    the named :mod:`repro.gates` backend, and the flash-grid rule TLM106
    joins the set when that backend is ``"flash"``.  Returns the
    diagnostics in gate order.
    """
    from repro.gates import get_model
    from repro.lint.rules import check_gate_flash_grid

    model = get_model(gate_model)
    selected = None if rules is None else set(rules)

    def wanted(rule_id: str) -> bool:
        return selected is None or rule_id in selected

    diagnostics: list[Diagnostic] = []
    for gate in gates:
        if psi is not None and wanted("TLS005"):
            diagnostics.extend(check_gate_fanin(gate, psi))
        for rule_id, check in GATE_CHECKS:
            if not wanted(rule_id):
                continue
            if rule_id == "TLM101":
                diagnostics.extend(
                    check(gate, max_enumeration_fanin, model=model)
                )
            elif rule_id == "TLM102":
                diagnostics.extend(check(gate, max_enumeration_fanin))
            else:
                diagnostics.extend(check(gate))
        if gate_model == "flash" and wanted("TLM106"):
            diagnostics.extend(
                check_gate_flash_grid(gate, model, max_enumeration_fanin)
            )
    return tuple(diagnostics)
