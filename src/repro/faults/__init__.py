"""Deterministic fault injection and retry primitives.

``repro.faults`` is a leaf package (stdlib only) so every layer — the
engine, the ILP dispatch, the persistent cache — can import it without
cycles.  The chaos harness lives in :mod:`repro.faults.injector`; the
bounded-backoff retry helpers in :mod:`repro.faults.retry`.
"""

from repro.faults.injector import (
    CHAOS_ENV,
    ChaosSpec,
    FaultInjector,
    get_injector,
    parse_chaos_spec,
)
from repro.faults.retry import RetryPolicy, retry_call

__all__ = [
    "CHAOS_ENV",
    "ChaosSpec",
    "FaultInjector",
    "RetryPolicy",
    "get_injector",
    "parse_chaos_spec",
    "retry_call",
]
