"""Bounded exponential backoff with deterministic jitter.

The jitter is drawn from ``random.Random(f"{seed}|backoff|{key}|{attempt}")``
— the same content-keyed scheme as the chaos injector — so retry timing is
reproducible per (policy seed, call key) and never couples concurrent
callers to a shared RNG stream.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, a transient failure is retried.

    Attributes:
        max_attempts: total tries including the first (1 = never retry).
        base_backoff_s: sleep after the first failure; doubles per attempt.
        max_backoff_s: cap on any single sleep.
        jitter: extra sleep as a fraction of the backoff (0 disables;
            0.5 means up to +50%), drawn deterministically per key+attempt.
        seed: seed of the jitter stream.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    max_backoff_s: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Sleep duration after failed attempt number ``attempt`` (1-based)."""
        raw = min(
            self.max_backoff_s, self.base_backoff_s * (2 ** (attempt - 1))
        )
        if self.jitter > 0.0:
            frac = random.Random(
                f"{self.seed}|backoff|{key}|{attempt}"
            ).random()
            raw *= 1.0 + self.jitter * frac
        return min(raw, self.max_backoff_s)


def retry_call(
    fn: Callable[[int], T],
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (OSError,),
    key: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn(attempt)`` until it succeeds or the policy is exhausted.

    ``fn`` receives the 1-based attempt number (chaos sites key their
    decisions on it, so an injected failure does not repeat forever).  The
    final failure re-raises; earlier ones sleep :meth:`RetryPolicy.backoff_s`.
    """
    attempt = 1
    while True:
        try:
            return fn(attempt)
        except retryable:
            if attempt >= policy.max_attempts:
                raise
            sleep(policy.backoff_s(attempt, key))
            attempt += 1
