"""Deterministic chaos/fault injection for the resilience harness.

Faults are enabled through the ``TELS_CHAOS`` environment variable::

    TELS_CHAOS="worker=0.15,solver=0.15,solver-wrong=0.1,cache=0.1:42"

i.e. a comma-separated list of ``site=rate`` pairs followed by an optional
``:seed`` (default 0).  Sites:

* ``worker``       — a pool worker calls ``os._exit(1)`` mid-cone;
* ``stall``        — a pool worker sleeps long enough to trip the watchdog;
* ``solver``       — the float (scipy) solver attempt reports a timeout;
* ``solver-wrong`` — the float solver attempt returns a wrong status/point;
* ``cache``        — a persistent-cache write raises ``OSError``;
* ``cache-corrupt``— a torn garbage line is appended after a cache flush.

Network sites (the HTTP transport of the distributed layer; see
docs/RESILIENCE.md "Distributed failure modes"):

* ``net-refuse``     — the request fails before any bytes are sent
  (connection refused);
* ``net-disconnect`` — the connection drops after the request was sent
  (mid-body disconnect: the server may or may not have acted on it);
* ``net-latency``    — a deterministic latency spike before the request;
* ``net-corrupt``    — a network-cache payload arrives corrupted (the
  verify-before-trust path must reject it);
* ``net-dup``        — a successful POST is delivered twice (the broker's
  idempotency must absorb the duplicate).

Every decision is *content-keyed*: ``decide(site, key)`` draws from
``random.Random(f"{seed}|{site}|{key}")``, and string seeding hashes
through SHA-512, so the same (seed, site, key) triple decides the same way
in every process, under any ``PYTHONHASHSEED``, and regardless of
execution order.  That is what makes chaos runs reproducible and lets the
tests assert exact recovery behaviour per seed.

Injection is only ever *additive* noise on recoverable paths — the exact
ILP backend, the verification chain, and the one-to-one degradation target
are never perturbed, so a chaos run must still produce a functionally
equivalent network (the differential tests check exactly that).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.errors import ChaosError

CHAOS_ENV = "TELS_CHAOS"

#: Every site the harness knows; unknown sites in a spec are an error so a
#: typo cannot silently disable a whole chaos campaign.
KNOWN_SITES = frozenset(
    {
        "worker",
        "stall",
        "solver",
        "solver-wrong",
        "cache",
        "cache-corrupt",
        "net-refuse",
        "net-disconnect",
        "net-latency",
        "net-corrupt",
        "net-dup",
    }
)

#: How long a ``stall`` fault sleeps — far beyond any per-cone deadline a
#: test would configure, so the watchdog (not luck) ends the task.
STALL_SECONDS = 30.0

#: How long a ``net-latency`` spike delays one request — long enough to be
#: visible in traces, short enough that chaos campaigns stay fast.
NET_LATENCY_SECONDS = 0.05


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed fault-injection campaign: per-site rates plus the seed."""

    rates: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0

    def rate(self, site: str) -> float:
        return self.rates.get(site, 0.0)

    @property
    def active(self) -> bool:
        return any(rate > 0.0 for rate in self.rates.values())


def parse_chaos_spec(text: str) -> ChaosSpec:
    """Parse ``site=rate[,site=rate...][:seed]`` into a :class:`ChaosSpec`."""
    body, sep, tail = text.rpartition(":")
    seed = 0
    if sep:
        try:
            seed = int(tail)
        except ValueError:
            raise ChaosError(
                f"chaos spec {text!r}: seed {tail!r} is not an integer"
            ) from None
    else:
        body = tail
    rates: dict[str, float] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        site, sep, value = item.partition("=")
        site = site.strip()
        if not sep:
            raise ChaosError(
                f"chaos spec {text!r}: expected site=rate, got {item!r}"
            )
        if site not in KNOWN_SITES:
            raise ChaosError(
                f"chaos spec {text!r}: unknown site {site!r} "
                f"(known: {', '.join(sorted(KNOWN_SITES))})"
            )
        try:
            rate = float(value)
        except ValueError:
            raise ChaosError(
                f"chaos spec {text!r}: rate {value!r} is not a number"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise ChaosError(
                f"chaos spec {text!r}: rate for {site!r} must be in [0, 1]"
            )
        rates[site] = rate
    if not rates:
        raise ChaosError(f"chaos spec {text!r} names no sites")
    return ChaosSpec(rates=rates, seed=seed)


class FaultInjector:
    """Makes deterministic, content-keyed fault decisions for one spec."""

    def __init__(self, spec: ChaosSpec):
        self.spec = spec
        self.injected: dict[str, int] = {}

    def decide(self, site: str, key: str) -> bool:
        """Should the fault at ``site`` fire for this ``key``?

        The decision is a pure function of (spec seed, site, key) — repeat
        calls agree, and so do calls from different worker processes.
        """
        rate = self.spec.rate(site)
        if rate <= 0.0:
            return False
        if rate < 1.0:
            draw = random.Random(f"{self.spec.seed}|{site}|{key}").random()
            if draw >= rate:
                return False
        self.injected[site] = self.injected.get(site, 0) + 1
        return True

    def __repr__(self) -> str:
        pairs = ",".join(
            f"{site}={rate}" for site, rate in sorted(self.spec.rates.items())
        )
        return f"FaultInjector({pairs}:{self.spec.seed})"


# One injector per observed env value, so the fault counters persist across
# calls within a process but a changed/cleared variable (tests monkeypatch
# it) takes effect immediately.  Workers inherit the variable at spawn, so
# they build their own injector with the same spec — and, because decisions
# are content-keyed, the same decisions.
_cached: tuple[str, FaultInjector] | None = None


def get_injector() -> FaultInjector | None:
    """The process-wide injector for ``$TELS_CHAOS``, or None when unset."""
    global _cached
    text = os.environ.get(CHAOS_ENV, "").strip()
    if not text:
        _cached = None
        return None
    if _cached is not None and _cached[0] == text:
        return _cached[1]
    injector = FaultInjector(parse_chaos_spec(text))
    _cached = (text, injector)
    return injector
