"""MCNC-named benchmark stand-ins (see DESIGN.md §4 for the substitution).

Each builder returns a deterministic combinational network with the same
name, the same I/O counts, and the same circuit *character* as its MCNC
namesake.  Gate counts land in the same ballpark as the paper's Table I
"one-to-one" column after optimization + decomposition, so the relative
behaviour of the two flows is comparable, though absolute numbers differ
(the real netlists are not redistributable here).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.benchgen.circuits import CircuitBuilder
from repro.benchgen.random_logic import random_logic_network
from repro.network.network import BooleanNetwork


@dataclass(frozen=True)
class BenchmarkSpec:
    """Descriptor of one benchmark stand-in."""

    name: str
    num_inputs: int
    num_outputs: int
    character: str
    builder: Callable[[], BooleanNetwork]


def _cm152a() -> BooleanNetwork:
    """8-to-1 multiplexer with 3 select lines (11 inputs, 1 output)."""
    cb = CircuitBuilder("cm152a")
    data = cb.inputs("a", 8)
    select = cb.inputs("s", 3)
    out = cb.mux_tree(data, select)
    cb.output(out, "z0")
    return cb.done()


def _cm85a() -> BooleanNetwork:
    """5-bit magnitude comparator with enable (11 inputs, 3 outputs)."""
    cb = CircuitBuilder("cm85a")
    a = cb.inputs("a", 5)
    b = cb.inputs("b", 5)
    en = cb.input("en")
    gt, lt, eq = cb.ripple_comparator(a, b)
    cb.output(cb.and_([gt, en]), "a_gt_b")
    cb.output(cb.and_([lt, en]), "a_lt_b")
    cb.output(cb.and_([eq, en]), "a_eq_b")
    return cb.done()


def _comp() -> BooleanNetwork:
    """16-bit magnitude comparator (32 inputs, 3 outputs)."""
    cb = CircuitBuilder("comp")
    a = cb.inputs("a", 16)
    b = cb.inputs("b", 16)
    gt, lt, eq = cb.ripple_comparator(a, b)
    cb.output(gt, "a_gt_b")
    cb.output(lt, "a_lt_b")
    cb.output(eq, "a_eq_b")
    return cb.done()


def _cordic() -> BooleanNetwork:
    """Arithmetic rotation-decision slice (23 inputs, 2 outputs).

    A CORDIC iteration decides the rotation direction from the sign of the
    residual angle and derives the next control state; we model one such
    decision: an 10-bit compare, a short carry chain, and mux-selected
    control terms.
    """
    cb = CircuitBuilder("cordic")
    x = cb.inputs("x", 10)
    y = cb.inputs("y", 10)
    c = cb.inputs("c", 3)
    gt, lt, eq = cb.ripple_comparator(x, y)
    sums, carry = cb.carry_chain(x[:5], y[:5])
    direction = cb.mux2(c[0], gt, lt)
    rotate = cb.and_([direction, c[1]])
    residual = cb.aoi([[carry, c[2]], [eq, sums[4]], [rotate, sums[0]]])
    cb.output(cb.or_([rotate, cb.and_([eq, c[2]])]), "d0")
    cb.output(residual, "d1")
    return cb.done()


def _cmb() -> BooleanNetwork:
    """Address match / combine logic (16 inputs, 4 outputs)."""
    cb = CircuitBuilder("cmb")
    addr = cb.inputs("a", 12)
    ctl = cb.inputs("c", 4)
    hi_all_ones = cb.and_(addr[6:])
    lo_all_zero = cb.nor_(addr[:6])
    window = cb.and_([addr[0], addr[2], addr[4]])
    match = cb.and_([hi_all_ones, lo_all_zero])
    cb.output(cb.and_([match, ctl[0]]), "hit")
    cb.output(cb.aoi([[window, ctl[1]], [match, ctl[2]]]), "sel")
    cb.output(cb.or_([lo_all_zero, cb.and_([ctl[3], window])]), "low")
    cb.output(cb.nand_([hi_all_ones, ctl[0], ctl[1]]), "busy")
    return cb.done()


def _tcon() -> BooleanNetwork:
    """Buffer/inverter fabric (17 inputs, 16 outputs).

    The real ``tcon`` is wiring-dominated: this is the benchmark class on
    which threshold synthesis cannot beat one-to-one mapping (Table I shows
    TELS *losing* on tcon), because each output needs its own trivial gate
    either way.
    """
    cb = CircuitBuilder("tcon")
    data = cb.inputs("d", 16)
    en = cb.input("en")
    for i in range(8):
        cb.output(cb.not_(data[i]), f"q{i}")
    for i in range(8, 16):
        cb.output(cb.and_([data[i], en]), f"q{i}")
    return cb.done()


def _pm1() -> BooleanNetwork:
    """Small multi-output control logic (16 inputs, 13 outputs)."""
    return random_logic_network(
        "pm1",
        num_inputs=16,
        num_outputs=13,
        num_nodes=42,
        seed=41,
        max_fanin=3,
        max_cubes=3,
        locality=14,
    )


def _term1() -> BooleanNetwork:
    """Terminal controller style random logic (34 inputs, 10 outputs)."""
    return random_logic_network(
        "term1",
        num_inputs=34,
        num_outputs=10,
        num_nodes=130,
        seed=1721,
        max_fanin=4,
        max_cubes=4,
        locality=26,
    )


def _x1() -> BooleanNetwork:
    """Wide random logic (51 inputs, 35 outputs)."""
    return random_logic_network(
        "x1",
        num_inputs=51,
        num_outputs=35,
        num_nodes=170,
        seed=51,
        max_fanin=4,
        max_cubes=4,
        locality=30,
    )


def _i10() -> BooleanNetwork:
    """Very large random logic (257 inputs, 224 outputs)."""
    return random_logic_network(
        "i10",
        num_inputs=257,
        num_outputs=224,
        num_nodes=3400,
        seed=1010,
        max_fanin=4,
        max_cubes=4,
        locality=200,
    )


BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec("cm152a", 11, 1, "multiplexer selector", _cm152a),
        BenchmarkSpec("cordic", 23, 2, "arithmetic rotation slice", _cordic),
        BenchmarkSpec("cm85a", 11, 3, "5-bit comparator", _cm85a),
        BenchmarkSpec("comp", 32, 3, "16-bit magnitude comparator", _comp),
        BenchmarkSpec("cmb", 16, 4, "address match logic", _cmb),
        BenchmarkSpec("term1", 34, 10, "random control logic", _term1),
        BenchmarkSpec("pm1", 16, 13, "small control logic", _pm1),
        BenchmarkSpec("x1", 51, 35, "wide random logic", _x1),
        BenchmarkSpec("i10", 257, 224, "very large random logic", _i10),
        BenchmarkSpec("tcon", 17, 16, "buffer/inverter fabric", _tcon),
    ]
}


def benchmark_names(include_large: bool = True) -> list[str]:
    """Table-I benchmark order; ``include_large=False`` drops i10."""
    names = [
        "cm152a",
        "cordic",
        "cm85a",
        "comp",
        "cmb",
        "term1",
        "pm1",
        "x1",
        "i10",
        "tcon",
    ]
    if not include_large:
        names.remove("i10")
    return names


# ----------------------------------------------------------------------
# Large-corpus tier
# ----------------------------------------------------------------------
#: Bulk random circuits in the large corpus.  Sized so the corpus crosses
#: a thousand synthesized cones while staying CI-friendly.
CORPUS_BULK_CIRCUITS = 36

#: Stressor circuits in the large corpus (ILP-forcing + fast-path-reject).
CORPUS_STRESSOR_CIRCUITS = 4

#: Fanin bound the corpus stressors are meant to be synthesized at: wide
#: enough to admit their 9-support cone whole, defeating the Chow fast
#: path's decision bound and forcing the Fig. 6 ILP.
CORPUS_STRESSOR_PSI = 9


def _corpus_bulk_builder(name: str, k: int) -> Callable[[], BooleanNetwork]:
    def build() -> BooleanNetwork:
        return random_logic_network(
            name,
            num_inputs=12 + (k * 5) % 21,
            num_outputs=4 + (k * 3) % 9,
            num_nodes=60 + (k * 13) % 81,
            seed=9000 + k,
            max_fanin=3 + k % 2,
            max_cubes=3,
            locality=12 + k % 7,
        )

    return build


def _corpus_stressor_builder(name: str, k: int) -> Callable[[], BooleanNetwork]:
    """A gate-model stressor with rotated cone structure per index ``k``.

    Three cones per circuit, mirroring the ``parmix`` recipe:

    * ``wide`` — OR over all 2-of-9 products: a 9-support threshold cone
      whose support exceeds the Chow fast path's 8-variable decision bound,
      so identification at ``psi >= 9`` must solve the Fig. 6 ILP;
    * ``psel`` — ``x_a x_b + x_c x_d`` on rotated indices: the textbook
      unate non-threshold cover the 2-monotonicity screen must reject;
    * ``par`` — a small parity tree (splitter traffic).
    """

    def build() -> BooleanNetwork:
        cb = CircuitBuilder(name)
        xs = cb.inputs("x", 9)
        ys = cb.inputs("y", 4 + k % 3)
        pairs = [
            cb.and_([xs[i], xs[j]])
            for i in range(len(xs))
            for j in range(i + 1, len(xs))
        ]
        cb.output(cb.or_(pairs), "wide")
        a, b, c, d = ((k + off) % 9 for off in range(4))
        cb.output(
            cb.or_([cb.and_([xs[a], xs[b]]), cb.and_([xs[c], xs[d]])]),
            "psel",
        )
        cb.output(cb.parity_tree(ys), "par")
        return cb.done()

    return build


def _corpus_specs() -> dict[str, BenchmarkSpec]:
    specs: list[BenchmarkSpec] = []
    for k in range(CORPUS_BULK_CIRCUITS):
        name = f"corpus_r{k:02d}"
        specs.append(
            BenchmarkSpec(
                name,
                12 + (k * 5) % 21,
                4 + (k * 3) % 9,
                "bulk random logic (large corpus)",
                _corpus_bulk_builder(name, k),
            )
        )
    for k in range(CORPUS_STRESSOR_CIRCUITS):
        name = f"corpus_s{k}"
        specs.append(
            BenchmarkSpec(
                name,
                13 + k % 3,
                3,
                "fast-path stressor (large corpus)",
                _corpus_stressor_builder(name, k),
            )
        )
    return {spec.name: spec for spec in specs}


CORPUS_BENCHMARKS: dict[str, BenchmarkSpec] = _corpus_specs()


def corpus_names() -> list[str]:
    """Names of the large-corpus circuits (bulk first, stressors last)."""
    return list(CORPUS_BENCHMARKS)


def is_corpus_stressor(name: str) -> bool:
    """True for the ILP-forcing stressor circuits of the corpus."""
    return name.startswith("corpus_s")


def build_corpus_circuit(name: str) -> BooleanNetwork:
    """Build a large-corpus circuit by name."""
    try:
        spec = CORPUS_BENCHMARKS[name]
    except KeyError:
        known = ", ".join(corpus_names())
        raise KeyError(
            f"unknown corpus circuit {name!r}; known: {known}"
        ) from None
    network = spec.builder()
    if len(network.inputs) != spec.num_inputs or len(
        network.outputs
    ) != spec.num_outputs:
        raise AssertionError(
            f"{name}: I/O profile mismatch "
            f"({len(network.inputs)}/{len(network.outputs)} vs "
            f"{spec.num_inputs}/{spec.num_outputs})"
        )
    return network


def build_benchmark(name: str) -> BooleanNetwork:
    """Build a benchmark stand-in by MCNC name."""
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    network = spec.builder()
    if len(network.inputs) != spec.num_inputs:
        raise AssertionError(
            f"{name}: built {len(network.inputs)} inputs, "
            f"spec says {spec.num_inputs}"
        )
    if len(network.outputs) != spec.num_outputs:
        raise AssertionError(
            f"{name}: built {len(network.outputs)} outputs, "
            f"spec says {spec.num_outputs}"
        )
    return network
