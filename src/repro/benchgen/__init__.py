"""Benchmark circuit generation (the MCNC-suite stand-in).

The MCNC benchmark netlists are not redistributable here, so
:mod:`repro.benchgen.mcnc` builds deterministic, functionally-realistic
stand-ins with the same names, matched I/O counts, and the same circuit
character (comparators, multiplexers, control logic, buffer fabrics, wide
random logic).  :mod:`repro.benchgen.circuits` provides the parametric
building blocks (adders, comparators, muxes, decoders, ...), which are also
reusable on their own; :mod:`repro.benchgen.random_logic` produces seeded
random multi-level networks.
"""

from repro.benchgen.mcnc import BENCHMARKS, build_benchmark, benchmark_names
from repro.benchgen.circuits import CircuitBuilder

__all__ = [
    "BENCHMARKS",
    "build_benchmark",
    "benchmark_names",
    "CircuitBuilder",
]
