"""Circuits drawn directly from the paper's figures.

These are used by the documentation, the examples, and the test suite; the
motivational network is exactly Fig. 2(a) (7 gates, 5 levels counting the
inverter) and Fig. 5's collapsing demonstration network.
"""

from __future__ import annotations

from repro.boolean.function import BooleanFunction
from repro.io.blif import parse_blif
from repro.network.network import BooleanNetwork

#: Fig. 2(a): the Section III motivational Boolean network.
MOTIVATIONAL_BLIF = """\
.model motivational
.inputs x1 x2 x3 x4 x5 x6 x7
.outputs f
.names x1 inv1
0 1
.names x1 x2 x3 n4
111 1
.names inv1 x4 n5
11 1
.names n4 n5 n3
1- 1
-1 1
.names n3 x5 n1
11 1
.names x6 x7 n2
11 1
.names n1 n2 f
1- 1
-1 1
.end
"""


def motivational_network() -> BooleanNetwork:
    """The Fig. 2(a) network: 7 gates, 5 levels."""
    return parse_blif(MOTIVATIONAL_BLIF)


def fig5_network() -> BooleanNetwork:
    """The Fig. 5 network used to demonstrate node collapsing.

    ``f = n1 + n2`` with ``n1 = x1 n3``, ``n2 = n3 x4``, and the shared
    node ``n3 = x2 + x3``; collapsing f with ψ = 4 and n3 preserved yields
    ``f = x1 n3 + n3 x4``.
    """
    net = BooleanNetwork("fig5")
    for name in ("x1", "x2", "x3", "x4"):
        net.add_input(name)
    net.add_node("n3", BooleanFunction.parse("x2 + x3"))
    net.add_node("n1", BooleanFunction.parse("x1 n3"))
    net.add_node("n2", BooleanFunction.parse("n3 x4"))
    net.add_node("f", BooleanFunction.parse("n1 + n2"))
    net.add_output("f")
    net.check()
    return net
