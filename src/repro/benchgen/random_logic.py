"""Seeded random multi-level logic generation.

Stand-ins for the MCNC random/control-logic benchmarks (term1, pm1, x1,
i10) are produced here: a deterministic DAG of small SOP nodes over random
fanin subsets, with locality bias so that realistic sharing and reconvergence
appear (which is what exercises TELS's fanout-preservation machinery).
"""

from __future__ import annotations

import random

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.network.network import BooleanNetwork


def random_logic_network(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_nodes: int,
    seed: int,
    max_fanin: int = 4,
    max_cubes: int = 4,
    locality: int = 24,
    negate_probability: float = 0.3,
) -> BooleanNetwork:
    """Build a deterministic random multi-level network.

    Args:
        name: network (model) name.
        num_inputs / num_outputs / num_nodes: target dimensions; outputs are
            drawn from the most recently created nodes so depth accumulates.
        seed: RNG seed — same arguments always give the same circuit.
        max_fanin: per-node fanin bound of the generated SOPs.
        max_cubes: per-node cube-count bound.
        locality: candidate fanins are drawn from the last ``locality``
            signals (plus a global escape), biasing toward reconvergent,
            share-heavy structure.
        negate_probability: probability a literal appears complemented.
    """
    rng = random.Random(seed)
    net = BooleanNetwork(name)
    signals = [net.add_input(f"pi{i}") for i in range(num_inputs)]

    for j in range(num_nodes):
        window = signals[-locality:]
        k = rng.randint(2, max_fanin)
        k = min(k, len(window))
        if rng.random() < 0.2 and len(signals) > len(window):
            # Global escape: occasionally reach far back for a fanin.
            pool = signals
        else:
            pool = window
        fanins = rng.sample(pool, k)
        cubes = []
        num_cubes = rng.randint(1, max_cubes)
        for _ in range(num_cubes):
            lits: dict[int, bool] = {}
            size = rng.randint(1, k)
            for var in rng.sample(range(k), size):
                lits[var] = rng.random() >= negate_probability
            cubes.append(Cube.from_literals(lits, k))
        cover = Cover(cubes, k).scc()
        if cover.is_zero():
            cover = Cover((Cube.from_literals({0: True}, k),), k)
        func = BooleanFunction(cover, fanins).trimmed()
        if func.nvars == 0:
            continue
        node = net.add_node(f"n{j}", func)
        signals.append(node)

    internal = [s for s in signals if net.has_node(s)]
    # Prefer late (deep) nodes as outputs, but keep determinism.
    candidates = internal[::-1]
    outputs = candidates[:num_outputs]
    if len(outputs) < num_outputs:
        # Degenerate case: expose inputs to reach the requested count.
        for s in net.inputs:
            if len(outputs) == num_outputs:
                break
            outputs.append(s)
    for out in outputs:
        net.add_output(out)
    net.cleanup()
    net.check()
    return net
