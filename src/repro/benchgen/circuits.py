"""Parametric combinational circuit builders.

:class:`CircuitBuilder` wraps a :class:`BooleanNetwork` with gate-level
helpers (NOT/AND/OR/XOR/MUX/majority) and mid-level generators (ripple
comparators, carry chains, decoders, multiplexer trees).  The MCNC stand-ins
are assembled from these blocks; they are also the raw material for the
example scripts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.network.network import BooleanNetwork


class CircuitBuilder:
    """Structured construction of Boolean networks from gate primitives."""

    def __init__(self, name: str):
        self.network = BooleanNetwork(name)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        return self.network.add_input(name)

    def inputs(self, prefix: str, count: int) -> list[str]:
        return [self.input(f"{prefix}{i}") for i in range(count)]

    def output(self, signal: str, name: str | None = None) -> str:
        """Mark ``signal`` as a primary output (aliased through a buffer if
        a distinct output name is requested)."""
        if name is None or name == signal:
            self.network.add_output(signal)
            return signal
        buf = self._gate([[(signal, True)]], name)
        self.network.add_output(buf)
        return buf

    def _gate(
        self,
        cubes: list[list[tuple[str, bool]]],
        name: str | None = None,
    ) -> str:
        """Add a node from cube literal lists: [[(sig, phase), ...], ...]."""
        order: list[str] = []
        for cube in cubes:
            for signal, _ in cube:
                if signal not in order:
                    order.append(signal)
        index = {s: i for i, s in enumerate(order)}
        built = [
            Cube.from_literals(
                {index[s]: ph for s, ph in cube}, len(order)
            )
            for cube in cubes
        ]
        function = BooleanFunction(Cover(built, len(order)).scc(), order)
        node = name or self.network.fresh_name("u")
        return self.network.add_node(node, function)

    def not_(self, a: str, name: str | None = None) -> str:
        return self._gate([[(a, False)]], name)

    def buf(self, a: str, name: str | None = None) -> str:
        return self._gate([[(a, True)]], name)

    def and_(self, signals: Sequence[str], name: str | None = None) -> str:
        return self._gate([[(s, True) for s in signals]], name)

    def or_(self, signals: Sequence[str], name: str | None = None) -> str:
        return self._gate([[(s, True)] for s in signals], name)

    def nand_(self, signals: Sequence[str], name: str | None = None) -> str:
        return self._gate([[(s, False)] for s in signals], name)

    def nor_(self, signals: Sequence[str], name: str | None = None) -> str:
        return self._gate([[(s, False) for s in signals]], name)

    def xor2(self, a: str, b: str, name: str | None = None) -> str:
        return self._gate([[(a, True), (b, False)], [(a, False), (b, True)]], name)

    def xnor2(self, a: str, b: str, name: str | None = None) -> str:
        return self._gate([[(a, True), (b, True)], [(a, False), (b, False)]], name)

    def mux2(self, sel: str, a: str, b: str, name: str | None = None) -> str:
        """``sel ? b : a``."""
        return self._gate(
            [[(sel, False), (a, True)], [(sel, True), (b, True)]], name
        )

    def maj3(self, a: str, b: str, c: str, name: str | None = None) -> str:
        return self._gate(
            [[(a, True), (b, True)], [(a, True), (c, True)], [(b, True), (c, True)]],
            name,
        )

    def aoi(
        self, groups: Sequence[Sequence[str]], name: str | None = None
    ) -> str:
        """AND-OR: OR of ANDs of positive literals."""
        return self._gate([[(s, True) for s in g] for g in groups], name)

    # ------------------------------------------------------------------
    # Mid-level generators
    # ------------------------------------------------------------------
    def ripple_comparator(
        self, a: Sequence[str], b: Sequence[str]
    ) -> tuple[str, str, str]:
        """Magnitude comparator: returns (a_gt_b, a_lt_b, a_eq_b).

        Bit 0 is the least significant.  Built as a ripple chain of per-bit
        equality/greater cells — the classic structure of the MCNC ``comp``
        style benchmarks.
        """
        assert len(a) == len(b) and a
        gt = lt = None
        eq = None
        for bit in range(len(a)):
            ai, bi = a[bit], b[bit]
            bit_gt = self._gate([[(ai, True), (bi, False)]])
            bit_lt = self._gate([[(ai, False), (bi, True)]])
            bit_eq = self.xnor2(ai, bi)
            if gt is None:
                gt, lt, eq = bit_gt, bit_lt, bit_eq
            else:
                # Higher bit dominates: new_gt = bit_gt + bit_eq * gt
                gt = self._gate(
                    [[(bit_gt, True)], [(bit_eq, True), (gt, True)]]
                )
                lt = self._gate(
                    [[(bit_lt, True)], [(bit_eq, True), (lt, True)]]
                )
                eq = self.and_([bit_eq, eq])
        assert gt and lt and eq
        return gt, lt, eq

    def carry_chain(
        self, a: Sequence[str], b: Sequence[str], cin: str | None = None
    ) -> tuple[list[str], str]:
        """Ripple-carry adder; returns (sum bits, carry out)."""
        assert len(a) == len(b) and a
        sums: list[str] = []
        carry = cin
        for ai, bi in zip(a, b):
            axb = self.xor2(ai, bi)
            if carry is None:
                sums.append(self.buf(axb))
                carry = self.and_([ai, bi])
            else:
                sums.append(self.xor2(axb, carry))
                carry = self.maj3(ai, bi, carry)
        return sums, carry

    def decoder(self, select: Sequence[str]) -> list[str]:
        """Full decoder: 2**n one-hot outputs from n select lines."""
        outputs = []
        n = len(select)
        for value in range(1 << n):
            lits = [
                (select[i], bool((value >> i) & 1)) for i in range(n)
            ]
            outputs.append(self._gate([lits]))
        return outputs

    def mux_tree(self, data: Sequence[str], select: Sequence[str]) -> str:
        """2**n-to-1 multiplexer from n select lines."""
        assert len(data) == 1 << len(select)
        layer = list(data)
        for sel in select:
            layer = [
                self.mux2(sel, layer[i], layer[i + 1])
                for i in range(0, len(layer), 2)
            ]
        return layer[0]

    def and_or_tree(
        self, signals: Sequence[str], group: int = 3, conjunctive: bool = True
    ) -> str:
        """Alternating AND/OR reduction tree over ``signals``."""
        layer = list(signals)
        use_and = conjunctive
        while len(layer) > 1:
            next_layer = []
            for i in range(0, len(layer), group):
                chunk = layer[i : i + group]
                if len(chunk) == 1:
                    next_layer.append(chunk[0])
                elif use_and:
                    next_layer.append(self.and_(chunk))
                else:
                    next_layer.append(self.or_(chunk))
            layer = next_layer
            use_and = not use_and
        return layer[0]

    def parity_tree(self, signals: Sequence[str]) -> str:
        """XOR reduction (binate everywhere: the hard case for TELS)."""
        layer = list(signals)
        while len(layer) > 1:
            next_layer = []
            for i in range(0, len(layer) - 1, 2):
                next_layer.append(self.xor2(layer[i], layer[i + 1]))
            if len(layer) % 2:
                next_layer.append(layer[-1])
            layer = next_layer
        return layer[0]

    def done(self) -> BooleanNetwork:
        self.network.check()
        return self.network
