"""Extended MCNC-named stand-ins beyond the paper's Table I.

The paper ran "about 60 multi-output benchmarks" and printed 10; this module
adds a second tier of stand-ins with matched I/O profiles so suite-level
experiments (Figs. 11-12 style sweeps, regression runs) can draw from a much
larger population.  Same substitution policy as :mod:`repro.benchgen.mcnc`:
deterministic, same names, same I/O counts, same circuit character.
"""

from __future__ import annotations

from repro.benchgen.circuits import CircuitBuilder
from repro.benchgen.mcnc import BENCHMARKS, BenchmarkSpec
from repro.benchgen.random_logic import random_logic_network
from repro.network.network import BooleanNetwork


def _majority() -> BooleanNetwork:
    """5-input majority voter (5 inputs, 1 output)."""
    cb = CircuitBuilder("majority")
    xs = cb.inputs("x", 5)
    pair_sums = []
    for i in range(len(xs)):
        for j in range(i + 1, len(xs)):
            for k in range(j + 1, len(xs)):
                pair_sums.append(cb.and_([xs[i], xs[j], xs[k]]))
    cb.output(cb.or_(pair_sums), "maj")
    return cb.done()


def _parity() -> BooleanNetwork:
    """16-bit parity tree (16 inputs, 1 output) — the worst case for TELS."""
    cb = CircuitBuilder("parity")
    xs = cb.inputs("x", 16)
    cb.output(cb.parity_tree(xs), "even")
    return cb.done()


def _parmix() -> BooleanNetwork:
    """Parity/threshold mix (15 inputs, 3 outputs) — gate-model stressor.

    Three cones chosen to exercise every checker path once the fanin
    restriction admits them whole (ψ >= 9):

    * ``two_of_nine`` — a 9-support threshold cone.  Nine variables exceed
      the Chow fast path's 8-variable decision bound, so identifying it
      *must* solve the Fig. 6 ILP (``ilp_solves`` > 0 under ``ltg``);
    * ``pairsel`` — ``x0·x1 + x2·x3``, the textbook unate non-threshold
      function: the two-monotonicity screen refutes it combinatorially
      (``fastpath_negatives`` > 0) and the splitter takes over;
    * ``even`` — 6-bit parity, the TELS worst case: a gate tree under
      ``ltg``, one k-threshold gate under ``multi-threshold``.
    """
    cb = CircuitBuilder("parmix")
    xs = cb.inputs("x", 9)
    ys = cb.inputs("y", 6)
    pairs = [
        cb.and_([xs[i], xs[j]])
        for i in range(len(xs))
        for j in range(i + 1, len(xs))
    ]
    cb.output(cb.or_(pairs), "two_of_nine")
    cb.output(cb.or_([cb.and_([xs[0], xs[1]]), cb.and_([xs[2], xs[3]])]),
              "pairsel")
    cb.output(cb.parity_tree(ys), "even")
    return cb.done()


def _mux() -> BooleanNetwork:
    """16-to-1 multiplexer (21 inputs, 1 output)."""
    cb = CircuitBuilder("mux")
    data = cb.inputs("d", 16)
    select = cb.inputs("s", 4)
    extra = cb.input("en")
    out = cb.and_([cb.mux_tree(data, select), extra])
    cb.output(out, "z")
    return cb.done()


def _cm150a() -> BooleanNetwork:
    """16-to-1 multiplexer variant (21 inputs, 1 output)."""
    cb = CircuitBuilder("cm150a")
    data = cb.inputs("a", 16)
    select = cb.inputs("s", 4)
    en = cb.input("en")
    cb.output(cb.mux2(en, cb.mux_tree(data, select), data[0]), "z")
    return cb.done()


def _decod() -> BooleanNetwork:
    """5-to-16 decoder with enable folded in (5 inputs, 16 outputs)."""
    cb = CircuitBuilder("decod")
    select = cb.inputs("s", 4)
    en = cb.input("en")
    for i, line in enumerate(cb.decoder(select)):
        cb.output(cb.and_([line, en]), f"d{i}")
    return cb.done()


def _z4ml() -> BooleanNetwork:
    """2-bit plus 2-bit adder with carries (7 inputs, 4 outputs)."""
    cb = CircuitBuilder("z4ml")
    a = cb.inputs("a", 3)
    b = cb.inputs("b", 3)
    cin = cb.input("cin")
    sums, carry = cb.carry_chain(a, b, cin)
    for i, s in enumerate(sums):
        cb.output(s, f"s{i}")
    cb.output(carry, "cout")
    return cb.done()


def _cm138a() -> BooleanNetwork:
    """3-to-8 decoder with enables (6 inputs, 8 outputs)."""
    cb = CircuitBuilder("cm138a")
    select = cb.inputs("s", 3)
    enables = cb.inputs("e", 3)
    gate = cb.nor_(enables)
    for i, line in enumerate(cb.decoder(select)):
        cb.output(cb.and_([line, gate]), f"q{i}")
    return cb.done()


def _cm162a() -> BooleanNetwork:
    """Synchronous-counter style carry logic (14 inputs, 5 outputs)."""
    cb = CircuitBuilder("cm162a")
    xs = cb.inputs("x", 14)
    chain = xs[0]
    outs = []
    for i in range(1, 6):
        chain = cb.and_([chain, xs[i]])
        outs.append(cb.xor2(chain, xs[i + 5]))
    for i, o in enumerate(outs[:5]):
        cb.output(o, f"y{i}")
    return cb.done()


def _cm163a() -> BooleanNetwork:
    """Variant carry/compare logic (16 inputs, 5 outputs)."""
    cb = CircuitBuilder("cm163a")
    a = cb.inputs("a", 8)
    b = cb.inputs("b", 8)
    gt, lt, eq = cb.ripple_comparator(a[:4], b[:4])
    sums, carry = cb.carry_chain(a[4:], b[4:])
    cb.output(gt, "y0")
    cb.output(cb.or_([lt, carry]), "y1")
    cb.output(cb.and_([eq, sums[0]]), "y2")
    cb.output(sums[2], "y3")
    cb.output(cb.xor2(sums[1], sums[3]), "y4")
    return cb.done()


def _count() -> BooleanNetwork:
    """Ripple-increment logic of a 16-bit counter (35 inputs, 16 outputs)."""
    cb = CircuitBuilder("count")
    state = cb.inputs("q", 16)
    controls = cb.inputs("c", 19)
    enable = cb.and_([controls[0], controls[1]])
    carry = enable
    for i in range(16):
        nxt = cb.xor2(state[i], carry)
        carry = cb.and_([state[i], carry])
        cb.output(cb.mux2(controls[2], nxt, state[i]), f"n{i}")
    return cb.done()


_RANDOM_SPECS: list[tuple[str, int, int, int, int]] = [
    # (name, inputs, outputs, nodes, seed)
    ("alu2", 10, 6, 60, 22),
    ("b9", 41, 21, 90, 23),
    ("c8", 28, 18, 70, 24),
    ("cc", 21, 20, 55, 25),
    ("cht", 47, 36, 100, 26),
    ("cu", 14, 11, 45, 27),
    ("frg1", 28, 3, 95, 28),
    ("lal", 26, 19, 75, 29),
    ("pcle", 19, 9, 55, 30),
    ("pcler8", 27, 17, 70, 31),
    ("sct", 19, 15, 60, 32),
    ("ttt2", 24, 21, 80, 33),
    ("unreg", 36, 16, 70, 34),
    ("x2", 10, 7, 40, 35),
]


def _random_builder(name, inputs, outputs, nodes, seed):
    def build() -> BooleanNetwork:
        return random_logic_network(
            name,
            num_inputs=inputs,
            num_outputs=outputs,
            num_nodes=nodes,
            seed=seed,
            max_fanin=4,
            max_cubes=4,
            locality=max(12, inputs // 2 + 8),
        )

    return build


EXTENDED_BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec("majority", 5, 1, "majority voter", _majority),
        BenchmarkSpec("parity", 16, 1, "XOR tree (TELS worst case)", _parity),
        BenchmarkSpec(
            "parmix", 15, 3, "parity/threshold mix (gate-model stressor)",
            _parmix,
        ),
        BenchmarkSpec("mux", 21, 1, "16-to-1 multiplexer", _mux),
        BenchmarkSpec("cm150a", 21, 1, "multiplexer variant", _cm150a),
        BenchmarkSpec("decod", 5, 16, "decoder", _decod),
        BenchmarkSpec("z4ml", 7, 4, "small adder", _z4ml),
        BenchmarkSpec("cm138a", 6, 8, "decoder with enables", _cm138a),
        BenchmarkSpec("cm162a", 14, 5, "counter carry logic", _cm162a),
        BenchmarkSpec("cm163a", 16, 5, "carry/compare logic", _cm163a),
        BenchmarkSpec("count", 35, 16, "counter increment logic", _count),
    ]
    + [
        BenchmarkSpec(
            name, ins, outs, "random control logic",
            _random_builder(name, ins, outs, nodes, seed),
        )
        for name, ins, outs, nodes, seed in _RANDOM_SPECS
    ]
}


def extended_benchmark_names() -> list[str]:
    """Names of the second-tier benchmarks (no overlap with Table I)."""
    return sorted(EXTENDED_BENCHMARKS)


def all_benchmark_names() -> list[str]:
    """Table I names followed by the extended tier."""
    from repro.benchgen.mcnc import benchmark_names

    return benchmark_names() + extended_benchmark_names()


def build_extended_benchmark(name: str) -> BooleanNetwork:
    """Build a benchmark from either tier by name."""
    if name in EXTENDED_BENCHMARKS:
        spec = EXTENDED_BENCHMARKS[name]
        network = spec.builder()
        if len(network.inputs) != spec.num_inputs or len(
            network.outputs
        ) != spec.num_outputs:
            raise AssertionError(
                f"{name}: I/O profile mismatch "
                f"({len(network.inputs)}/{len(network.outputs)} vs "
                f"{spec.num_inputs}/{spec.num_outputs})"
            )
        return network
    if name in BENCHMARKS:
        from repro.benchgen.mcnc import build_benchmark

        return build_benchmark(name)
    known = ", ".join(all_benchmark_names())
    raise KeyError(f"unknown benchmark {name!r}; known: {known}")
