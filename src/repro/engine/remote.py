"""The remote executor: cone dispatch over a daemon's work broker.

:class:`RemoteExecutor` is the third backend behind the scheduler's
``submit/wait/close`` surface (next to :class:`~repro.engine.executor.
SerialExecutor` and :class:`~repro.engine.executor.ProcessExecutor`).  It
opens one work session on a ``tels serve`` daemon, ships the prepared
network + options + store seed once as an opaque payload, enqueues cone
tasks, and polls the session outbox, translating worker blobs back into
:class:`~repro.engine.tasks.TaskResult` rows and broker failure rows into
:class:`~repro.engine.resilience.TaskFailure` records.  The scheduler
cannot tell it apart from the process pool — deliberately, because all the
retry/backoff/quarantine/degrade policy already lives there (PR 5) and an
expired lease arrives as exactly the ``"crash"`` failure a broken pool
process would produce.

Graceful degradation, in increasing severity:

* **a worker dies** — its leases expire, the cones come back as crash
  failures, the scheduler requeues them, surviving workers pick them up;
* **every worker dies** — after ``worker_wait_s`` with zero live workers
  and no progress, the executor builds a local fallback executor
  (process pool or serial, matching ``jobs``), withdraws every unclaimed
  task from the broker, and reroutes new submissions locally; cones still
  leased to dead workers drain back through lease expiry;
* **the daemon itself goes away** — every outstanding cone is reported as
  an ``"evicted"`` failure (a free requeue) and the run completes on the
  local fallback alone.

The run's output is byte-identical in every case: cones are deterministic
in (task_id, options, network), and assembly order is fixed by the task
graph, not by who solved what when.
"""

from __future__ import annotations

import pickle
import time

from repro.engine.resilience import TaskFailure
from repro.engine.tasks import SynthTask, TaskResult
from repro.errors import SynthesisError
from repro.serve.broker import WorkClient, decode_blob
from repro.serve.transport import (
    HttpStatusError,
    HttpTransport,
    TransportError,
)

#: Zero live workers for this long (with work outstanding and no progress)
#: triggers the local fallback.  Module-level so tests can shrink it.
DEFAULT_WORKER_WAIT_S = 10.0

#: Outbox poll interval while remote work is outstanding.
_POLL_S = 0.05


class RemoteExecutor:
    """Farm cones to ``tels worker`` processes through a serve daemon."""

    backend_name = "remote"

    def __init__(
        self,
        url: str,
        network,
        options,
        preserved: frozenset[str],
        store,
        checker,
        policy=None,
        jobs: int = 1,
        worker_wait_s: float | None = None,
    ):
        self._url = url
        self._network = network
        self._options = options
        self._preserved = preserved
        self._store = store
        self._checker = checker
        self._policy = policy
        self._jobs = max(1, jobs)
        self._worker_wait_s = worker_wait_s
        self._client: WorkClient | None = None
        self._session_id: str | None = None
        #: task_id -> (task, attempt) still owed by the remote side.
        self._remote: dict[str, tuple[SynthTask, int]] = {}
        self._fallback = None
        self._fallback_pending = 0
        self._use_local = False
        self._last_progress = time.monotonic()
        # Counters the scheduler lifts into the trace via getattr().
        self.lease_expirations = 0
        self.remote_workers = 0
        self.fallback_tasks = 0
        self.fallback_reason: str | None = None
        self.remote_results = 0
        try:
            self._client = WorkClient(HttpTransport(url))
            payload = pickle.dumps(
                {
                    "network": network,
                    "options": options,
                    "preserved": preserved,
                    "store_seed": store.export(),
                }
            )
            created = self._client.create_session(
                payload, meta={"kind": "synthesis", "name": network.name}
            )
            self._session_id = created["session"]
        except (TransportError, HttpStatusError) as exc:
            self._switch_to_local(f"daemon unreachable at startup: {exc}")

    # -- fallback management -------------------------------------------
    def _switch_to_local(self, reason: str) -> None:
        """Route all future submissions to a local executor."""
        if self._use_local:
            return
        from repro.engine.executor import make_executor

        self._use_local = True
        self.fallback_reason = reason
        self._fallback = make_executor(
            self._jobs,
            self._network,
            self._options,
            self._preserved,
            self._store,
            self._checker,
            self._policy,
        )

    def _reroute_unclaimed(self) -> None:
        """Pull unclaimed cones off the broker and run them locally."""
        if self._client is None or self._session_id is None:
            return
        try:
            withdrawn = self._client.withdraw(self._session_id)["tasks"]
        except (TransportError, HttpStatusError):
            return  # the cones stay remote; lease/collect paths resolve them
        for row in withdrawn:
            task_id = str(row["task_id"])
            entry = self._remote.pop(task_id, None)
            task = (
                entry[0]
                if entry is not None
                else SynthTask(task_id=task_id, root=str(row["root"]))
            )
            self._submit_local(task, int(row.get("attempt", 1)))

    def _abandon_remote(self, reason: str) -> list[TaskFailure]:
        """Daemon gone: evict every outstanding cone (a free requeue)."""
        self._switch_to_local(reason)
        failures = [
            TaskFailure(
                task_id,
                "evicted",
                f"remote session abandoned: {reason}",
                attempt,
            )
            for task_id, (_task, attempt) in self._remote.items()
        ]
        self._remote.clear()
        return failures

    def _submit_local(self, task: SynthTask, attempt: int) -> None:
        self._fallback.submit(task, attempt)
        self._fallback_pending += 1
        self.fallback_tasks += 1

    def _strip_shared_stats(self, results: list[TaskResult]) -> None:
        """Zero stat deltas of cones a *serial* fallback ran.

        The serial executor shares the master checker and store, so its
        counts are already in place; the scheduler folds deltas for every
        non-serial backend, and this run reports as ``remote``.
        """
        from repro.engine.executor import SerialExecutor

        if not isinstance(self._fallback, SerialExecutor):
            return
        from repro.core.identify import CheckStats

        for result in results:
            result.stats_delta = CheckStats()
            result.store_stats_delta = None

    # -- executor surface ----------------------------------------------
    def submit(self, task: SynthTask, attempt: int = 1) -> None:
        if self._use_local:
            self._submit_local(task, attempt)
            return
        row = {
            "task_id": task.task_id,
            "root": task.root,
            "attempt": attempt,
        }
        try:
            self._client.enqueue(self._session_id, [row])
        except (TransportError, HttpStatusError) as exc:
            self._switch_to_local(f"daemon unreachable: {exc}")
            self._submit_local(task, attempt)
            return
        self._remote[task.task_id] = (task, attempt)

    def _translate(
        self, payload: dict
    ) -> tuple[list[TaskResult], list[TaskFailure]]:
        results: list[TaskResult] = []
        failures: list[TaskFailure] = []
        for row in payload.get("results", []):
            result: TaskResult = decode_blob(row["blob"])
            self._remote.pop(result.task_id, None)
            self.remote_results += 1
            results.append(result)
        for row in payload.get("failures", []):
            task_id = str(row["task_id"])
            kind = str(row.get("kind", "error"))
            message = str(row.get("message", ""))
            if row.get("expired"):
                self.lease_expirations += 1
            if kind == "fatal":
                # Deterministic synthesis bugs propagate, exactly as a
                # SynthesisError escaping a pool worker would.
                raise SynthesisError(message)
            self._remote.pop(task_id, None)
            failures.append(
                TaskFailure(
                    task_id, kind, message, int(row.get("attempt", 1))
                )
            )
        return results, failures

    def wait(self) -> tuple[list[TaskResult], list[TaskFailure]]:
        while True:
            if self._fallback is not None and self._fallback_pending > 0:
                results, failures = self._fallback.wait()
                self._fallback_pending -= len(results) + len(failures)
                if results or failures:
                    self._strip_shared_stats(results)
                    return results, failures
            if self._remote:
                try:
                    payload = self._client.collect(self._session_id)
                except (TransportError, HttpStatusError) as exc:
                    return [], self._abandon_remote(
                        f"daemon unreachable: {exc}"
                    )
                self.remote_workers = max(
                    self.remote_workers, int(payload.get("workers", 0))
                )
                results, failures = self._translate(payload)
                if results or failures:
                    self._last_progress = time.monotonic()
                    return results, failures
                wait_s = (
                    self._worker_wait_s
                    if self._worker_wait_s is not None
                    else DEFAULT_WORKER_WAIT_S
                )
                if (
                    not self._use_local
                    and payload.get("workers", 0) == 0
                    and time.monotonic() - self._last_progress > wait_s
                ):
                    # Total worker loss: finish the run locally.  Cones
                    # still leased to dead workers drain back through
                    # lease expiry on subsequent collect calls.
                    self._switch_to_local(
                        f"no live workers for {wait_s:.1f}s"
                    )
                    self._reroute_unclaimed()
                    continue
                time.sleep(_POLL_S)
                continue
            if self._fallback is not None and self._fallback_pending > 0:
                continue
            return [], []

    def close(self) -> None:
        if self._fallback is not None:
            self._fallback.close()
        if self._client is not None and self._session_id is not None:
            try:
                self._client.close(self._session_id)
            except (TransportError, HttpStatusError):
                pass
        self._remote.clear()
