"""Resilience primitives for the synthesis engine.

Three concerns live here, all consumed by the scheduler and executors:

* **Deadlines** — :class:`Deadline` is a monotonic budget checked
  cooperatively inside the cone loop and the threshold checker (which also
  forwards the remaining time to the ILP backends as a solver time limit);
  the process executor additionally enforces it from the outside with a
  watchdog for workers that stop reaching cooperative checkpoints.

* **Failure classification** — :class:`TaskFailure` is the executor's
  structured "this dispatch did not produce a result" record; the
  scheduler maps its ``kind`` to a policy action (retry with backoff,
  quarantine, degrade).

* **Graceful degradation** — :func:`fallback_cone_gates` realizes one cone
  with the paper's one-to-one mapping baseline (Section VI-A): extract the
  cone sub-network, SOP-decompose it into simple AND/OR gates of fanin ≤ ψ,
  and map each gate to one LTG.  Simple gates within the fanin bound are
  threshold under any tolerance setting, so the fallback always succeeds
  and the degraded network stays simulation-equivalent and lint-clean —
  only the area optimality of that one cone is lost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.identify import ThresholdChecker
from repro.core.mapping import one_to_one_map
from repro.core.threshold import ThresholdGate
from repro.errors import DeadlineExceeded, SynthesisError
from repro.faults.retry import RetryPolicy
from repro.network.network import BooleanNetwork
from repro.network.transform import decompose


class Deadline:
    """A monotonic wall-clock budget with cooperative check points."""

    __slots__ = ("budget_s", "_expires_at")

    def __init__(self, budget_s: float):
        self.budget_s = budget_s
        self._expires_at = time.monotonic() + budget_s

    @classmethod
    def after(cls, budget_s: float | None) -> "Deadline | None":
        """A deadline ``budget_s`` from now, or None when unbudgeted."""
        return None if budget_s is None else cls(budget_s)

    def remaining(self) -> float:
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self, what: str = "") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired:
            suffix = f" during {what}" if what else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exhausted{suffix}"
            )

    def __repr__(self) -> str:
        return f"Deadline({self.budget_s:.3f}s, {self.remaining():.3f}s left)"


@dataclass(frozen=True)
class TaskFailure:
    """One dispatch of a task that ended without a result.

    ``kind`` drives the scheduler's policy response:

    * ``"crash"``   — the worker process died (counts toward quarantine);
    * ``"timeout"`` — the per-cone deadline expired (degrade immediately);
    * ``"error"``   — a transient error worth retrying with backoff;
    * ``"evicted"`` — an innocent in-flight task lost its pool to another
      task's crash or watchdog kill (requeue, no penalty).
    """

    task_id: str
    kind: str
    message: str = ""
    attempt: int = 1


@dataclass(frozen=True)
class DegradedCone:
    """One cone that fell back to the one-to-one mapping, and why."""

    task_id: str
    reason: str
    attempts: int
    detail: str = ""


@dataclass(frozen=True)
class ResiliencePolicy:
    """The scheduler's knobs for deadlines, retries, and quarantine."""

    deadline_per_cone_s: float | None = None
    deadline_total_s: float | None = None
    max_attempts: int = 3
    poison_crashes: int = 3
    strict: bool = False
    watchdog_grace_s: float = 2.0
    retry: RetryPolicy = RetryPolicy()

    @classmethod
    def from_options(cls, options) -> "ResiliencePolicy":
        """Lift the resilience fields off ``SynthesisOptions``."""
        return cls(
            deadline_per_cone_s=getattr(options, "deadline_per_cone_s", None),
            deadline_total_s=getattr(options, "deadline_total_s", None),
            max_attempts=getattr(options, "max_attempts", 3),
            poison_crashes=getattr(options, "poison_crashes", 3),
            strict=getattr(options, "strict_synthesis", False),
            watchdog_grace_s=getattr(options, "watchdog_grace_s", 2.0),
            retry=RetryPolicy(
                max_attempts=getattr(options, "max_attempts", 3),
                base_backoff_s=getattr(options, "retry_backoff_s", 0.05),
                max_backoff_s=getattr(options, "retry_backoff_max_s", 0.5),
                seed=getattr(options, "seed", 0),
            ),
        )

    @property
    def watchdog_needed(self) -> bool:
        return self.deadline_per_cone_s is not None


def cone_subnetwork(
    source: BooleanNetwork, root: str, preserved: frozenset[str]
) -> tuple[BooleanNetwork, tuple[str, ...]]:
    """Extract the cone rooted at ``root`` as a standalone network.

    The traversal stops at primary inputs and at preserved nodes other than
    the root — the same barriers collapsing honours — and those boundary
    signals become the cone's inputs.  Returns the cone network and the
    boundary signals that are themselves work-network nodes (the cones the
    scheduler must still synthesize), in deterministic discovery order.
    """
    members: set[str] = set()
    boundary: dict[str, None] = {}
    stack = [root]
    while stack:
        name = stack.pop()
        if name in members:
            continue
        if name != root and (
            source.is_input(name)
            or name in preserved
            or not source.has_node(name)
        ):
            boundary.setdefault(name)
            continue
        members.add(name)
        stack.extend(reversed(source.fanins(name)))
    cone = BooleanNetwork(f"{root}_cone")
    for signal in boundary:
        cone.add_input(signal)
    cone.add_output(root)
    for name in source.topological_order():
        if name in members:
            cone.add_node(name, source.function(name))
    discovered = tuple(s for s in boundary if source.has_node(s))
    return cone, discovered


def fallback_cone_gates(
    source: BooleanNetwork,
    root: str,
    preserved: frozenset[str],
    options,
    checker: ThresholdChecker | None = None,
) -> tuple[tuple[ThresholdGate, ...], tuple[str, ...]]:
    """The paper's one-to-one mapping for a single cone (degradation path).

    Internal gates are renamed under a ``{root}$f`` prefix so degraded
    cones can never collide with each other or with synthesized cones (the
    engine's own split parts live under ``{root}$t``).
    """
    cone, discovered = cone_subnetwork(source, root, preserved)
    decompose(cone, max_fanin=options.psi, inverter_gates=False, style="sop")
    if checker is None:
        checker = ThresholdChecker(
            delta_on=options.delta_on,
            delta_off=options.delta_off,
            backend=options.backend,
            max_weight=options.max_weight,
            gate_model=getattr(options, "gate_model", "ltg"),
        )
    try:
        mapped = one_to_one_map(
            cone,
            delta_on=options.delta_on,
            delta_off=options.delta_off,
            checker=checker,
        )
    except SynthesisError as exc:
        # Only reachable when max_weight caps even a simple-gate vector:
        # there is no realization at all for this parameter point.
        raise SynthesisError(
            f"one-to-one fallback for cone {root!r} failed: {exc}"
        ) from exc
    rename: dict[str, str] = {}
    counter = 0
    for name in mapped.topological_order():
        if name != root:
            rename[name] = f"{root}$f{counter}"
            counter += 1
    gates: list[ThresholdGate] = []
    for name in mapped.topological_order():
        gate = mapped.gate(name)
        gates.append(
            ThresholdGate(
                rename.get(name, name),
                tuple(rename.get(i, i) for i in gate.inputs),
                gate.vector,
                gate.delta_on,
                gate.delta_off,
            )
        )
    return tuple(gates), discovered
