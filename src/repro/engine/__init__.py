"""The pass-based TELS synthesis engine.

Four layers, bottom to top:

* :mod:`repro.engine.store` — the **shared result store**: canonical-cover
  keyed caches (delta-independent analyses + solved vectors) shared across
  tasks, outputs, runs, and experiment sweeps.
* :mod:`repro.engine.tasks` — the **task layer**: each preserved node /
  primary-output cone becomes an explicit :class:`SynthTask`; cones discover
  their dependencies (the preserved or collapse-blocked nodes their gates
  read) while they run.
* :mod:`repro.engine.executor` — the **executor layer**: ``serial`` and
  ``process`` backends dispatch independent cone tasks; the scheduler in
  :mod:`repro.engine.scheduler` drives the work queue and merges results
  deterministically (stable task ids, per-task seeded RNG streams).
* :mod:`repro.engine.events` — the **instrumentation layer**: structured
  per-task events (collapse/check/split timings, cache hit rates) aggregated
  into an :class:`EngineTrace` for the CLI and the experiment reports.

``repro.core.synthesis`` is a thin compatibility façade over
:func:`run_synthesis`.

This ``__init__`` must stay import-light: ``repro.core.identify`` imports
:mod:`repro.engine.store` at runtime, so importing scheduler/executor here
would create a cycle.  Heavy symbols resolve lazily via ``__getattr__``.
"""

from __future__ import annotations

from repro.engine.store import (
    CoverAnalysis,
    ResultStore,
    StoreDelta,
    StoreStats,
)

__all__ = [
    "CoverAnalysis",
    "ResultStore",
    "StoreDelta",
    "StoreStats",
    "EngineTrace",
    "TaskEvent",
    "TaskMetrics",
    "SynthTask",
    "TaskResult",
    "EngineResult",
    "run_synthesis",
    "make_executor",
]

_LAZY = {
    "EngineTrace": "repro.engine.events",
    "TaskEvent": "repro.engine.events",
    "TaskMetrics": "repro.engine.events",
    "SynthTask": "repro.engine.tasks",
    "TaskResult": "repro.engine.tasks",
    "EngineResult": "repro.engine.scheduler",
    "run_synthesis": "repro.engine.scheduler",
    "make_executor": "repro.engine.executor",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
