"""The executor layer: serial and process-pool cone dispatch backends.

Both backends expose the same three-call surface the scheduler drives —
``submit(task)``, ``wait() -> list[TaskResult]``, ``close()`` — and both
produce byte-identical gates for the same prepared network and options,
because every cone runs under its own ``random.Random("{seed}:{task_id}")``
stream and reads only the immutable source network.

The process backend ships the source network, options, and a snapshot of
the shared result store to each worker once (pool initializer); workers keep
a long-lived checker whose store journals new entries, and every
:class:`TaskResult` carries the journal back for the scheduler to merge into
the master store.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait

from repro.core.identify import ThresholdChecker
from repro.engine.cone import ConeSynthesizer
from repro.engine.store import ResultStore, StoreDelta
from repro.engine.tasks import SynthTask, TaskResult
from repro.network.network import BooleanNetwork


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` request (None/0 → all cores)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class SerialExecutor:
    """Run cones inline, sharing one checker (and its store) with the caller."""

    backend_name = "serial"

    def __init__(
        self,
        network: BooleanNetwork,
        options,
        preserved: frozenset[str],
        checker: ThresholdChecker,
    ):
        self._network = network
        self._options = options
        self._preserved = preserved
        self._checker = checker
        self._queue: list[SynthTask] = []

    def submit(self, task: SynthTask) -> None:
        self._queue.append(task)

    def wait(self) -> list[TaskResult]:
        task = self._queue.pop(0)
        outcome = ConeSynthesizer(
            self._network, task.root, self._options, self._checker,
            self._preserved,
        ).run()
        return [
            TaskResult(
                task_id=task.task_id,
                gates=outcome.gates,
                discovered=outcome.discovered,
                metrics=outcome.metrics,
                stats_delta=outcome.stats_delta,
                store_delta=None,
                store_stats_delta=outcome.store_stats_delta,
            )
        ]

    def close(self) -> None:
        self._queue.clear()


# ----------------------------------------------------------------------
# Process-pool backend.  Worker state lives in module globals, installed
# once per process by the pool initializer; tasks then travel as bare root
# names, keeping per-task IPC to a few hundred bytes each way.
# ----------------------------------------------------------------------
_WORKER: dict | None = None


def _worker_init(
    network: BooleanNetwork,
    options,
    preserved: frozenset[str],
    store_seed: StoreDelta,
    persistent=None,
) -> None:
    global _WORKER
    # The persistent cache pickles as a read-only snapshot: workers get its
    # lookups but journal new solves through the StoreDelta path, which the
    # scheduler commits to disk on the parent side.
    store = ResultStore(persistent=persistent)
    store.merge(store_seed)
    store.begin_journal()
    checker = ThresholdChecker.from_options(options, store=store)
    _WORKER = {
        "network": network,
        "options": options,
        "preserved": preserved,
        "checker": checker,
        "store": store,
    }


def _worker_run(task_id: str, root: str) -> TaskResult:
    assert _WORKER is not None, "worker pool not initialized"
    outcome = ConeSynthesizer(
        _WORKER["network"],
        root,
        _WORKER["options"],
        _WORKER["checker"],
        _WORKER["preserved"],
    ).run()
    return TaskResult(
        task_id=task_id,
        gates=outcome.gates,
        discovered=outcome.discovered,
        metrics=outcome.metrics,
        stats_delta=outcome.stats_delta,
        store_delta=_WORKER["store"].take_journal(),
        store_stats_delta=outcome.store_stats_delta,
    )


class ProcessExecutor:
    """Dispatch cones across a process pool (one long-lived worker per job)."""

    backend_name = "process"

    def __init__(
        self,
        network: BooleanNetwork,
        options,
        preserved: frozenset[str],
        store: ResultStore,
        jobs: int,
    ):
        self._pool = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(
                network,
                options,
                preserved,
                store.export(),
                store.persistent,
            ),
        )
        self._futures: set[Future] = set()

    def submit(self, task: SynthTask) -> None:
        self._futures.add(
            self._pool.submit(_worker_run, task.task_id, task.root)
        )

    def wait(self) -> list[TaskResult]:
        done, pending = futures_wait(
            self._futures, return_when=FIRST_COMPLETED
        )
        self._futures = set(pending)
        return [future.result() for future in done]

    def close(self) -> None:
        for future in self._futures:
            future.cancel()
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._futures.clear()


def make_executor(
    jobs: int,
    network: BooleanNetwork,
    options,
    preserved: frozenset[str],
    store: ResultStore,
    checker: ThresholdChecker,
):
    """The backend for a jobs count: inline below 2, process pool above."""
    if jobs <= 1:
        return SerialExecutor(network, options, preserved, checker)
    return ProcessExecutor(network, options, preserved, store, jobs)
