"""The executor layer: serial and process-pool cone dispatch backends.

Both backends expose the same three-call surface the scheduler drives —
``submit(task, attempt)``, ``wait() -> (results, failures)``, ``close()`` —
and both produce byte-identical gates for the same prepared network and
options, because every cone runs under its own
``random.Random("{seed}:{task_id}")`` stream and reads only the immutable
source network.

The process backend ships the source network, options, and a snapshot of
the shared result store to each worker once (pool initializer); workers keep
a long-lived checker whose store journals new entries, and every
:class:`TaskResult` carries the journal back for the scheduler to merge into
the master store.

Resilience semantics (see docs/RESILIENCE.md):

* A worker raising :class:`~repro.errors.DeadlineExceeded` or
  :class:`~repro.errors.TransientError` comes back as a
  :class:`~repro.engine.resilience.TaskFailure` (kinds ``"timeout"`` /
  ``"error"``) instead of poisoning the run; deterministic
  :class:`~repro.errors.SynthesisError` still propagates.
* A dead worker process breaks the whole pool
  (:class:`~concurrent.futures.process.BrokenProcessPool`); the executor
  cannot attribute the crash, so *every* in-flight cone is reported as a
  ``"crash"`` failure (blame-all, the scheduler's quarantine threshold
  absorbs the over-counting) and the pool is rebuilt from the live store.
* When a per-cone deadline is configured, a watchdog sweep kills the pool
  if a cone overruns its budget plus grace (a worker stuck in non-Python
  code never reaches the cooperative check): the overdue cones fail as
  ``"timeout"``, innocent in-flight cones as ``"evicted"`` (a free
  requeue).
"""

from __future__ import annotations

import contextlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool

from repro.core.identify import ThresholdChecker
from repro.engine.cone import ConeSynthesizer
from repro.engine.resilience import Deadline, ResiliencePolicy, TaskFailure
from repro.engine.store import ResultStore, StoreDelta
from repro.engine.tasks import SynthTask, TaskResult
from repro.errors import DeadlineExceeded, TransientError
from repro.faults.injector import STALL_SECONDS, get_injector
from repro.network.network import BooleanNetwork

#: Poll interval for the watchdog sweep; only paid when a deadline is set.
_WATCHDOG_TICK_S = 0.2


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` request (None/0 → all cores)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class SerialExecutor:
    """Run cones inline, sharing one checker (and its store) with the caller."""

    backend_name = "serial"

    def __init__(
        self,
        network: BooleanNetwork,
        options,
        preserved: frozenset[str],
        checker: ThresholdChecker,
        policy: ResiliencePolicy | None = None,
    ):
        self._network = network
        self._options = options
        self._preserved = preserved
        self._checker = checker
        self._policy = policy or ResiliencePolicy()
        self._queue: list[tuple[SynthTask, int]] = []

    def submit(self, task: SynthTask, attempt: int = 1) -> None:
        self._queue.append((task, attempt))

    def wait(self) -> tuple[list[TaskResult], list[TaskFailure]]:
        task, attempt = self._queue.pop(0)
        deadline = Deadline.after(self._policy.deadline_per_cone_s)
        try:
            outcome = ConeSynthesizer(
                self._network, task.root, self._options, self._checker,
                self._preserved, deadline=deadline,
            ).run()
        except DeadlineExceeded as exc:
            return [], [
                TaskFailure(task.task_id, "timeout", str(exc), attempt)
            ]
        except TransientError as exc:
            return [], [TaskFailure(task.task_id, "error", str(exc), attempt)]
        outcome.metrics.attempts = attempt
        return [
            TaskResult(
                task_id=task.task_id,
                gates=outcome.gates,
                discovered=outcome.discovered,
                metrics=outcome.metrics,
                stats_delta=outcome.stats_delta,
                store_delta=None,
                store_stats_delta=outcome.store_stats_delta,
                attempts=attempt,
            )
        ], []

    def close(self) -> None:
        self._queue.clear()


# ----------------------------------------------------------------------
# Process-pool backend.  Worker state lives in module globals, installed
# once per process by the pool initializer; tasks then travel as bare root
# names, keeping per-task IPC to a few hundred bytes each way.
# ----------------------------------------------------------------------
_WORKER: dict | None = None


def _worker_init(
    network: BooleanNetwork,
    options,
    preserved: frozenset[str],
    store_seed: StoreDelta,
    persistent=None,
) -> None:
    global _WORKER
    # The persistent cache pickles as a read-only snapshot: workers get its
    # lookups but journal new solves through the StoreDelta path, which the
    # scheduler commits to disk on the parent side.
    store = ResultStore(persistent=persistent)
    store.merge(store_seed)
    store.begin_journal()
    checker = ThresholdChecker.from_options(options, store=store)
    _WORKER = {
        "network": network,
        "options": options,
        "preserved": preserved,
        "checker": checker,
        "store": store,
        "deadline_per_cone_s": ResiliencePolicy.from_options(
            options
        ).deadline_per_cone_s,
    }


def _worker_fault_hook(task_id: str, attempt: int):
    """The chaos hook for one cone run, or None.

    Decisions are keyed on ``task_id:attempt`` so a retried cone rolls the
    dice again — an injected crash is transient, exactly like the real
    fault it models.  ``worker`` dies mid-cone via ``os._exit`` (the pool
    sees a broken process, not an exception); ``stall`` sleeps through the
    cooperative deadline checks once, which is what the watchdog exists
    for.  Workers inherit ``TELS_CHAOS`` from the parent at spawn, so
    every process rebuilds the same injector and the same decisions.
    """
    injector = get_injector()
    if injector is None:
        return None
    key = f"{task_id}:{attempt}"
    if injector.decide("worker", key):

        def crash() -> None:
            os._exit(1)

        return crash
    if injector.decide("stall", key):
        fired: list[bool] = []

        def stall() -> None:
            if not fired:
                fired.append(True)
                time.sleep(STALL_SECONDS)

        return stall
    return None


def _worker_run(task_id: str, root: str, attempt: int = 1) -> TaskResult:
    assert _WORKER is not None, "worker pool not initialized"
    deadline = Deadline.after(_WORKER["deadline_per_cone_s"])
    outcome = ConeSynthesizer(
        _WORKER["network"],
        root,
        _WORKER["options"],
        _WORKER["checker"],
        _WORKER["preserved"],
        deadline=deadline,
        fault_hook=_worker_fault_hook(task_id, attempt),
    ).run()
    outcome.metrics.attempts = attempt
    return TaskResult(
        task_id=task_id,
        gates=outcome.gates,
        discovered=outcome.discovered,
        metrics=outcome.metrics,
        stats_delta=outcome.stats_delta,
        store_delta=_WORKER["store"].take_journal(),
        store_stats_delta=outcome.store_stats_delta,
        attempts=attempt,
    )


class ProcessExecutor:
    """Dispatch cones across a process pool (one long-lived worker per job)."""

    backend_name = "process"

    def __init__(
        self,
        network: BooleanNetwork,
        options,
        preserved: frozenset[str],
        store: ResultStore,
        jobs: int,
        policy: ResiliencePolicy | None = None,
    ):
        self._network = network
        self._options = options
        self._preserved = preserved
        self._store = store
        self._jobs = jobs
        self._policy = policy or ResiliencePolicy()
        #: future -> (task, attempt, monotonic submit time)
        self._inflight: dict[Future, tuple[SynthTask, int, float]] = {}
        #: failures minted outside wait() (a submit hitting a broken pool);
        #: drained by the next wait() call.
        self._pending: list[TaskFailure] = []
        self.rebuilds = 0
        self.watchdog_kills = 0
        self._pool = self._make_pool()

    def _make_pool(self) -> ProcessPoolExecutor:
        # The store snapshot is re-exported on every (re)build, so a pool
        # recovering from a crash starts warm with everything the run has
        # already solved.
        return ProcessPoolExecutor(
            max_workers=self._jobs,
            initializer=_worker_init,
            initargs=(
                self._network,
                self._options,
                self._preserved,
                self._store.export(),
                self._store.persistent,
            ),
        )

    def submit(self, task: SynthTask, attempt: int = 1) -> None:
        # A worker can die between wait() calls, breaking the pool before
        # wait() gets to observe it; submitting to a broken pool raises
        # synchronously.  Resolve the break here — every in-flight cone is
        # blamed (same as the wait()-side path), the pool is rebuilt, and
        # this task retries on the fresh pool.
        try:
            future = self._pool.submit(
                _worker_run, task.task_id, task.root, attempt
            )
        except BrokenProcessPool:
            self._pending.extend(self._evict_all(kind="crash"))
            self._rebuild()
            future = self._pool.submit(
                _worker_run, task.task_id, task.root, attempt
            )
        self._inflight[future] = (task, attempt, time.monotonic())

    def wait(self) -> tuple[list[TaskResult], list[TaskFailure]]:
        if self._pending:
            drained = self._pending
            self._pending = []
            return [], drained
        tick = _WATCHDOG_TICK_S if self._policy.watchdog_needed else None
        done, _pending = futures_wait(
            list(self._inflight), timeout=tick, return_when=FIRST_COMPLETED
        )
        results: list[TaskResult] = []
        failures: list[TaskFailure] = []
        broken = False
        for future in done:
            task, attempt, _started = self._inflight.pop(future)
            try:
                result = future.result()
            except BrokenProcessPool:
                broken = True
                failures.append(
                    TaskFailure(
                        task.task_id,
                        "crash",
                        "worker process died (pool broke)",
                        attempt,
                    )
                )
            except DeadlineExceeded as exc:
                failures.append(
                    TaskFailure(task.task_id, "timeout", str(exc), attempt)
                )
            except TransientError as exc:
                failures.append(
                    TaskFailure(task.task_id, "error", str(exc), attempt)
                )
            else:
                results.append(result)
        if broken:
            failures.extend(self._evict_all(kind="crash"))
            self._rebuild()
        elif self._policy.watchdog_needed:
            failures.extend(self._reap_overdue())
        return results, failures

    def _reap_overdue(self) -> list[TaskFailure]:
        """Kill the pool when a cone overruns deadline + grace.

        ProcessPoolExecutor cannot cancel a *running* call, so a worker
        wedged past the cooperative checks (a stall in non-Python code, or
        the chaos ``stall`` site) is only recoverable by terminating its
        process — which breaks the pool, so every in-flight cone is
        resolved here: overdue ones as ``"timeout"``, the rest as
        ``"evicted"`` (requeued for free by the scheduler).
        """
        limit = self._policy.deadline_per_cone_s
        if limit is None or not self._inflight:
            return []
        limit += self._policy.watchdog_grace_s
        now = time.monotonic()
        overdue = [
            future
            for future, (_task, _attempt, started) in self._inflight.items()
            if now - started > limit
        ]
        if not overdue:
            return []
        failures: list[TaskFailure] = []
        for future in overdue:
            task, attempt, started = self._inflight.pop(future)
            failures.append(
                TaskFailure(
                    task.task_id,
                    "timeout",
                    f"watchdog: cone exceeded {limit:.3f}s wall clock",
                    attempt,
                )
            )
        self.watchdog_kills += len(overdue)
        failures.extend(self._evict_all(kind="evicted"))
        self._kill_pool()
        self._rebuild()
        return failures

    def _evict_all(self, kind: str) -> list[TaskFailure]:
        failures = [
            TaskFailure(task.task_id, kind, "pool torn down", attempt)
            for task, attempt, _started in self._inflight.values()
        ]
        self._inflight.clear()
        return failures

    def _kill_pool(self) -> None:
        # Deliberate use of the pool's process table: there is no public
        # API to terminate a running worker.
        processes = getattr(self._pool, "_processes", None) or {}
        for proc in list(processes.values()):
            with contextlib.suppress(Exception):
                proc.terminate()

    def _rebuild(self) -> None:
        with contextlib.suppress(Exception):
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool()
        self.rebuilds += 1

    def close(self) -> None:
        for future in self._inflight:
            future.cancel()
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._inflight.clear()


def make_executor(
    jobs: int,
    network: BooleanNetwork,
    options,
    preserved: frozenset[str],
    store: ResultStore,
    checker: ThresholdChecker,
    policy: ResiliencePolicy | None = None,
    distribute: str | None = None,
):
    """The backend for a jobs count: inline below 2, process pool above.

    ``distribute`` (a ``tels serve`` URL) selects the remote backend
    instead; ``jobs`` then sizes the local fallback executor the remote
    backend degrades to when every worker is lost.
    """
    if distribute:
        # Imported lazily: remote.py pulls in the serve transport stack,
        # which local runs should never pay for (or depend on).
        from repro.engine.remote import RemoteExecutor

        return RemoteExecutor(
            distribute,
            network,
            options,
            preserved,
            store,
            checker,
            policy,
            jobs=jobs,
        )
    if jobs <= 1:
        return SerialExecutor(network, options, preserved, checker, policy)
    return ProcessExecutor(
        network, options, preserved, store, jobs, policy
    )
