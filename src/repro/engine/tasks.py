"""The task layer: explicit per-cone synthesis tasks and their results.

The preserved-fanout DAG of the prepared network (Section V-A) partitions
synthesis into independent *cones*: one rooted at every primary-output node,
one at every preserved fanout node, and one at every node collapsing had to
stop at (a ψ- or cube-budget violation).  Each cone reads only the immutable
source network — split parts it creates are task-local — so cones are the
engine's unit of parallelism.

Tasks are identified by their root name.  The id is the seed of the task's
private ``random.Random`` stream and the key the scheduler orders results
by, which is what makes serial and process-pool runs emit identical gate
lists.  Dependencies are *discovered*, not declared up front: a finished
task reports every work-network node its gates reference, and the scheduler
turns the unseen ones into new tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.identify import CheckStats
from repro.core.threshold import ThresholdGate
from repro.engine.events import TaskMetrics
from repro.engine.store import StoreDelta, StoreStats
from repro.network.network import BooleanNetwork


@dataclass(frozen=True)
class SynthTask:
    """One schedulable unit: synthesize the cone rooted at ``root``.

    Attributes:
        task_id: stable identifier — the root node's name.
        root: node of the source network whose cone this task synthesizes.
        requested_by: the task that discovered this root (None for the
            primary-output tasks planned up front).
    """

    task_id: str
    root: str
    requested_by: str | None = None

    @staticmethod
    def for_root(root: str, requested_by: str | None = None) -> "SynthTask":
        return SynthTask(task_id=root, root=root, requested_by=requested_by)


@dataclass
class TaskResult:
    """Everything a finished cone task hands back to the scheduler.

    ``degraded`` marks a cone that the resilience layer completed with the
    paper's one-to-one fallback mapping (after a deadline, quarantine, or
    retry exhaustion) rather than full TELS synthesis; ``attempts`` is how
    many executor submissions the cone consumed, so the trace can report
    retry pressure.
    """

    task_id: str
    gates: tuple[ThresholdGate, ...]
    discovered: tuple[str, ...]
    metrics: TaskMetrics
    stats_delta: CheckStats = field(default_factory=CheckStats)
    store_delta: StoreDelta | None = None
    store_stats_delta: StoreStats | None = None
    degraded: bool = False
    attempts: int = 1


def preserved_set(
    network: BooleanNetwork, preserve_sharing: bool
) -> frozenset[str]:
    """The sharing set S: primary-output nodes plus multi-reader fanout nodes.

    These are the collapse barriers of Fig. 4 and therefore the natural cone
    roots of the task layer.
    """
    preserved: set[str] = set(
        o for o in network.outputs if network.has_node(o)
    )
    if preserve_sharing:
        for signal, readers in network.fanout_map().items():
            if network.has_node(signal):
                uses = len(readers) + (1 if network.is_output(signal) else 0)
                if uses >= 2:
                    preserved.add(signal)
    return frozenset(preserved)


def plan_initial_tasks(network: BooleanNetwork) -> list[SynthTask]:
    """The up-front work queue: one task per primary-output node, in
    declaration order (further tasks are discovered as cones complete)."""
    tasks: list[SynthTask] = []
    seen: set[str] = set()
    for out in network.outputs:
        if network.has_node(out) and out not in seen:
            seen.add(out)
            tasks.append(SynthTask.for_root(out))
    return tasks
