"""The work-queue scheduler driving the pass-based synthesis engine.

``run_synthesis`` plans one task per primary-output cone, dispatches ready
tasks to the executor backend, and turns every newly *discovered* root (a
preserved or collapse-blocked node some finished cone's gates read) into a
new task exactly once.  When the queue drains, the per-task gate lists are
merged into one :class:`ThresholdNetwork` by a deterministic DFS over the
task graph — primary outputs in declaration order, then each task's
discovered roots in discovery order — so the executor's completion order
(and hence the jobs count) never changes the emitted network.

The scheduler is also where the resilience policy is applied (see
docs/RESILIENCE.md).  Executors report structured
:class:`~repro.engine.resilience.TaskFailure` records alongside results;
the policy response is: crashes requeue with backoff until the quarantine
threshold, transient errors retry up to ``max_attempts``, deadline
expiries degrade immediately, and evicted tasks requeue for free.  A
degraded cone is realized with the paper's one-to-one mapping
(:func:`~repro.engine.resilience.fallback_cone_gates`), so
``run_synthesis`` always returns a complete, simulation-equivalent,
lint-clean network — unless ``strict_synthesis`` turns degradation into a
:class:`~repro.errors.SynthesisError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.identify import ThresholdChecker
from repro.core.threshold import ThresholdNetwork
from repro.engine.events import EngineTrace, TaskMetrics
from repro.engine.executor import make_executor, resolve_jobs
from repro.engine.resilience import (
    Deadline,
    DegradedCone,
    ResiliencePolicy,
    TaskFailure,
    fallback_cone_gates,
)
from repro.engine.store import ResultStore
from repro.engine.tasks import (
    SynthTask,
    TaskResult,
    plan_initial_tasks,
    preserved_set,
)
from repro.errors import SynthesisCancelled, SynthesisError
from repro.faults.injector import get_injector
from repro.network.network import BooleanNetwork


@dataclass
class EngineResult:
    """A finished engine run: the network plus everything we measured."""

    network: ThresholdNetwork
    report: "SynthesisReport"  # repro.core.synthesis.SynthesisReport
    trace: EngineTrace
    store: ResultStore


def run_synthesis(
    network: BooleanNetwork,
    options=None,
    jobs: int = 1,
    store: ResultStore | None = None,
    cache_dir: str | None = None,
    on_event=None,
    cancel=None,
    distribute: str | None = None,
) -> EngineResult:
    """Synthesize ``network`` with the pass-based engine.

    Args:
        network: a prepared (ideally algebraically-factored) Boolean network.
        options: :class:`repro.core.synthesis.SynthesisOptions`.
        jobs: worker processes; 1 runs inline, 0/None uses every core.
        store: a shared :class:`ResultStore` to read and extend — pass the
            same store across sweep points to re-solve only what changed.
        cache_dir: directory of the persistent NP-canonical cache; ignored
            when ``store`` is given (attach the cache to the store instead).
            New solves are flushed back to disk when the run completes.
        on_event: optional callable receiving structured progress events as
            plain dicts — one ``{"event": "phase", ...}`` per pass of every
            finished cone (from :meth:`TaskMetrics.events`), a
            ``"task-done"`` row with completion counts per cone, and a
            ``"task-degraded"`` marker per fallback.  A listener exception
            disables further delivery but never fails the run; the daemon
            (``repro.serve``) taps this for live job streaming.
        cancel: optional cooperative cancellation flag (anything with an
            ``is_set()`` method, e.g. :class:`threading.Event`).  The flag
            is checked between cones; when observed set the executor is
            closed — in-flight cones are cancelled, pool workers reaped —
            and :class:`~repro.errors.SynthesisCancelled` is raised.
        distribute: URL of a ``tels serve`` daemon; cones are farmed to
            ``tels worker`` processes through its work broker instead of
            a local pool (see :mod:`repro.engine.remote`).  On total
            worker loss the run degrades to a local executor sized by
            ``jobs`` and still completes with identical output.
    """
    from repro.core.synthesis import SynthesisOptions, SynthesisReport

    options = options or SynthesisOptions()
    jobs = resolve_jobs(jobs)
    if store is None:
        store = (
            ResultStore.with_cache_dir(cache_dir)
            if cache_dir is not None
            else ResultStore()
        )
    checker = ThresholdChecker.from_options(options, store=store)
    preserved = preserved_set(network, options.preserve_sharing)
    initial = plan_initial_tasks(network)
    policy = ResiliencePolicy.from_options(options)
    total_deadline = Deadline.after(policy.deadline_total_s)
    # Validate TELS_CHAOS up front: a malformed spec must fail the run
    # loudly, not lie dormant until (or unless) an injection site fires.
    get_injector()

    started = time.perf_counter()
    executor = make_executor(
        jobs, network, options, preserved, store, checker, policy,
        distribute=distribute,
    )
    trace = EngineTrace(
        jobs=jobs,
        backend=executor.backend_name,
        gate_model=getattr(options, "gate_model", "ltg"),
    )
    tasks: dict[str, SynthTask] = {}
    results: dict[str, TaskResult] = {}
    crashes: dict[str, int] = {}
    degraded_records: list[DegradedCone] = []
    listener = on_event

    def _emit(payload: dict) -> None:
        nonlocal listener
        if listener is None:
            return
        try:
            listener(payload)
        except Exception:
            listener = None  # a broken listener must never fail the run

    def _register(result: TaskResult, submit_new: bool = True) -> None:
        results[result.task_id] = result
        trace.add(result.metrics)
        for event in result.metrics.events():
            _emit(
                {
                    "event": "phase",
                    "task_id": event.task_id,
                    "phase": event.phase,
                    "seconds": round(event.seconds, 6),
                    "detail": event.detail,
                }
            )
        _emit(
            {
                "event": "task-done",
                "task_id": result.task_id,
                "gates": result.metrics.gates_emitted,
                "degraded": result.metrics.degraded,
                "completed": len(results),
                "scheduled": len(tasks),
            }
        )
        if result.store_delta is not None:
            store.merge(result.store_delta)
        for root in result.discovered:
            if root not in tasks:
                task = SynthTask.for_root(root, requested_by=result.task_id)
                tasks[task.task_id] = task
                if submit_new:
                    executor.submit(task)

    def _degrade(
        task_id: str,
        reason: str,
        attempts: int,
        detail: str = "",
        submit_new: bool = True,
    ) -> None:
        """Resolve a failed cone with the one-to-one fallback mapping."""
        if policy.strict:
            raise SynthesisError(
                f"cone {task_id!r} failed ({reason}"
                + (f": {detail}" if detail else "")
                + ") and strict synthesis forbids degradation"
            )
        gates, discovered = fallback_cone_gates(
            network, tasks[task_id].root, preserved, options, checker=checker
        )
        metrics = TaskMetrics(
            task_id=task_id,
            gates_emitted=len(gates),
            attempts=attempts,
            degraded=True,
        )
        degraded_records.append(
            DegradedCone(task_id, reason, attempts, detail)
        )
        trace.degraded.append((task_id, reason))
        _emit({"event": "task-degraded", "task_id": task_id, "reason": reason})
        _register(
            TaskResult(
                task_id=task_id,
                gates=gates,
                discovered=discovered,
                metrics=metrics,
                degraded=True,
                attempts=attempts,
            ),
            submit_new=submit_new,
        )

    def _handle_failure(failure: TaskFailure) -> None:
        task_id = failure.task_id
        if task_id in results:
            return  # resolved while the failure was in flight
        if failure.kind == "evicted":
            # Innocent bystander of a pool teardown: requeue, no penalty.
            trace.requeues += 1
            executor.submit(tasks[task_id], failure.attempt)
        elif failure.kind == "crash":
            crashes[task_id] = crashes.get(task_id, 0) + 1
            if crashes[task_id] >= policy.poison_crashes:
                trace.quarantined.append(task_id)
                _degrade(
                    task_id, "quarantined", failure.attempt, failure.message
                )
            else:
                trace.requeues += 1
                time.sleep(
                    policy.retry.backoff_s(failure.attempt, key=task_id)
                )
                executor.submit(tasks[task_id], failure.attempt + 1)
        elif failure.kind == "timeout":
            _degrade(task_id, "deadline", failure.attempt, failure.message)
        else:  # "error": transient, retry with backoff until exhausted
            if failure.attempt >= policy.max_attempts:
                _degrade(
                    task_id,
                    "retry-exhausted",
                    failure.attempt,
                    failure.message,
                )
            else:
                trace.retries += 1
                time.sleep(
                    policy.retry.backoff_s(failure.attempt, key=task_id)
                )
                executor.submit(tasks[task_id], failure.attempt + 1)

    try:
        for task in initial:
            tasks[task.task_id] = task
            executor.submit(task)
        while len(results) < len(tasks):
            if cancel is not None and cancel.is_set():
                # Cooperative cancellation: observed only between cones, so
                # the executor teardown in the ``finally`` below reaps every
                # pool worker and nothing is left running detached.
                raise SynthesisCancelled(
                    f"cancelled with {len(tasks) - len(results)} of "
                    f"{len(tasks)} cones unfinished"
                )
            if total_deadline is not None and total_deadline.expired:
                # Whole-run budget exhausted: every unfinished cone —
                # including roots the fallbacks themselves discover —
                # degrades to the one-to-one mapping.
                while len(results) < len(tasks):
                    for task_id in list(tasks):
                        if task_id not in results:
                            _degrade(
                                task_id,
                                "total-deadline",
                                1,
                                submit_new=False,
                            )
                break
            wave, failures = executor.wait()
            for result in wave:
                if result.task_id not in results:
                    _register(result)
            for failure in failures:
                _handle_failure(failure)
    except SynthesisCancelled:
        # A cancelled run still banks its work: everything solved so far
        # goes to the persistent tier for the next submission to reuse.
        store.flush_persistent()
        raise
    finally:
        executor.close()
    trace.wall_s = time.perf_counter() - started
    trace.pool_rebuilds = getattr(executor, "rebuilds", 0)
    trace.watchdog_kills = getattr(executor, "watchdog_kills", 0)
    trace.lease_expirations = getattr(executor, "lease_expirations", 0)
    trace.remote_workers = getattr(executor, "remote_workers", 0)
    trace.remote_fallback_tasks = getattr(executor, "fallback_tasks", 0)
    trace.remote_fallback_reason = getattr(executor, "fallback_reason", None)
    store.flush_persistent()

    result_net = _assemble(network, initial, results)
    report = _build_report(options, checker, trace, results, store)
    report.degraded_cones = len(degraded_records)
    report.degraded = tuple(degraded_records)
    if getattr(options, "lint", True):
        # Static post-pass over the assembled network: the structural rules
        # (cycles, dangling fanins, reachability) only make sense here, and
        # the gate-level semantic rules re-run so serial and process-pool
        # runs report through one code path.
        from repro.lint.diagnostics import LintOptions
        from repro.lint.runner import run_lint

        lint_report = run_lint(
            result_net,
            LintOptions(
                psi=options.psi,
                rules=options.lint_rules,
                gate_model=getattr(options, "gate_model", "ltg"),
            ),
        )
        report.lint = lint_report
        trace.network_lint_violations = lint_report.violations
        trace.network_lint_s = lint_report.wall_s
    if getattr(options, "analyze", False):
        # Whole-network dataflow post-pass: interval/don't-care fixpoints,
        # verified removal candidates, and the robustness certificate.
        from repro.analysis import AnalysisOptions, analyze_threshold_network

        analysis = analyze_threshold_network(
            result_net,
            AnalysisOptions(
                gate_model=getattr(options, "gate_model", "ltg")
            ),
        )
        report.analysis = analysis
        trace.network_analysis_s = analysis.wall_s
        trace.analysis_removals = len(analysis.verified_findings)
        trace.analysis_min_slack = analysis.certificate.min_slack
    return EngineResult(
        network=result_net, report=report, trace=trace, store=store
    )


def _assemble(
    network: BooleanNetwork,
    initial: list[SynthTask],
    results: dict[str, TaskResult],
) -> ThresholdNetwork:
    """Merge per-task gates into one network, in canonical task order."""
    result_net = ThresholdNetwork(network.name + "_th")
    for pi in network.inputs:
        result_net.add_input(pi)
    for out in network.outputs:
        result_net.add_output(out)
    visited: set[str] = set()
    stack = [task.task_id for task in reversed(initial)]
    while stack:
        task_id = stack.pop()
        if task_id in visited:
            continue
        visited.add(task_id)
        result = results.get(task_id)
        if result is None:
            raise SynthesisError(f"task {task_id!r} was never completed")
        for gate in result.gates:
            result_net.add_gate(gate)
        stack.extend(reversed(result.discovered))
    result_net.cleanup()
    result_net.check()
    return result_net


def _build_report(
    options,
    checker: ThresholdChecker,
    trace: EngineTrace,
    results: dict[str, TaskResult],
    store: ResultStore,
):
    """Aggregate per-task metrics into the façade's SynthesisReport."""
    from repro.core.synthesis import SynthesisReport

    report = SynthesisReport(checker=checker, trace=trace)
    for result in results.values():
        m = result.metrics
        report.nodes_processed += m.nodes_processed
        report.gates_emitted += m.gates_emitted
        report.binate_splits += m.binate_splits
        report.unate_splits += m.unate_splits
        report.kway_splits += m.kway_splits
        report.theorem2_applications += m.theorem2_applications
        report.and_factor_splits += m.and_factor_splits
    if trace.backend != "serial":
        # Worker checkers did the work; fold their per-task stat deltas into
        # the parent checker (and store) so report.checker.stats and
        # store.stats read the same either way.  Serial runs share the
        # master store, so their counts are already in place.
        for result in results.values():
            checker.stats.add(result.stats_delta)
            if result.store_stats_delta is not None:
                store.stats.add(result.store_stats_delta)
    return report
