"""The work-queue scheduler driving the pass-based synthesis engine.

``run_synthesis`` plans one task per primary-output cone, dispatches ready
tasks to the executor backend, and turns every newly *discovered* root (a
preserved or collapse-blocked node some finished cone's gates read) into a
new task exactly once.  When the queue drains, the per-task gate lists are
merged into one :class:`ThresholdNetwork` by a deterministic DFS over the
task graph — primary outputs in declaration order, then each task's
discovered roots in discovery order — so the executor's completion order
(and hence the jobs count) never changes the emitted network.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.identify import ThresholdChecker
from repro.core.threshold import ThresholdNetwork
from repro.engine.events import EngineTrace
from repro.engine.executor import make_executor, resolve_jobs
from repro.engine.store import ResultStore
from repro.engine.tasks import (
    SynthTask,
    TaskResult,
    plan_initial_tasks,
    preserved_set,
)
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork


@dataclass
class EngineResult:
    """A finished engine run: the network plus everything we measured."""

    network: ThresholdNetwork
    report: "SynthesisReport"  # repro.core.synthesis.SynthesisReport
    trace: EngineTrace
    store: ResultStore


def run_synthesis(
    network: BooleanNetwork,
    options=None,
    jobs: int = 1,
    store: ResultStore | None = None,
    cache_dir: str | None = None,
) -> EngineResult:
    """Synthesize ``network`` with the pass-based engine.

    Args:
        network: a prepared (ideally algebraically-factored) Boolean network.
        options: :class:`repro.core.synthesis.SynthesisOptions`.
        jobs: worker processes; 1 runs inline, 0/None uses every core.
        store: a shared :class:`ResultStore` to read and extend — pass the
            same store across sweep points to re-solve only what changed.
        cache_dir: directory of the persistent NP-canonical cache; ignored
            when ``store`` is given (attach the cache to the store instead).
            New solves are flushed back to disk when the run completes.
    """
    from repro.core.synthesis import SynthesisOptions, SynthesisReport

    options = options or SynthesisOptions()
    jobs = resolve_jobs(jobs)
    if store is None:
        store = (
            ResultStore.with_cache_dir(cache_dir)
            if cache_dir is not None
            else ResultStore()
        )
    checker = ThresholdChecker.from_options(options, store=store)
    preserved = preserved_set(network, options.preserve_sharing)
    initial = plan_initial_tasks(network)

    started = time.perf_counter()
    executor = make_executor(
        jobs, network, options, preserved, store, checker
    )
    trace = EngineTrace(jobs=jobs, backend=executor.backend_name)
    tasks: dict[str, SynthTask] = {}
    results: dict[str, TaskResult] = {}
    try:
        for task in initial:
            tasks[task.task_id] = task
            executor.submit(task)
        while len(results) < len(tasks):
            for result in executor.wait():
                results[result.task_id] = result
                trace.add(result.metrics)
                if result.store_delta is not None:
                    store.merge(result.store_delta)
                for root in result.discovered:
                    if root not in tasks:
                        task = SynthTask.for_root(
                            root, requested_by=result.task_id
                        )
                        tasks[task.task_id] = task
                        executor.submit(task)
    finally:
        executor.close()
    trace.wall_s = time.perf_counter() - started
    store.flush_persistent()

    result_net = _assemble(network, initial, results)
    report = _build_report(options, checker, trace, results, store)
    if getattr(options, "lint", True):
        # Static post-pass over the assembled network: the structural rules
        # (cycles, dangling fanins, reachability) only make sense here, and
        # the gate-level semantic rules re-run so serial and process-pool
        # runs report through one code path.
        from repro.lint.diagnostics import LintOptions
        from repro.lint.runner import run_lint

        lint_report = run_lint(
            result_net,
            LintOptions(psi=options.psi, rules=options.lint_rules),
        )
        report.lint = lint_report
        trace.network_lint_violations = lint_report.violations
        trace.network_lint_s = lint_report.wall_s
    return EngineResult(
        network=result_net, report=report, trace=trace, store=store
    )


def _assemble(
    network: BooleanNetwork,
    initial: list[SynthTask],
    results: dict[str, TaskResult],
) -> ThresholdNetwork:
    """Merge per-task gates into one network, in canonical task order."""
    result_net = ThresholdNetwork(network.name + "_th")
    for pi in network.inputs:
        result_net.add_input(pi)
    for out in network.outputs:
        result_net.add_output(out)
    visited: set[str] = set()
    stack = [task.task_id for task in reversed(initial)]
    while stack:
        task_id = stack.pop()
        if task_id in visited:
            continue
        visited.add(task_id)
        result = results.get(task_id)
        if result is None:
            raise SynthesisError(f"task {task_id!r} was never completed")
        for gate in result.gates:
            result_net.add_gate(gate)
        stack.extend(reversed(result.discovered))
    result_net.cleanup()
    result_net.check()
    return result_net


def _build_report(
    options,
    checker: ThresholdChecker,
    trace: EngineTrace,
    results: dict[str, TaskResult],
    store: ResultStore,
):
    """Aggregate per-task metrics into the façade's SynthesisReport."""
    from repro.core.synthesis import SynthesisReport

    report = SynthesisReport(checker=checker, trace=trace)
    for result in results.values():
        m = result.metrics
        report.nodes_processed += m.nodes_processed
        report.gates_emitted += m.gates_emitted
        report.binate_splits += m.binate_splits
        report.unate_splits += m.unate_splits
        report.kway_splits += m.kway_splits
        report.theorem2_applications += m.theorem2_applications
        report.and_factor_splits += m.and_factor_splits
    if trace.backend != "serial":
        # Worker checkers did the work; fold their per-task stat deltas into
        # the parent checker (and store) so report.checker.stats and
        # store.stats read the same either way.  Serial runs share the
        # master store, so their counts are already in place.
        for result in results.values():
            checker.stats.add(result.stats_delta)
            if result.store_stats_delta is not None:
                store.stats.add(result.store_stats_delta)
    return report
