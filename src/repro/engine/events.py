"""Engine instrumentation: structured per-task events and run traces.

Every cone task reports a :class:`TaskMetrics` record — wall time split into
the three passes of the Fig. 3 flow (collapse / check / split), the node and
gate counters, and the checker activity it caused.  The scheduler folds the
records into an :class:`EngineTrace`, which the CLI summary, the extended
suite, and ``experiments/report.py`` consume.  Fine-grained
:class:`TaskEvent` rows (one per pass per task) are derived on demand for
structured consumers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Iterator


@dataclass(frozen=True)
class TaskEvent:
    """One structured event: a task spent ``seconds`` in ``phase``."""

    task_id: str
    phase: str
    seconds: float
    detail: dict = field(default_factory=dict)


@dataclass
class TaskMetrics:
    """Aggregated instrumentation for one cone task."""

    task_id: str
    wall_s: float = 0.0
    collapse_s: float = 0.0
    check_s: float = 0.0
    split_s: float = 0.0
    nodes_processed: int = 0
    gates_emitted: int = 0
    binate_splits: int = 0
    unate_splits: int = 0
    kway_splits: int = 0
    and_factor_splits: int = 0
    theorem2_applications: int = 0
    checker_calls: int = 0
    checker_cache_hits: int = 0
    multithreshold_hits: int = 0
    flash_requantized: int = 0
    ilp_solved: int = 0
    constraints_emitted: int = 0
    fastpath_hits: int = 0
    fastpath_negatives: int = 0
    fastpath_misses: int = 0
    exact_solves: int = 0
    scipy_solves: int = 0
    exact_wall_s: float = 0.0
    scipy_wall_s: float = 0.0
    presolve_rows_removed: int = 0
    persistent_hits: int = 0
    persistent_misses: int = 0
    transformed_hits: int = 0
    transform_rejects: int = 0
    solver_timeouts: int = 0
    lint_s: float = 0.0
    lint_violations: int = 0
    #: Per-cone analysis metrics (margin slack over this cone's gates).
    analysis_s: float = 0.0
    analysis_min_slack: int | None = None
    analysis_constant_gates: int = 0
    #: Executor submissions this cone consumed (retries inflate this).
    attempts: int = 1
    #: True when the cone fell back to the one-to-one mapping.
    degraded: bool = False

    def events(self) -> Iterator[TaskEvent]:
        """Expand this record into structured per-phase events."""
        yield TaskEvent(
            self.task_id,
            "collapse",
            self.collapse_s,
            {"nodes": self.nodes_processed},
        )
        yield TaskEvent(
            self.task_id,
            "check",
            self.check_s,
            {
                "calls": self.checker_calls,
                "cache_hits": self.checker_cache_hits,
                "multithreshold_hits": self.multithreshold_hits,
                "flash_requantized": self.flash_requantized,
                "ilp_solved": self.ilp_solved,
                "constraints": self.constraints_emitted,
                "fastpath_hits": self.fastpath_hits,
                "fastpath_negatives": self.fastpath_negatives,
                "fastpath_misses": self.fastpath_misses,
                "exact_solves": self.exact_solves,
                "scipy_solves": self.scipy_solves,
                "presolve_rows_removed": self.presolve_rows_removed,
                "persistent_hits": self.persistent_hits,
                "persistent_misses": self.persistent_misses,
                "transformed_hits": self.transformed_hits,
            },
        )
        yield TaskEvent(
            self.task_id,
            "split",
            self.split_s,
            {
                "binate": self.binate_splits,
                "unate": self.unate_splits,
                "kway": self.kway_splits,
                "and_factor": self.and_factor_splits,
                "theorem2": self.theorem2_applications,
            },
        )
        yield TaskEvent(
            self.task_id,
            "lint",
            self.lint_s,
            {"violations": self.lint_violations},
        )
        yield TaskEvent(
            self.task_id,
            "analysis",
            self.analysis_s,
            {
                "min_slack": self.analysis_min_slack,
                "constant_gates": self.analysis_constant_gates,
            },
        )
        yield TaskEvent(
            self.task_id,
            "done",
            self.wall_s,
            {
                "gates": self.gates_emitted,
                "attempts": self.attempts,
                "degraded": self.degraded,
            },
        )


class _Timer:
    """Context manager adding elapsed seconds to a metrics attribute."""

    __slots__ = ("metrics", "attr", "_t0")

    def __init__(self, metrics: TaskMetrics, attr: str):
        self.metrics = metrics
        self.attr = attr

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        setattr(
            self.metrics, self.attr, getattr(self.metrics, self.attr) + elapsed
        )


def timed(metrics: TaskMetrics, attr: str) -> _Timer:
    """``with timed(metrics, "collapse_s"): ...`` accumulates wall time."""
    return _Timer(metrics, attr)


@dataclass
class EngineTrace:
    """All task metrics of one engine run, plus run-level aggregates."""

    tasks: list[TaskMetrics] = field(default_factory=list)
    jobs: int = 1
    backend: str = "serial"
    #: Gate-model backend the run synthesized for (``repro.gates``).
    gate_model: str = "ltg"
    wall_s: float = 0.0
    #: Findings of the whole-network lint post-pass (None: lint was off).
    network_lint_violations: int | None = None
    network_lint_s: float = 0.0
    #: Whole-network analysis post-pass (None: analysis was off).
    network_analysis_s: float = 0.0
    analysis_removals: int | None = None
    analysis_min_slack: int | None = None
    #: Resilience telemetry (see docs/RESILIENCE.md).
    retries: int = 0
    requeues: int = 0
    pool_rebuilds: int = 0
    watchdog_kills: int = 0
    #: Distributed-run telemetry (``remote`` backend; see remote.py).
    lease_expirations: int = 0
    remote_workers: int = 0
    remote_fallback_tasks: int = 0
    remote_fallback_reason: str | None = None
    #: Task ids quarantined as poison after repeated worker crashes.
    quarantined: list[str] = field(default_factory=list)
    #: ``(task_id, reason)`` per cone that fell back to one-to-one mapping.
    degraded: list[tuple[str, str]] = field(default_factory=list)

    def add(self, metrics: TaskMetrics) -> None:
        self.tasks.append(metrics)

    def events(self) -> Iterator[TaskEvent]:
        for metrics in self.tasks:
            yield from metrics.events()

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def total(self, attr: str) -> float:
        return sum(getattr(m, attr) for m in self.tasks)

    @property
    def cache_hit_rate(self) -> float:
        calls = self.total("checker_calls")
        return self.total("checker_cache_hits") / calls if calls else 0.0

    @property
    def fastpath_hit_rate(self) -> float:
        """Share of fast-path attempts that skipped the ILP entirely."""
        attempts = self.total("fastpath_hits") + self.total(
            "fastpath_negatives"
        ) + self.total("fastpath_misses")
        if not attempts:
            return 0.0
        return (
            self.total("fastpath_hits") + self.total("fastpath_negatives")
        ) / attempts

    @property
    def persistent_hit_rate(self) -> float:
        """Share of persistent-tier lookups answered from disk."""
        lookups = self.total("persistent_hits") + self.total(
            "persistent_misses"
        )
        if not lookups:
            return 0.0
        return self.total("persistent_hits") / lookups

    def slowest(self, n: int = 3) -> list[TaskMetrics]:
        return sorted(self.tasks, key=lambda m: -m.wall_s)[:n]

    def summary_lines(self) -> list[str]:
        """Human-readable run summary for the CLI."""
        lines = [
            f"engine: {self.num_tasks} tasks, backend={self.backend} "
            f"jobs={self.jobs}, gate model {self.gate_model}, "
            f"wall {self.wall_s:.3f}s "
            f"(task time {self.total('wall_s'):.3f}s)",
            f"passes: collapse {self.total('collapse_s'):.3f}s  "
            f"check {self.total('check_s'):.3f}s  "
            f"split {self.total('split_s'):.3f}s",
            f"checker: {int(self.total('checker_calls'))} calls, "
            f"{int(self.total('checker_cache_hits'))} cache hits "
            f"({100.0 * self.cache_hit_rate:.1f}%), "
            f"{int(self.total('ilp_solved'))} ILPs solved, "
            f"{int(self.total('constraints_emitted'))} constraints",
            f"fastpath: {int(self.total('fastpath_hits'))} hits, "
            f"{int(self.total('fastpath_negatives'))} negatives, "
            f"{int(self.total('fastpath_misses'))} misses "
            f"({100.0 * self.fastpath_hit_rate:.1f}% resolved without ILP)",
        ]
        if self.total("multithreshold_hits") or self.total("flash_requantized"):
            lines.append(
                f"gate model: "
                f"{int(self.total('multithreshold_hits'))} multi-threshold "
                f"absorptions, {int(self.total('flash_requantized'))} flash "
                f"re-quantizations"
            )
        lines += [
            f"solvers: exact {int(self.total('exact_solves'))} solves "
            f"{self.total('exact_wall_s'):.3f}s, "
            f"scipy {int(self.total('scipy_solves'))} solves "
            f"{self.total('scipy_wall_s'):.3f}s, "
            f"presolve removed {int(self.total('presolve_rows_removed'))} rows",
        ]
        if self.total("persistent_hits") or self.total("persistent_misses"):
            lines.append(
                f"persistent cache: {int(self.total('persistent_hits'))} hits, "
                f"{int(self.total('persistent_misses'))} misses "
                f"({100.0 * self.persistent_hit_rate:.1f}%), "
                f"{int(self.total('transformed_hits'))} NP-transformed, "
                f"{int(self.total('transform_rejects'))} rejected"
            )
        if (
            self.degraded
            or self.retries
            or self.requeues
            or self.pool_rebuilds
            or self.watchdog_kills
            or self.quarantined
            or self.lease_expirations
        ):
            cones = ", ".join(
                f"{task_id} ({reason})" for task_id, reason in self.degraded
            )
            lines.append(
                f"degraded: {len(self.degraded)} cones"
                + (f" [{cones}]" if cones else "")
                + f", {self.retries} retries, {self.requeues} requeues, "
                f"{self.pool_rebuilds} pool rebuilds, "
                f"{self.watchdog_kills} watchdog kills, "
                f"{len(self.quarantined)} quarantined"
            )
        if self.backend == "remote":
            line = (
                f"remote: {self.remote_workers} worker(s) seen, "
                f"{self.lease_expirations} expired leases, "
                f"{self.remote_fallback_tasks} cones ran on the local "
                f"fallback"
            )
            if self.remote_fallback_reason:
                line += f" ({self.remote_fallback_reason})"
            lines.append(line)
        if self.network_lint_violations is not None:
            lines.append(
                f"lint: {int(self.total('lint_violations'))} cone "
                f"violations, {self.network_lint_violations} network "
                f"violations ({self.total('lint_s') + self.network_lint_s:.3f}s)"
            )
        if self.analysis_removals is not None:
            slack = (
                str(self.analysis_min_slack)
                if self.analysis_min_slack is not None
                else "n/a"
            )
            lines.append(
                f"analysis: {self.analysis_removals} verified removal "
                f"candidate(s), min margin slack {slack} "
                f"({self.total('analysis_s') + self.network_analysis_s:.3f}s)"
            )
        slow = [m for m in self.slowest(3) if m.wall_s > 0]
        if slow:
            tasks = ", ".join(f"{m.task_id} {m.wall_s:.3f}s" for m in slow)
            lines.append(f"slowest tasks: {tasks}")
        return lines

    def format_summary(self) -> str:
        return "\n".join(self.summary_lines())
