"""The shared result store: canonical-cover keyed caches for the engine.

The store generalizes the old per-run :class:`ThresholdChecker` memo into a
two-tier cache that can be shared across tasks, outputs, whole benchmark
runs, and experiment sweeps:

* **analysis tier** (delta-independent): canonical cover → the positive-unate
  rewrite, its phase substitution, and the minimized complement (the maximal
  false points).  These are the expensive two-level steps of Fig. 6 and do
  not depend on the defect tolerances, so a ψ/δ ablation sweep reuses them
  wholesale — only the ILP is re-solved.  ``None`` records a cover proven
  non-unate (hence non-threshold for *every* tolerance setting).
* **vector tier** (delta-dependent): (canonical cover, δ_on, δ_off, w_max) →
  the solved weight–threshold vector, or ``None`` for ILP-infeasible.

Process-pool workers keep their own store and journal every new entry; the
scheduler merges the journals back into the master store so later tasks,
runs, and sweep points see them.

A third, *persistent* tier (:class:`repro.cache.store.PersistentCache`) can
be layered underneath: a vector-tier miss is retried against the on-disk
cache under the cover's NP-semi-canonical signature, and a hit is mapped
back through the recorded permutation/negation transform — then re-verified
against the cover's ON/OFF sets before being trusted.  Every newly solved
vector (including merged worker journals) is committed back to the
persistent journal; :meth:`ResultStore.flush_persistent` writes it out.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields, replace

from repro.boolean.cover import Cover
from repro.core.threshold import GateVector

_MISSING = object()


@dataclass(frozen=True)
class CoverAnalysis:
    """Delta-independent threshold-check preprocessing of one cover.

    Attributes:
        positive: the positive-unate rewrite of the cover (Section IV).
        flipped: per-variable phase-substitution flags.
        off_cubes: minimized complement of ``positive`` — one cube per
            maximal false point (the OFF-set constraint generators).
    """

    positive: Cover
    flipped: tuple[bool, ...]
    off_cubes: Cover


@dataclass
class StoreStats:
    """Hit/miss counters, per tier.

    All fields are additive counters, so :meth:`snapshot`, :meth:`since`,
    and :meth:`add` are derived generically over the dataclass fields — a
    new counter only needs a declaration here to travel through per-task
    deltas and process-pool merges without double counting.

    Vector-tier semantics: ``vector_hits`` counts every *served* lookup
    (whichever tier answered); the ``persistent_*`` counters break out the
    subset that reached the on-disk tier, and ``transformed_hits`` /
    ``transform_rejects`` the persistent hits that needed a nontrivial
    NP transform (rejects failed re-verification and fell through to a
    miss).
    """

    vector_hits: int = 0
    vector_misses: int = 0
    analysis_hits: int = 0
    analysis_misses: int = 0
    persistent_hits: int = 0
    persistent_misses: int = 0
    transformed_hits: int = 0
    transform_rejects: int = 0

    @property
    def vector_lookups(self) -> int:
        return self.vector_hits + self.vector_misses

    @property
    def vector_hit_rate(self) -> float:
        lookups = self.vector_lookups
        return self.vector_hits / lookups if lookups else 0.0

    @property
    def analysis_lookups(self) -> int:
        return self.analysis_hits + self.analysis_misses

    @property
    def analysis_hit_rate(self) -> float:
        lookups = self.analysis_lookups
        return self.analysis_hits / lookups if lookups else 0.0

    @property
    def persistent_lookups(self) -> int:
        return self.persistent_hits + self.persistent_misses

    @property
    def persistent_hit_rate(self) -> float:
        lookups = self.persistent_lookups
        return self.persistent_hits / lookups if lookups else 0.0

    @property
    def hits(self) -> int:
        return self.vector_hits + self.analysis_hits

    def snapshot(self) -> "StoreStats":
        """An independent copy (for before/after deltas)."""
        return replace(self)

    def since(self, earlier: "StoreStats") -> "StoreStats":
        """Counter deltas accumulated after ``earlier`` was snapshotted."""
        return StoreStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def add(self, delta: "StoreStats") -> None:
        """Fold another stats record (e.g. a worker's delta) into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(delta, f.name))


@dataclass
class StoreDelta:
    """New entries journaled since :meth:`ResultStore.begin_journal`."""

    vectors: dict[tuple, GateVector | None] = field(default_factory=dict)
    analyses: dict[tuple, CoverAnalysis | None] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.vectors) + len(self.analyses)


class ResultStore:
    """Canonical-cover keyed cache shared across synthesis tasks and sweeps.

    ``persistent`` optionally layers a
    :class:`repro.cache.store.PersistentCache` under the vector tier: misses
    are retried on disk under the cover's NP-canonical signature, and every
    new solve (local or merged from a worker journal) is committed back.
    """

    def __init__(self, persistent=None) -> None:
        self._vectors: dict[tuple, GateVector | None] = {}
        self._analyses: dict[tuple, CoverAnalysis | None] = {}
        self.stats = StoreStats()
        self._journal: StoreDelta | None = None
        self.persistent = persistent
        self._canonical_memo: dict[tuple, tuple] = {}
        # Serializes multi-step mutations (persistent lookups/installs,
        # journal merges, snapshots) when the daemon's job threads share
        # one store.  Plain dict reads stay lock-free: they are GIL-atomic
        # and the entries are immutable once installed.
        self._lock = threading.RLock()

    @classmethod
    def with_cache_dir(cls, cache_dir) -> "ResultStore":
        """A store layered over the persistent cache at ``cache_dir``."""
        from repro.cache.store import open_cache

        return cls(persistent=open_cache(cache_dir))

    # -- vector tier ---------------------------------------------------
    def get_vector(self, key: tuple):
        """Cached vector for a (cover, deltas) key, or the miss sentinel."""
        found = self._vectors.get(key, _MISSING)
        if found is not _MISSING:
            self.stats.vector_hits += 1
            return found
        if self.persistent is not None:
            with self._lock:
                found = self._persistent_lookup(key)
                if found is not _MISSING:
                    self.stats.vector_hits += 1
                    self._vectors[key] = found
                    if self._journal is not None:
                        self._journal.vectors[key] = found
                    return found
        self.stats.vector_misses += 1
        return _MISSING

    def put_vector(self, key: tuple, vector: GateVector | None) -> None:
        with self._lock:
            self._vectors[key] = vector
            if self._journal is not None:
                self._journal.vectors[key] = vector
            if self.persistent is not None:
                self._persistent_put(key, vector)

    # -- persistent tier -----------------------------------------------
    @staticmethod
    def _split_key(key: tuple):
        """(cover_key, delta_on, delta_off, max_weight, fingerprint) or None.

        The persistent tier understands the checker's key shapes: the
        historical 4-tuple of the default ``ltg`` model (fingerprint None)
        and the 5-tuple of every other gate model, whose trailing element
        is the model fingerprint.  Other shapes (tests, ad-hoc callers)
        silently stay memory-only.
        """
        if not (isinstance(key, tuple) and len(key) in (4, 5)):
            return None
        cover_key = key[0]
        if not (
            isinstance(cover_key, tuple)
            and len(cover_key) == 2
            and isinstance(cover_key[0], int)
            and isinstance(cover_key[1], tuple)
        ):
            return None
        fingerprint = key[4] if len(key) == 5 else None
        if fingerprint is not None and not isinstance(fingerprint, str):
            return None
        return cover_key, key[1], key[2], key[3], fingerprint

    def _canonicalize(self, cover_key: tuple):
        """Memoized NP-canonicalization of a cover key (None if too wide)."""
        from repro.cache.canonical import MAX_CANONICAL_VARS, np_canonicalize

        if cover_key[0] > MAX_CANONICAL_VARS:
            return None
        cached = self._canonical_memo.get(cover_key)
        if cached is None:
            cached = np_canonicalize(cover_key)
            self._canonical_memo[cover_key] = cached
        return cached

    @staticmethod
    def _model_for(fingerprint: str | None):
        """The GateModel owning a keyed entry (None = unresolvable)."""
        if fingerprint is None:
            from repro.gates import get_model

            return get_model("ltg")
        from repro.gates import model_for_fingerprint

        return model_for_fingerprint(fingerprint)

    def _persistent_lookup(self, key: tuple):
        from repro.cache.store import ABSENT, entry_key, signature_string

        parts = self._split_key(key)
        if parts is None:
            return _MISSING
        cover_key, delta_on, delta_off, max_weight, fingerprint = parts
        canonical = self._canonicalize(cover_key)
        if canonical is None:
            return _MISSING
        skey = entry_key(
            signature_string(canonical.key),
            delta_on,
            delta_off,
            max_weight,
            model=fingerprint,
        )
        values = self.persistent.get(skey)
        if values is ABSENT:
            self.stats.persistent_misses += 1
            return _MISSING
        if values is None:
            # A cached non-realizable verdict: NP-invariant, nothing to map.
            self.stats.persistent_hits += 1
            return None
        model = self._model_for(fingerprint)
        if model is None:
            self.stats.persistent_misses += 1
            return _MISSING
        vector = model.decode_canonical(values, canonical.transform)
        # Never trust a transformed (or on-disk) gate unverified: check it
        # against this cover's ON/OFF sets under the model's margin rules.
        if vector is None or not model.verify_vector(
            cover_key, vector, delta_on, delta_off
        ):
            self.stats.transform_rejects += 1
            self.stats.persistent_misses += 1
            return _MISSING
        self.stats.persistent_hits += 1
        if not canonical.transform.is_identity:
            self.stats.transformed_hits += 1
        return vector

    def _persistent_put(self, key: tuple, vector) -> None:
        from repro.cache.store import entry_key, signature_string

        if getattr(self.persistent, "read_only", False):
            return  # worker-side snapshot: deltas travel via the journal
        parts = self._split_key(key)
        if parts is None:
            return
        cover_key, delta_on, delta_off, max_weight, fingerprint = parts
        canonical = self._canonicalize(cover_key)
        if canonical is None:
            return
        model = self._model_for(fingerprint)
        if model is None:
            return
        if vector is None:
            values = None
        else:
            values = model.encode_canonical(vector, canonical.transform)
            if values is None:
                return  # not representable on disk; stays memory-only
        skey = entry_key(
            signature_string(canonical.key),
            delta_on,
            delta_off,
            max_weight,
            model=fingerprint,
        )
        self.persistent.put(skey, values)

    def flush_persistent(self) -> int:
        """Write journaled persistent entries to disk; returns lines written."""
        if self.persistent is None:
            return 0
        return self.persistent.flush()

    # -- analysis tier -------------------------------------------------
    def get_analysis(self, key: tuple):
        found = self._analyses.get(key, _MISSING)
        if found is _MISSING:
            self.stats.analysis_misses += 1
        else:
            self.stats.analysis_hits += 1
        return found

    def put_analysis(self, key: tuple, analysis: CoverAnalysis | None) -> None:
        with self._lock:
            self._analyses[key] = analysis
            if self._journal is not None:
                self._journal.analyses[key] = analysis

    @staticmethod
    def is_miss(value) -> bool:
        return value is _MISSING

    # -- sharing -------------------------------------------------------
    def begin_journal(self) -> None:
        """Start recording new entries (process-pool workers)."""
        self._journal = StoreDelta()

    def take_journal(self) -> StoreDelta:
        """Return the entries recorded since :meth:`begin_journal`."""
        delta = self._journal or StoreDelta()
        self._journal = StoreDelta()
        return delta

    def merge(self, delta: StoreDelta) -> int:
        """Fold a worker's journal into this store; returns entries added.

        Newly merged vectors are also committed to the persistent journal —
        this is how process-pool solves reach the on-disk cache, since
        workers hold read-only cache snapshots.
        """
        added = 0
        with self._lock:
            for key, vector in delta.vectors.items():
                if key not in self._vectors:
                    self._vectors[key] = vector
                    added += 1
                    if self.persistent is not None:
                        self._persistent_put(key, vector)
            for key, analysis in delta.analyses.items():
                if key not in self._analyses:
                    self._analyses[key] = analysis
                    added += 1
        return added

    def export(self) -> StoreDelta:
        """A full snapshot, for seeding worker processes."""
        with self._lock:
            return StoreDelta(dict(self._vectors), dict(self._analyses))

    # -- introspection -------------------------------------------------
    @property
    def num_vectors(self) -> int:
        return len(self._vectors)

    @property
    def num_analyses(self) -> int:
        return len(self._analyses)

    def __len__(self) -> int:
        return len(self._vectors) + len(self._analyses)

    def __repr__(self) -> str:
        persistent = (
            f", persistent={len(self.persistent)}" if self.persistent else ""
        )
        return (
            f"ResultStore(vectors={len(self._vectors)}, "
            f"analyses={len(self._analyses)}, "
            f"hits={self.stats.hits}{persistent})"
        )
