"""The shared result store: canonical-cover keyed caches for the engine.

The store generalizes the old per-run :class:`ThresholdChecker` memo into a
two-tier cache that can be shared across tasks, outputs, whole benchmark
runs, and experiment sweeps:

* **analysis tier** (delta-independent): canonical cover → the positive-unate
  rewrite, its phase substitution, and the minimized complement (the maximal
  false points).  These are the expensive two-level steps of Fig. 6 and do
  not depend on the defect tolerances, so a ψ/δ ablation sweep reuses them
  wholesale — only the ILP is re-solved.  ``None`` records a cover proven
  non-unate (hence non-threshold for *every* tolerance setting).
* **vector tier** (delta-dependent): (canonical cover, δ_on, δ_off, w_max) →
  the solved weight–threshold vector, or ``None`` for ILP-infeasible.

Process-pool workers keep their own store and journal every new entry; the
scheduler merges the journals back into the master store so later tasks,
runs, and sweep points see them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.boolean.cover import Cover
from repro.core.threshold import WeightThresholdVector

_MISSING = object()


@dataclass(frozen=True)
class CoverAnalysis:
    """Delta-independent threshold-check preprocessing of one cover.

    Attributes:
        positive: the positive-unate rewrite of the cover (Section IV).
        flipped: per-variable phase-substitution flags.
        off_cubes: minimized complement of ``positive`` — one cube per
            maximal false point (the OFF-set constraint generators).
    """

    positive: Cover
    flipped: tuple[bool, ...]
    off_cubes: Cover


@dataclass
class StoreStats:
    """Hit/miss counters, per tier."""

    vector_hits: int = 0
    vector_misses: int = 0
    analysis_hits: int = 0
    analysis_misses: int = 0

    @property
    def vector_lookups(self) -> int:
        return self.vector_hits + self.vector_misses

    @property
    def vector_hit_rate(self) -> float:
        lookups = self.vector_lookups
        return self.vector_hits / lookups if lookups else 0.0

    @property
    def analysis_lookups(self) -> int:
        return self.analysis_hits + self.analysis_misses

    @property
    def analysis_hit_rate(self) -> float:
        lookups = self.analysis_lookups
        return self.analysis_hits / lookups if lookups else 0.0

    @property
    def hits(self) -> int:
        return self.vector_hits + self.analysis_hits

    def snapshot(self) -> "StoreStats":
        return StoreStats(
            self.vector_hits,
            self.vector_misses,
            self.analysis_hits,
            self.analysis_misses,
        )

    def since(self, earlier: "StoreStats") -> "StoreStats":
        """Counter deltas accumulated after ``earlier`` was snapshotted."""
        return StoreStats(
            self.vector_hits - earlier.vector_hits,
            self.vector_misses - earlier.vector_misses,
            self.analysis_hits - earlier.analysis_hits,
            self.analysis_misses - earlier.analysis_misses,
        )


@dataclass
class StoreDelta:
    """New entries journaled since :meth:`ResultStore.begin_journal`."""

    vectors: dict[tuple, WeightThresholdVector | None] = field(
        default_factory=dict
    )
    analyses: dict[tuple, CoverAnalysis | None] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.vectors) + len(self.analyses)


class ResultStore:
    """Canonical-cover keyed cache shared across synthesis tasks and sweeps."""

    def __init__(self) -> None:
        self._vectors: dict[tuple, WeightThresholdVector | None] = {}
        self._analyses: dict[tuple, CoverAnalysis | None] = {}
        self.stats = StoreStats()
        self._journal: StoreDelta | None = None

    # -- vector tier ---------------------------------------------------
    def get_vector(self, key: tuple):
        """Cached vector for a (cover, deltas) key, or the miss sentinel."""
        found = self._vectors.get(key, _MISSING)
        if found is _MISSING:
            self.stats.vector_misses += 1
        else:
            self.stats.vector_hits += 1
        return found

    def put_vector(
        self, key: tuple, vector: WeightThresholdVector | None
    ) -> None:
        self._vectors[key] = vector
        if self._journal is not None:
            self._journal.vectors[key] = vector

    # -- analysis tier -------------------------------------------------
    def get_analysis(self, key: tuple):
        found = self._analyses.get(key, _MISSING)
        if found is _MISSING:
            self.stats.analysis_misses += 1
        else:
            self.stats.analysis_hits += 1
        return found

    def put_analysis(self, key: tuple, analysis: CoverAnalysis | None) -> None:
        self._analyses[key] = analysis
        if self._journal is not None:
            self._journal.analyses[key] = analysis

    @staticmethod
    def is_miss(value) -> bool:
        return value is _MISSING

    # -- sharing -------------------------------------------------------
    def begin_journal(self) -> None:
        """Start recording new entries (process-pool workers)."""
        self._journal = StoreDelta()

    def take_journal(self) -> StoreDelta:
        """Return the entries recorded since :meth:`begin_journal`."""
        delta = self._journal or StoreDelta()
        self._journal = StoreDelta()
        return delta

    def merge(self, delta: StoreDelta) -> int:
        """Fold a worker's journal into this store; returns entries added."""
        added = 0
        for key, vector in delta.vectors.items():
            if key not in self._vectors:
                self._vectors[key] = vector
                added += 1
        for key, analysis in delta.analyses.items():
            if key not in self._analyses:
                self._analyses[key] = analysis
                added += 1
        return added

    def export(self) -> StoreDelta:
        """A full snapshot, for seeding worker processes."""
        return StoreDelta(dict(self._vectors), dict(self._analyses))

    # -- introspection -------------------------------------------------
    @property
    def num_vectors(self) -> int:
        return len(self._vectors)

    @property
    def num_analyses(self) -> int:
        return len(self._analyses)

    def __len__(self) -> int:
        return len(self._vectors) + len(self._analyses)

    def __repr__(self) -> str:
        return (
            f"ResultStore(vectors={len(self._vectors)}, "
            f"analyses={len(self._analyses)}, "
            f"hits={self.stats.hits})"
        )
