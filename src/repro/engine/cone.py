"""Per-cone TELS synthesis: one task's collapse → check → split pipeline.

This is the Fig. 3 recursion of the original monolithic synthesizer,
restructured so that one :class:`ConeSynthesizer` handles exactly one cone
rooted at a preserved node, a primary-output node, or a collapse-blocked
node.  Everything the cone creates (split parts, AND-tree internals) lives
in a task-local overlay of the source network under names derived from the
root, so cones never contend and serial/parallel runs emit byte-identical
gates.  References to *other* work-network nodes are not recursed into —
they are recorded as discovered roots for the scheduler to turn into tasks.

Rule-4 tie-breaks use an injected ``random.Random`` seeded with
``"{seed}:{task_id}"``; string seeding hashes through SHA-512, so streams
are reproducible across processes regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.boolean.unate import syntactic_unateness
from repro.core.collapse import collapse_node
from repro.core.identify import CheckStats, ThresholdChecker
from repro.core.splitting import UnateSplit, split_binate, split_k_way
from repro.core.theorems import theorem2_extend
from repro.core.threshold import (
    GateVector,
    ThresholdGate,
    WeightThresholdVector,
)
from repro.engine.events import TaskMetrics, timed
from repro.engine.store import StoreStats
from repro.errors import SynthesisError
from repro.lint.diagnostics import Severity
from repro.lint.runner import lint_gates
from repro.network.network import BooleanNetwork


def task_rng(seed: int, task_id: str) -> random.Random:
    """The task's private RNG stream (deterministic across processes)."""
    return random.Random(f"{seed}:{task_id}")


@dataclass
class ConeOutcome:
    """What one cone run produced (pre-TaskResult, executor-agnostic)."""

    gates: tuple[ThresholdGate, ...]
    discovered: tuple[str, ...]
    metrics: TaskMetrics
    stats_delta: CheckStats
    store_stats_delta: "StoreStats | None" = None


class ConeSynthesizer:
    """Synthesize the cone rooted at one work-network node."""

    def __init__(
        self,
        source: BooleanNetwork,
        root: str,
        options,  # repro.core.synthesis.SynthesisOptions (kept untyped: façade layering)
        checker: ThresholdChecker,
        preserved: frozenset[str],
        deadline=None,  # repro.engine.resilience.Deadline | None
        fault_hook=None,  # chaos: called once per processed node (tests only)
    ):
        self.options = options
        self.root = root
        self.deadline = deadline
        self.fault_hook = fault_hook
        # Shallow copy: functions are immutable and shared; only this task's
        # split parts are added, so the source stays pristine for siblings.
        self.work = source.copy()
        self.rng = task_rng(options.seed, root)
        self.checker = checker
        self.preserved = preserved
        self.metrics = TaskMetrics(task_id=root)
        self.gates: list[ThresholdGate] = []
        self.pending: list[str] = []
        self.done: set[str] = set()
        self.local_nodes: set[str] = set()
        self._discovered: dict[str, None] = {}
        self._prefix = f"{root}$t"
        from repro.core.strategies import make_splitter

        self.splitter = make_splitter(
            options.splitting_strategy, self.checker, options=options
        )

    # ------------------------------------------------------------------
    def run(self) -> ConeOutcome:
        # The checker is shared (serially) or task-private (in a worker);
        # either way its deadline is scoped to this cone run and restored
        # afterwards, so one cone's budget never leaks into the next.
        saved_deadline = self.checker.deadline
        self.checker.deadline = self.deadline
        try:
            return self._run()
        finally:
            self.checker.deadline = saved_deadline

    def _run(self) -> ConeOutcome:
        run_started = time.perf_counter()
        stats_before = self.checker.stats.snapshot()
        store = self.checker.store
        store_before = store.stats.snapshot() if store is not None else None
        budget = 1000 * (self.work.num_nodes + 10)
        self.pending.append(self.root)
        while self.pending:
            name = self.pending.pop()
            if name in self.done or self.work.is_input(name):
                continue
            self.done.add(name)
            if self.metrics.nodes_processed > budget:
                raise SynthesisError(
                    "synthesis is not converging (split/collapse loop?)"
                )
            self.metrics.nodes_processed += 1
            if self.deadline is not None:
                self.deadline.check(f"cone {self.root!r}")
            if self.fault_hook is not None:
                self.fault_hook()
            with timed(self.metrics, "collapse_s"):
                function = collapse_node(
                    self.work,
                    name,
                    self.options.psi,
                    self.preserved - {name},
                    max_cubes=self.options.max_collapse_cubes,
                )
            self._process(name, function)
        if getattr(self.options, "lint", True):
            # Gate-local static audit of everything this cone emitted —
            # structural topology is the scheduler post-pass's job.
            with timed(self.metrics, "lint_s"):
                findings = lint_gates(
                    self.gates,
                    psi=self.options.psi,
                    rules=self.options.lint_rules,
                    gate_model=getattr(self.options, "gate_model", "ltg"),
                )
            self.metrics.lint_violations = sum(
                1 for d in findings if d.severity is not Severity.NOTE
            )
        # Cheap per-cone analysis metrics (always on): the margin slack of
        # every gate this cone emitted, under the run's gate model, and the
        # count of gates that are interval-provable constants.  The full
        # network-wide fixpoint runs in the scheduler post-pass when
        # options.analyze is set.
        with timed(self.metrics, "analysis_s"):
            from repro.analysis.domains import SumInterval
            from repro.analysis.interval import _fires_interval
            from repro.gates import get_model

            model = get_model(getattr(self.options, "gate_model", "ltg"))
            drift_floor = getattr(model, "required_margin", None)
            min_slack: int | None = None
            constants = 0
            for gate in self.gates:
                if 0 < gate.fanin <= 16:
                    lo = sum(min(w, 0) for w in gate.vector.weights)
                    hi = sum(max(w, 0) for w in gate.vector.weights)
                    if _fires_interval(
                        gate, SumInterval(lo, hi)
                    ).is_constant:
                        constants += 1
                    on_margin, off_margin = model.gate_margins(gate)
                    required_on = gate.delta_on
                    required_off = gate.delta_off
                    if drift_floor is not None:
                        floor = drift_floor(gate.vector.weights)
                        required_on = max(required_on, floor)
                        required_off = max(required_off, floor)
                    for margin, required in (
                        (on_margin, required_on),
                        (off_margin, required_off),
                    ):
                        if margin is None:
                            continue
                        slack = margin - required
                        if min_slack is None or slack < min_slack:
                            min_slack = slack
            self.metrics.analysis_min_slack = min_slack
            self.metrics.analysis_constant_gates = constants
        delta = self.checker.stats.since(stats_before)
        self.metrics.wall_s = time.perf_counter() - run_started
        self.metrics.checker_calls = delta.calls
        self.metrics.checker_cache_hits = delta.cache_hits
        self.metrics.multithreshold_hits = delta.multithreshold_hits
        self.metrics.flash_requantized = delta.flash_requantized
        self.metrics.ilp_solved = delta.ilp_solved
        self.metrics.constraints_emitted = delta.constraints_emitted
        self.metrics.fastpath_hits = delta.fastpath_hits
        self.metrics.fastpath_negatives = delta.fastpath_negatives
        self.metrics.fastpath_misses = delta.fastpath_misses
        self.metrics.exact_solves = delta.exact_solves
        self.metrics.scipy_solves = delta.scipy_solves
        self.metrics.exact_wall_s = delta.exact_wall_s
        self.metrics.scipy_wall_s = delta.scipy_wall_s
        self.metrics.presolve_rows_removed = delta.presolve_rows_removed
        self.metrics.solver_timeouts = delta.solver_timeouts
        store_delta: StoreStats | None = None
        if store_before is not None and self.checker.store is not None:
            store_delta = self.checker.store.stats.since(store_before)
            self.metrics.persistent_hits = store_delta.persistent_hits
            self.metrics.persistent_misses = store_delta.persistent_misses
            self.metrics.transformed_hits = store_delta.transformed_hits
            self.metrics.transform_rejects = store_delta.transform_rejects
        return ConeOutcome(
            gates=tuple(self.gates),
            discovered=tuple(self._discovered),
            metrics=self.metrics,
            stats_delta=delta,
            store_stats_delta=store_delta,
        )

    # ------------------------------------------------------------------
    def _check(self, function: BooleanFunction):
        with timed(self.metrics, "check_s"):
            return self.checker.check_function(function)

    def _reference(self, signal: str) -> None:
        """A gate (or alias) reads ``signal``: queue or report its cone."""
        if signal in self.local_nodes:
            if signal not in self.done:
                self.pending.append(signal)
        elif self.work.has_node(signal) and signal != self.root:
            self._discovered.setdefault(signal)

    # ------------------------------------------------------------------
    def _process(self, name: str, function: BooleanFunction) -> None:
        function = function.trimmed()
        if function.nvars == 0:
            self._emit_constant(name, not function.cover.is_zero())
            return
        if not syntactic_unateness(function.cover).is_unate:
            # Models like multi-threshold can realize binate cones (parity,
            # XNOR) as one gate; the LTG never can, so it skips straight to
            # the Fig. 8 split.
            if (
                self.checker.model.supports_binate
                and function.nvars <= self.options.psi
            ):
                vector = self._check(function)
                if vector is not None:
                    self._emit(name, function.variables, vector)
                    return
            self._process_binate(name, function)
            return
        if function.nvars <= self.options.psi:
            vector = self._check(function)
            if vector is not None:
                self._emit(name, function.variables, vector)
                return
        self._process_unate_nonthreshold(name, function)

    def _process_binate(self, name: str, function: BooleanFunction) -> None:
        self.metrics.binate_splits += 1
        with timed(self.metrics, "split_s"):
            parts = split_binate(function, self.options.psi, self.rng)
        if len(parts) < 2:
            raise SynthesisError(
                f"binate split of {name!r} produced {len(parts)} part(s)"
            )
        self._emit_or_of_parts(name, parts)

    def _emit_or_of_parts(
        self, name: str, parts: list[BooleanFunction]
    ) -> None:
        """Emit ``name = part_1 OR ... OR part_k``.

        When the largest part is itself a threshold function and the fanin
        budget allows, Theorem 2 folds it into the root gate directly (the
        remaining parts enter through weight ``T_pos + delta_on`` inputs),
        saving one gate per split — an XNOR costs two gates instead of
        three.  Otherwise the root is a plain ``<1,...,1;1>`` OR.
        """
        if self.options.apply_theorem2:
            largest = max(range(len(parts)), key=lambda i: parts[i].num_cubes)
            main = parts[largest]
            rest = [p for i, p in enumerate(parts) if i != largest]
            if main.nvars + len(rest) <= self.options.psi and rest:
                vector = self._check(main)
                if vector is not None and self._theorem2_weight_ok(vector):
                    children = [self._new_node(p) for p in rest]
                    if len(set(children) | set(main.variables)) == len(
                        children
                    ) + main.nvars:
                        extended = theorem2_extend(
                            vector, len(children), self.options.delta_on
                        )
                        if self.checker.model.admits_vector(extended):
                            self._emit(
                                name,
                                tuple(main.variables) + tuple(children),
                                extended,
                            )
                            self.metrics.theorem2_applications += 1
                            return
                    # A child collapsed onto a signal the main part already
                    # reads (or the extended vector violates the gate
                    # model's device limits); fall through to the plain OR
                    # root below, giving the children their own nodes.
        children = [self._new_node(part) for part in parts]
        if len(set(children)) != len(children):
            # Two parts reduced to the same signal; deduplicate.
            children = list(dict.fromkeys(children))
            if len(children) == 1:
                # The OR collapsed to a single signal: emit a buffer.
                vector = self.checker.model.buffer_vector(
                    self.options.delta_on, self.options.delta_off
                )
                self._emit(name, (children[0],), vector)
                return
        self._emit(
            name,
            tuple(children),
            self.checker.model.or_vector(
                len(children), self.options.delta_on, self.options.delta_off
            ),
        )

    def _process_unate_nonthreshold(
        self, name: str, function: BooleanFunction
    ) -> None:
        if function.num_cubes < 2:
            if function.nvars > self.options.psi:
                # One wide cube: break the AND into a tree of psi-input ANDs.
                self._split_large_cube(name, function)
                return
            # A single unate cube within the fanin bound is always a
            # threshold function, so reaching here means extreme defect
            # tolerances made even an AND infeasible; splitting cannot help.
            raise SynthesisError(
                f"single-cube node {name!r} has no threshold realization "
                f"under delta_on={self.options.delta_on}, "
                f"delta_off={self.options.delta_off}"
            )
        self.metrics.unate_splits += 1
        with timed(self.metrics, "split_s"):
            split = self.splitter(function, self.rng)
            if not self.options.split_on_most_frequent and split.mode == "or":
                split = self._random_or_split(function)
        if split.mode == "and":
            self._emit_and_root(name, split.parts)
            return
        larger = split.parts[split.larger_index]
        smaller = split.parts[1 - split.larger_index]
        if self.options.apply_theorem2 and larger.nvars + 1 <= self.options.psi:
            vector = self._check(larger)
            if vector is not None and self._theorem2_weight_ok(vector):
                child = self._new_node(smaller)
                if child not in larger.variables:
                    extended = theorem2_extend(
                        vector, 1, self.options.delta_on
                    )
                    if self.checker.model.admits_vector(extended):
                        self._emit(
                            name,
                            tuple(larger.variables) + (child,),
                            extended,
                        )
                        self.metrics.theorem2_applications += 1
                        return
        k = min(self.options.psi, function.num_cubes)
        with timed(self.metrics, "split_s"):
            parts = split_k_way(function, k)
        if len(parts) < 2:
            raise SynthesisError(f"k-way split of {name!r} failed")
        self.metrics.kway_splits += 1
        self._emit_or_of_parts(name, parts)

    def _split_large_cube(self, name: str, function: BooleanFunction) -> None:
        """Emit a wide AND cube as a tree of at-most-ψ-input AND gates."""
        cube = function.cover.cubes[0]
        literals = [(function.variables[v], ph) for v, ph in cube.literals()]
        psi = self.options.psi
        groups = [literals[i : i + psi] for i in range(0, len(literals), psi)]
        children: list[str] = []
        for group in groups:
            if len(group) == 1 and group[0][1]:
                children.append(group[0][0])
                self._reference(group[0][0])
                continue
            names = [n for n, _ in group]
            child_func = BooleanFunction(
                Cover(
                    (
                        Cube.from_literals(
                            {i: ph for i, (_, ph) in enumerate(group)},
                            len(group),
                        ),
                    ),
                    len(group),
                ),
                names,
            )
            children.append(self._new_node(child_func))
        if len(children) > psi:
            # Too many chunks for one root: AND the children hierarchically.
            and_vars = tuple(children)
            child_func = BooleanFunction(
                Cover(
                    (
                        Cube.from_literals(
                            {i: True for i in range(len(and_vars))},
                            len(and_vars),
                        ),
                    ),
                    len(and_vars),
                ),
                and_vars,
            )
            self._split_large_cube(name, child_func)
            return
        root_func = BooleanFunction(
            Cover(
                (
                    Cube.from_literals(
                        {i: True for i in range(len(children))}, len(children)
                    ),
                ),
                len(children),
            ),
            tuple(children),
        )
        vector = self._check(root_func)
        if vector is None:
            raise SynthesisError(f"AND tree root of {name!r} not threshold")
        self._emit(name, tuple(children), vector)

    def _theorem2_weight_ok(self, vector) -> bool:
        """Check the Theorem-2 extension weight against the weight bound."""
        if not isinstance(vector, WeightThresholdVector):
            # Theorem 2's closed form extends single-threshold vectors only.
            return False
        if self.options.max_weight is None:
            return True
        new_weight = max(
            vector.to_positive_threshold() + self.options.delta_on, 0
        )
        return new_weight <= self.options.max_weight

    def _random_or_split(self, function: BooleanFunction) -> UnateSplit:
        """Ablation variant of rule 3: split on a random present variable."""
        cover = function.cover.scc()
        present = cover.support_vars()
        self.rng.shuffle(present)
        for var in present:
            bit = 1 << var
            with_var = [c for c in cover.cubes if (c.pos | c.neg) & bit]
            without = [c for c in cover.cubes if not ((c.pos | c.neg) & bit)]
            if with_var and without:
                part_a = BooleanFunction(
                    Cover(with_var, cover.nvars), function.variables
                ).trimmed()
                part_b = BooleanFunction(
                    Cover(without, cover.nvars), function.variables
                ).trimmed()
                return UnateSplit("or", (part_a, part_b))
        half = (cover.num_cubes + 1) // 2
        part_a = BooleanFunction(
            Cover(cover.cubes[:half], cover.nvars), function.variables
        ).trimmed()
        part_b = BooleanFunction(
            Cover(cover.cubes[half:], cover.nvars), function.variables
        ).trimmed()
        return UnateSplit("or", (part_a, part_b))

    def _emit_and_root(
        self, name: str, parts: tuple[BooleanFunction, BooleanFunction]
    ) -> None:
        """Emit ``name = common-cube AND quotient`` (Fig. 7 rule 2)."""
        self.metrics.and_factor_splits += 1
        cube_part, quotient = parts
        if cube_part.num_cubes != 1:
            cube_part, quotient = quotient, cube_part
        child = self._new_node(quotient)
        # Root = AND of the common-cube literals and the quotient node.
        literal_names = list(cube_part.variables)
        variables = tuple(literal_names) + (child,)
        cube = cube_part.cover.cubes[0]
        lits = {var: phase for var, phase in cube.literals()}
        lits[len(literal_names)] = True
        root = BooleanFunction(
            Cover(
                (Cube.from_literals(lits, len(variables)),), len(variables)
            ),
            variables,
        )
        if root.nvars > self.options.psi:
            # The common cube alone exceeds psi: build an AND tree instead.
            self._split_large_cube(name, root)
            return
        vector = self._check(root)
        if vector is None:
            raise SynthesisError(
                f"AND root of {name!r} unexpectedly not threshold"
            )
        self._emit(name, variables, vector)

    # ------------------------------------------------------------------
    def _new_node(self, function: BooleanFunction) -> str:
        """Install a split part as a fresh task-local node and queue it."""
        if function.nvars == 1 and function.num_cubes == 1:
            cube = function.cover.cubes[0]
            if cube.num_literals == 1 and cube.pos:
                # A bare positive literal needs no gate: reference the signal.
                signal = function.variables[0]
                self._reference(signal)
                return signal
        name = self.work.fresh_name(self._prefix)
        self.work.add_node(name, function)
        self.local_nodes.add(name)
        self.pending.append(name)
        return name

    def _emit_constant(self, name: str, value: bool) -> None:
        threshold = 0 if value else 1 + self.options.delta_on
        gate = ThresholdGate(
            name,
            (),
            WeightThresholdVector((), threshold),
            self.options.delta_on,
            self.options.delta_off,
        )
        self.gates.append(gate)
        self.metrics.gates_emitted += 1

    def _emit(
        self,
        name: str,
        inputs: tuple[str, ...],
        vector: GateVector,
    ) -> None:
        if len(inputs) > self.options.psi:
            raise SynthesisError(
                f"gate {name!r} fanin {len(inputs)} exceeds psi="
                f"{self.options.psi}"
            )
        gate = ThresholdGate(
            name,
            tuple(inputs),
            vector,
            self.options.delta_on,
            self.options.delta_off,
        )
        self.gates.append(gate)
        self.metrics.gates_emitted += 1
        for fanin in inputs:
            self._reference(fanin)
