"""Two-level threshold network synthesis (the LSAT-style comparator).

The paper's related work cites Oliveira & Sangiovanni-Vincentelli's LSAT,
which synthesizes *two-level* threshold networks: each output is flattened
to a SOP, partitioned into subcovers that are threshold functions, and the
parts are OR-ed by one more gate — a depth-≤-2 structure (plus an OR tree
when the fanin bound forces one).  Implementing it provides the historical
baseline TELS's multi-level approach is implicitly compared against: on
networks with reconvergent structure the flattened covers explode or stop
being threshold, exactly the limitation that motivated multi-level
synthesis.

``synthesize_two_level`` raises :class:`~repro.errors.SynthesisError` when
an output's flattened cover exceeds ``max_cubes`` — deep circuits are out of
this method's reach by design, which the ablation benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolean import bitset
from repro.boolean.bitset import MAX_TABLE_VARS
from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.boolean.unate import syntactic_unateness
from repro.core.identify import ThresholdChecker
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
    make_or_vector,
)
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork
from repro.network.transform import collapse_network


@dataclass
class TwoLevelOptions:
    """Parameters of the two-level flow."""

    delta_on: int = 0
    delta_off: int = 1
    backend: str = "auto"
    max_fanin: int = 0  # 0 = unbounded gates (classic two-level setting)
    max_cubes: int = 256  # flattening guard


def synthesize_two_level(
    network: BooleanNetwork, options: TwoLevelOptions | None = None
) -> ThresholdNetwork:
    """Flatten each output and realize it as threshold parts + OR root."""
    options = options or TwoLevelOptions()
    checker = ThresholdChecker(
        delta_on=options.delta_on,
        delta_off=options.delta_off,
        backend=options.backend,
    )
    flat = collapse_network(network)
    result = ThresholdNetwork(network.name + "_2lvl")
    for pi in network.inputs:
        result.add_input(pi)
    for out in flat.outputs:
        result.add_output(out)
        if not flat.has_node(out):
            continue  # output aliases a primary input
        function = flat.function(out).trimmed()
        if function.num_cubes > options.max_cubes:
            raise SynthesisError(
                f"output {out!r} flattens to {function.num_cubes} cubes "
                f"(max {options.max_cubes}): out of two-level reach"
            )
        _realize_output(result, out, function, checker, options)
    result.cleanup()
    result.check()
    return result


def _realize_output(
    result: ThresholdNetwork,
    name: str,
    function: BooleanFunction,
    checker: ThresholdChecker,
    options: TwoLevelOptions,
) -> None:
    if function.nvars == 0:
        value = not function.cover.is_zero()
        result.add_gate(
            ThresholdGate(
                name,
                (),
                WeightThresholdVector((), 0 if value else 1),
                options.delta_on,
                options.delta_off,
            )
        )
        return
    parts = _partition_into_threshold_parts(function, checker, options)
    if len(parts) == 1:
        inputs, vector = parts[0]
        result.add_gate(
            ThresholdGate(
                name, inputs, vector, options.delta_on, options.delta_off
            )
        )
        return
    children = []
    for index, (inputs, vector) in enumerate(parts):
        child = f"{name}#p{index}"
        result.add_gate(
            ThresholdGate(
                child, inputs, vector, options.delta_on, options.delta_off
            )
        )
        children.append(child)
    _emit_or_tree(result, name, children, options)


def _partition_into_threshold_parts(
    function: BooleanFunction,
    checker: ThresholdChecker,
    options: TwoLevelOptions,
) -> list[tuple[tuple[str, ...], WeightThresholdVector]]:
    """Greedy cube packing: grow each part while it stays threshold."""
    remaining = list(function.cover.scc().cubes)
    nvars = function.nvars
    parts: list[tuple[tuple[str, ...], WeightThresholdVector]] = []
    while remaining:
        packed = [remaining.pop(0)]
        vector = _try_part(packed, nvars, function, checker, options)
        if vector is None:
            # A single unate cube is always threshold; a binate *cube* is
            # impossible, so failure here means the fanin bound is tiny.
            raise SynthesisError(
                "two-level part infeasible even for a single cube "
                f"(max_fanin={options.max_fanin})"
            )
        best = vector
        packable = nvars <= MAX_TABLE_VARS
        part_table = (
            Cover(packed, nvars).packed_table() if packable else None
        )
        index = 0
        while index < len(remaining):
            cube = remaining[index]
            if part_table is not None:
                # Packed absorption: a cube already covered by the part
                # adds no minterms, so the part's vector keeps working —
                # fold it in without paying for a checker call.
                ctab = bitset.cube_table(cube.pos, cube.neg, nvars)
                if ctab.andnot(part_table).is_zero():
                    packed = packed + [cube]
                    remaining.pop(index)
                    continue
            candidate = packed + [cube]
            cand_vector = _try_part(
                candidate, nvars, function, checker, options
            )
            if cand_vector is not None:
                packed = candidate
                best = cand_vector
                if part_table is not None:
                    part_table = Cover(packed, nvars).packed_table()
                remaining.pop(index)
            else:
                index += 1
        cover = Cover(packed, nvars)
        part_function = BooleanFunction(cover, function.variables).trimmed()
        weights = tuple(
            best.weights[function.index_of(v)]
            for v in part_function.variables
        )
        parts.append(
            (
                part_function.variables,
                WeightThresholdVector(weights, best.threshold),
            )
        )
    return parts


def _try_part(
    cubes,
    nvars: int,
    function: BooleanFunction,
    checker: ThresholdChecker,
    options: TwoLevelOptions,
) -> WeightThresholdVector | None:
    cover = Cover(cubes, nvars)
    if not syntactic_unateness(cover.scc()).is_unate:
        return None
    trimmed = BooleanFunction(cover, function.variables).trimmed()
    if options.max_fanin and trimmed.nvars > options.max_fanin:
        return None
    vector = checker.check(cover)
    return vector


def _emit_or_tree(
    result: ThresholdNetwork,
    name: str,
    children: list[str],
    options: TwoLevelOptions,
) -> None:
    bound = options.max_fanin or len(children)
    layer = children
    counter = 0
    while len(layer) > bound:
        next_layer = []
        for start in range(0, len(layer), bound):
            chunk = layer[start : start + bound]
            if len(chunk) == 1:
                next_layer.append(chunk[0])
                continue
            node = f"{name}#o{counter}"
            counter += 1
            result.add_gate(
                ThresholdGate(
                    node,
                    tuple(chunk),
                    make_or_vector(len(chunk), options.delta_on, options.delta_off),
                    options.delta_on,
                    options.delta_off,
                )
            )
            next_layer.append(node)
        layer = next_layer
    result.add_gate(
        ThresholdGate(
            name,
            tuple(layer),
            make_or_vector(len(layer), options.delta_on, options.delta_off),
            options.delta_on,
            options.delta_off,
        )
    )
