"""The paper's contribution: threshold gates, identification, and TELS.

* :mod:`repro.core.threshold` — linear threshold gates and networks;
* :mod:`repro.core.identify` — ILP-based threshold-function identification
  (Fig. 6 of the paper);
* :mod:`repro.core.theorems` — Theorems 1 and 2 as executable operations;
* :mod:`repro.core.collapse` — node collapsing (Fig. 4);
* :mod:`repro.core.splitting` — unate and binate node splitting (Figs. 7, 8);
* :mod:`repro.core.synthesis` — the recursive TELS synthesis flow (Fig. 3);
* :mod:`repro.core.mapping` — the one-to-one mapping baseline;
* :mod:`repro.core.area` — gate count / level / RTD-area metrics (Eq. 14);
* :mod:`repro.core.defects` — parametric weight-variation Monte Carlo
  (Figs. 11, 12);
* :mod:`repro.core.verify` — functional validation of synthesized networks.
"""

from repro.core.threshold import ThresholdGate, ThresholdNetwork, WeightThresholdVector
from repro.core.identify import ThresholdChecker, is_threshold_function
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.mapping import one_to_one_map
from repro.core.area import network_stats, NetworkStats
from repro.core.verify import verify_threshold_network
from repro.core.analysis import NetworkAnalysis, analyze_network
from repro.core.optimize import peephole_optimize

__all__ = [
    "ThresholdGate",
    "ThresholdNetwork",
    "WeightThresholdVector",
    "ThresholdChecker",
    "is_threshold_function",
    "SynthesisOptions",
    "synthesize",
    "one_to_one_map",
    "network_stats",
    "NetworkStats",
    "verify_threshold_network",
    "NetworkAnalysis",
    "analyze_network",
    "peephole_optimize",
]
