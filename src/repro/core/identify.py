"""ILP-based threshold-function identification (Fig. 6 of the paper).

Given a unate SOP, the checker:

1. rewrites it in positive-unate form (negative-phase variables substituted,
   Section IV);
2. emits one ON-set inequality per cube of the irredundant cover —
   ``sum of cube weights >= T + delta_on``;
3. complements the function (the complement of a positive-unate function is
   negative-unate); each complement cube is a maximal false point and emits
   ``sum of don't-care weights <= T - delta_off``;
4. minimizes ``sum(w) + T`` over non-negative integers (gate area, Eq. 14);
5. maps weights back through the phase substitution: a variable that was
   negative gets weight ``-w`` and the threshold drops by ``w`` (Section IV).

Don't-care positions generate no inequalities — this is the paper's
"redundant constraint elimination" (each dropped constraint is dominated by
the cube's own constraint).  Results are memoized on the canonical cover in
a two-tier :class:`~repro.engine.store.ResultStore` so structurally repeated
nodes — ubiquitous during synthesis — are free, and so the delta-independent
preprocessing (minimization, positive-unate rewrite, complement) survives
across δ-sweep points that must re-solve the ILP.  A store may be injected
to share those results across checkers, tasks, and whole experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from fractions import Fraction
from typing import TYPE_CHECKING

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.boolean.minimize import minimize
from repro.boolean.unate import syntactic_unateness, to_positive_unate
from repro.core.threshold import GateVector, WeightThresholdVector
from repro.errors import CoverError
from repro.ilp.backends import SolveInfo
from repro.ilp.fastpath import FastpathStatus, fastpath_check
from repro.ilp.model import IlpProblem
from repro.ilp.solve import solve_ilp_info

if TYPE_CHECKING:  # imported lazily at runtime to keep core below engine
    from repro.engine.resilience import Deadline
    from repro.engine.store import ResultStore


@dataclass
class CheckStats:
    """Counters for instrumentation and the ILP ablation benchmarks.

    All fields are additive numbers, so deltas (:meth:`since`) and folds
    (:meth:`add`) are derived generically — a new counter only needs a field
    declaration here to travel through the engine's per-task journaling.
    """

    calls: int = 0
    cache_hits: int = 0
    multithreshold_hits: int = 0
    flash_requantized: int = 0
    ilp_solved: int = 0
    ilp_feasible: int = 0
    constraints_emitted: int = 0
    constraints_without_elimination: int = 0
    fastpath_hits: int = 0
    fastpath_negatives: int = 0
    fastpath_misses: int = 0
    presolve_rows_removed: int = 0
    solver_timeouts: int = 0
    exact_solves: int = 0
    scipy_solves: int = 0
    exact_wall_s: float = 0.0
    scipy_wall_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.calls if self.calls else 0.0

    @property
    def fastpath_attempts(self) -> int:
        return self.fastpath_hits + self.fastpath_negatives + self.fastpath_misses

    @property
    def fastpath_hit_rate(self) -> float:
        """Share of fast-path attempts that skipped the ILP entirely."""
        attempts = self.fastpath_attempts
        if not attempts:
            return 0.0
        return (self.fastpath_hits + self.fastpath_negatives) / attempts

    def snapshot(self) -> "CheckStats":
        """An independent copy (for before/after deltas in the engine)."""
        return replace(self)

    def since(self, before: "CheckStats") -> "CheckStats":
        """The counter delta accumulated since ``before`` was snapshotted."""
        return CheckStats(
            **{
                f.name: getattr(self, f.name) - getattr(before, f.name)
                for f in fields(self)
            }
        )

    def add(self, delta: "CheckStats") -> None:
        """Fold another stats record (e.g. a worker's delta) into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(delta, f.name))


@dataclass
class ThresholdChecker:
    """Memoized threshold-function identification engine.

    Attributes:
        delta_on: ON-side defect tolerance (paper default 0).
        delta_off: OFF-side defect tolerance (paper default 1).
        backend: ILP backend passed to :func:`repro.ilp.solve.solve_ilp`.
        minimize_cover: run espresso-lite before checking, which both
            canonicalizes the cover (unique irredundant prime cover for a
            unate function) and exposes semantic unateness that a redundant
            cover can hide.
        max_weight: optional upper bound on every |w_i| (RTD/QCA processes
            realize weights as device areas, so practical weight ranges are
            small); functions needing a larger weight are declared
            non-threshold and split instead.
        use_fastpath: try the Chow-parameter fast path
            (:mod:`repro.ilp.fastpath`) before formulating an ILP.  Only
            attempted on minimized covers (the fast path's weight lower
            bound requires every support variable to be essential).
        use_presolve: run the :mod:`repro.ilp.presolve` reductions inside
            the solver stack (ablation knob).
        gate_model: name of the :class:`~repro.gates.base.GateModel`
            backend deciding representation and feasibility; ``"ltg"`` is
            the paper's single-threshold gate and keeps the historical
            behavior (and cache keys) exactly.
        store: the shared :class:`~repro.engine.store.ResultStore` backing
            the memo; inject one to share results across checkers, parallel
            tasks, and sweep points.  A private store is created on demand.
        deadline: optional :class:`~repro.engine.resilience.Deadline`;
            when set, every :meth:`check` first verifies the budget (raising
            :class:`~repro.errors.DeadlineExceeded` cooperatively) and the
            remaining time is forwarded to the solver stack as its
            wall-clock limit, so one slow ILP cannot blow through a
            per-cone budget unnoticed.
    """

    delta_on: int = 0
    delta_off: int = 1
    backend: str = "auto"
    minimize_cover: bool = True
    max_weight: int | None = None
    use_fastpath: bool = True
    use_presolve: bool = True
    gate_model: str = "ltg"
    stats: CheckStats = field(default_factory=CheckStats)
    store: "ResultStore | None" = field(default=None, repr=False)
    deadline: "Deadline | None" = field(default=None, repr=False)
    _model: object = field(default=None, init=False, repr=False, compare=False)

    @property
    def model(self):
        """The resolved :class:`~repro.gates.base.GateModel` backend."""
        if self._model is None:
            from repro.gates import get_model

            self._model = get_model(self.gate_model)
        return self._model

    @classmethod
    def from_options(
        cls, options, store: "ResultStore | None" = None
    ) -> "ThresholdChecker":
        """Build a checker from :class:`~repro.core.synthesis.SynthesisOptions`."""
        return cls(
            delta_on=options.delta_on,
            delta_off=options.delta_off,
            backend=options.backend,
            max_weight=options.max_weight,
            use_fastpath=getattr(options, "use_fastpath", True),
            use_presolve=getattr(options, "use_presolve", True),
            gate_model=getattr(options, "gate_model", "ltg"),
            store=store,
        )

    def _ensure_store(self) -> "ResultStore":
        if self.store is None:
            from repro.engine.store import ResultStore

            self.store = ResultStore()
        return self.store

    def check_function(self, function: BooleanFunction) -> GateVector | None:
        """Weights aligned to ``function.variables`` order, or None.

        Variables outside the function's support get weight 0.
        """
        vector = self.check(function.cover)
        return vector

    def check(self, cover: Cover) -> GateVector | None:
        """Return a gate vector realizing ``cover``, or None.

        None means the configured gate model cannot realize the function as
        a single gate (for ``ltg``: binate, or the ILP is infeasible).
        Weights are positionally aligned with the cover's variables; absent
        variables get weight 0.
        """
        if self.deadline is not None:
            self.deadline.check("threshold check")
        self.stats.calls += 1
        store = self._ensure_store()
        cover = cover.scc()
        canonical = cover.canonical_key()
        model = self.model
        key = model.store_key(
            canonical, self.delta_on, self.delta_off, self.max_weight
        )
        found = store.get_vector(key)
        if not store.is_miss(found):
            self.stats.cache_hits += 1
            return found
        result = model.check_cover(self, cover, canonical)
        store.put_vector(key, result)
        return result

    def solve_ltg(
        self,
        cover: Cover,
        canonical: tuple,
        *,
        delta_on: int | None = None,
        delta_off: int | None = None,
        max_weight: int | None = None,
    ) -> WeightThresholdVector | None:
        """The shared single-threshold pipeline, for gate-model backends.

        Runs constants → analysis → Chow fast path → Fig. 6 ILP, with the
        tolerances and weight box optionally overridden for this one solve
        (the flash model's drift boosting).  Overrides are applied by
        temporary field mutation so the whole downstream chain — fast path
        bounds, ILP constraints, warm starts — sees them consistently.
        """
        if delta_on is None and delta_off is None and max_weight is None:
            return self._check_uncached(cover, canonical)
        saved = (self.delta_on, self.delta_off, self.max_weight)
        if delta_on is not None:
            self.delta_on = delta_on
        if delta_off is not None:
            self.delta_off = delta_off
        if max_weight is not None:
            self.max_weight = max_weight
        try:
            return self._check_uncached(cover, canonical)
        finally:
            self.delta_on, self.delta_off, self.max_weight = saved

    def _analysis(self, cover: Cover, canonical: tuple):
        """Delta-independent preprocessing, via the store's analysis tier."""
        from repro.engine.store import CoverAnalysis

        store = self._ensure_store()
        key = (canonical, self.minimize_cover)
        found = store.get_analysis(key)
        if not store.is_miss(found):
            return found
        if self.minimize_cover and cover.nvars <= 12:
            cover = minimize(cover)
        analysis: CoverAnalysis | None = None
        if syntactic_unateness(cover).is_unate:
            positive, flipped = to_positive_unate(cover)
            off_cubes = minimize(positive.complement())
            if not any(c.pos for c in off_cubes.cubes):
                analysis = CoverAnalysis(positive, tuple(flipped), off_cubes)
            # else: the complement of a positive-unate function is
            # negative-unate; a positive literal here means the cover was
            # only syntactically unate, not semantically, so it cannot be a
            # threshold function under any tolerance setting.
        store.put_analysis(key, analysis)
        return analysis

    def _check_uncached(
        self, cover: Cover, canonical: tuple
    ) -> WeightThresholdVector | None:
        nvars = cover.nvars
        # Constants: vacuous threshold gates.
        if cover.is_zero():
            return WeightThresholdVector((0,) * nvars, self.delta_on + 1)
        if cover.is_tautology():
            return WeightThresholdVector((0,) * nvars, -self.delta_on if self.delta_on else 0)
        analysis = self._analysis(cover, canonical)
        if analysis is None:
            return None
        positive, flipped = analysis.positive, analysis.flipped
        off_cubes = analysis.off_cubes
        warm_start: tuple[Fraction, ...] | None = None
        # The fast path's weight lower bound needs every support variable
        # essential, which only the minimized irredundant prime cover
        # guarantees — same gate as the minimization in _analysis.
        if self.use_fastpath and self.minimize_cover and cover.nvars <= 12:
            fast = fastpath_check(
                positive,
                off_cubes,
                delta_on=self.delta_on,
                delta_off=self.delta_off,
                max_weight=self.max_weight,
            )
            if fast.status is FastpathStatus.HIT:
                self.stats.fastpath_hits += 1
                return self._vector_from_solution(
                    nvars, positive.support_vars(), flipped, list(fast.values)
                )
            if fast.status is FastpathStatus.NOT_THRESHOLD:
                self.stats.fastpath_negatives += 1
                return None
            self.stats.fastpath_misses += 1
            if fast.candidate is not None:
                warm_start = tuple(Fraction(v) for v in fast.candidate)
        problem, support = self._formulate(positive, off_cubes)
        self.stats.ilp_solved += 1
        timeout_s = (
            self.deadline.remaining() if self.deadline is not None else None
        )
        result, info = solve_ilp_info(
            problem,
            backend=self.backend,
            presolve=self.use_presolve,
            warm_start=warm_start,
            timeout_s=timeout_s,
        )
        self._record_solve(info)
        if not result.is_optimal:
            return None
        self.stats.ilp_feasible += 1
        return self._vector_from_solution(
            nvars, support, flipped, result.int_values()
        )

    def _record_solve(self, info: SolveInfo) -> None:
        """Fold one dispatch-layer SolveInfo into the counters."""
        self.stats.exact_solves += info.solves_for("exact")
        self.stats.scipy_solves += info.solves_for("scipy")
        self.stats.exact_wall_s += info.wall_for("exact")
        self.stats.scipy_wall_s += info.wall_for("scipy")
        if info.presolve is not None:
            self.stats.presolve_rows_removed += info.presolve.rows_removed
        if info.timed_out:
            self.stats.solver_timeouts += 1

    def _vector_from_solution(
        self,
        nvars: int,
        support: list[int],
        flipped: tuple[bool, ...],
        solution: list[int],
    ) -> WeightThresholdVector:
        """Splice an ILP/fast-path solution (support slots + T) into a vector."""
        weights = [0] * nvars
        threshold = solution[-1]
        for slot, var in enumerate(support):
            weights[var] = solution[slot]
        # Map back through the phase substitution (Section IV).
        for var in range(nvars):
            if flipped[var] and weights[var]:
                threshold -= weights[var]
                weights[var] = -weights[var]
        return WeightThresholdVector(tuple(weights), threshold)

    def _formulate(
        self, positive: Cover, off_cubes: Cover
    ) -> tuple[IlpProblem, list[int]]:
        """Build the Fig. 6 ILP for a positive-unate cover."""
        support = positive.support_vars()
        slot = {var: i for i, var in enumerate(support)}
        n = len(support)
        problem = IlpProblem(
            num_vars=n + 1,
            objective=[1] * (n + 1),
            names=[f"w{v}" for v in support] + ["T"],
        )
        # ON-set: each cube's literal weights must reach T + delta_on.
        for cube in positive.cubes:
            coeffs = [0] * (n + 1)
            for var, phase in cube.literals():
                if not phase:
                    raise CoverError("positive-unate cover has negative literal")
                coeffs[slot[var]] = 1
            coeffs[n] = -1
            problem.add_constraint(coeffs, ">=", self.delta_on)
            self.stats.constraints_emitted += 1
            free = n - cube.num_literals
            self.stats.constraints_without_elimination += 1 << free
        # OFF-set: for each maximal false point (complement cube), the sum of
        # the *unconstrained* (don't care) weights must stay below T.
        for cube in off_cubes.cubes:
            coeffs = [0] * (n + 1)
            for var in support:
                bit = 1 << var
                if not (cube.neg & bit):
                    coeffs[slot[var]] = 1
            coeffs[n] = -1
            problem.add_constraint(coeffs, "<=", -self.delta_off)
            self.stats.constraints_emitted += 1
            fixed = sum(1 for var in support if cube.neg & (1 << var))
            self.stats.constraints_without_elimination += 1 << fixed
        if self.max_weight is not None:
            for slot_index in range(n):
                coeffs = [0] * (n + 1)
                coeffs[slot_index] = 1
                problem.add_constraint(coeffs, "<=", self.max_weight)
            # Implied bound tightening: every ON cube gives
            # T <= sum(cube weights) - delta_on <= |cube| * max_weight -
            # delta_on, so the smallest cube caps T.  Redundant for the
            # feasible set, but it shrinks the branch & bound's T range.
            if positive.cubes:
                min_lits = min(c.num_literals for c in positive.cubes)
                coeffs = [0] * (n + 1)
                coeffs[n] = 1
                problem.add_constraint(
                    coeffs, "<=", min_lits * self.max_weight - self.delta_on
                )
        return problem, support

    def formulate_only(self, cover: Cover) -> IlpProblem | None:
        """Expose the ILP for a unate cover (diagnostics / ablations)."""
        cover = cover.scc()
        if cover.is_zero() or cover.is_tautology():
            return None
        if self.minimize_cover and cover.nvars <= 12:
            cover = minimize(cover)
        if not syntactic_unateness(cover).is_unate:
            return None
        positive, _ = to_positive_unate(cover)
        off_cubes = minimize(positive.complement())
        problem, _ = self._formulate(positive, off_cubes)
        return problem

    def cache_size(self) -> int:
        return self._ensure_store().num_vectors


def is_threshold_function(
    function: BooleanFunction | Cover,
    delta_on: int = 0,
    delta_off: int = 1,
    backend: str = "auto",
    max_weight: int | None = None,
    store: "ResultStore | None" = None,
    cache_dir: str | None = None,
    deadline_s: float | None = None,
    gate_model: str = "ltg",
) -> GateVector | None:
    """One-shot convenience wrapper around :class:`ThresholdChecker`.

    ``max_weight`` and ``store`` mirror the engine-configured checker, so a
    one-shot call can enforce the device weight bound and share (or warm) a
    result store across calls.  ``cache_dir`` (ignored when ``store`` is
    given) layers the persistent NP-canonical cache under a fresh store and
    flushes any new solve back to disk before returning.  ``deadline_s``
    bounds the check's wall clock; a blown budget raises
    :class:`~repro.errors.DeadlineExceeded`.
    """
    flush_after = False
    if store is None and cache_dir is not None:
        from repro.engine.store import ResultStore

        store = ResultStore.with_cache_dir(cache_dir)
        flush_after = True
    deadline = None
    if deadline_s is not None:
        from repro.engine.resilience import Deadline

        deadline = Deadline.after(deadline_s)
    checker = ThresholdChecker(
        delta_on=delta_on,
        delta_off=delta_off,
        backend=backend,
        max_weight=max_weight,
        gate_model=gate_model,
        store=store,
        deadline=deadline,
    )
    if isinstance(function, BooleanFunction):
        result = checker.check_function(function)
    else:
        result = checker.check(function)
    if flush_after:
        store.flush_persistent()
    return result
