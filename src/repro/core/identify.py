"""ILP-based threshold-function identification (Fig. 6 of the paper).

Given a unate SOP, the checker:

1. rewrites it in positive-unate form (negative-phase variables substituted,
   Section IV);
2. emits one ON-set inequality per cube of the irredundant cover —
   ``sum of cube weights >= T + delta_on``;
3. complements the function (the complement of a positive-unate function is
   negative-unate); each complement cube is a maximal false point and emits
   ``sum of don't-care weights <= T - delta_off``;
4. minimizes ``sum(w) + T`` over non-negative integers (gate area, Eq. 14);
5. maps weights back through the phase substitution: a variable that was
   negative gets weight ``-w`` and the threshold drops by ``w`` (Section IV).

Don't-care positions generate no inequalities — this is the paper's
"redundant constraint elimination" (each dropped constraint is dominated by
the cube's own constraint).  Results are memoized on the canonical cover in
a two-tier :class:`~repro.engine.store.ResultStore` so structurally repeated
nodes — ubiquitous during synthesis — are free, and so the delta-independent
preprocessing (minimization, positive-unate rewrite, complement) survives
across δ-sweep points that must re-solve the ILP.  A store may be injected
to share those results across checkers, tasks, and whole experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.boolean.minimize import minimize
from repro.boolean.unate import Phase, syntactic_unateness, to_positive_unate
from repro.core.threshold import WeightThresholdVector
from repro.errors import CoverError
from repro.ilp.model import IlpProblem
from repro.ilp.solve import solve_ilp

if TYPE_CHECKING:  # imported lazily at runtime to keep core below engine
    from repro.engine.store import ResultStore


@dataclass
class CheckStats:
    """Counters for instrumentation and the ILP ablation benchmarks."""

    calls: int = 0
    cache_hits: int = 0
    ilp_solved: int = 0
    ilp_feasible: int = 0
    constraints_emitted: int = 0
    constraints_without_elimination: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.calls if self.calls else 0.0

    def snapshot(self) -> "CheckStats":
        """An independent copy (for before/after deltas in the engine)."""
        return CheckStats(
            calls=self.calls,
            cache_hits=self.cache_hits,
            ilp_solved=self.ilp_solved,
            ilp_feasible=self.ilp_feasible,
            constraints_emitted=self.constraints_emitted,
            constraints_without_elimination=(
                self.constraints_without_elimination
            ),
        )


@dataclass
class ThresholdChecker:
    """Memoized threshold-function identification engine.

    Attributes:
        delta_on: ON-side defect tolerance (paper default 0).
        delta_off: OFF-side defect tolerance (paper default 1).
        backend: ILP backend passed to :func:`repro.ilp.solve.solve_ilp`.
        minimize_cover: run espresso-lite before checking, which both
            canonicalizes the cover (unique irredundant prime cover for a
            unate function) and exposes semantic unateness that a redundant
            cover can hide.
        max_weight: optional upper bound on every |w_i| (RTD/QCA processes
            realize weights as device areas, so practical weight ranges are
            small); functions needing a larger weight are declared
            non-threshold and split instead.
        store: the shared :class:`~repro.engine.store.ResultStore` backing
            the memo; inject one to share results across checkers, parallel
            tasks, and sweep points.  A private store is created on demand.
    """

    delta_on: int = 0
    delta_off: int = 1
    backend: str = "auto"
    minimize_cover: bool = True
    max_weight: int | None = None
    stats: CheckStats = field(default_factory=CheckStats)
    store: "ResultStore | None" = field(default=None, repr=False)

    def _ensure_store(self) -> "ResultStore":
        if self.store is None:
            from repro.engine.store import ResultStore

            self.store = ResultStore()
        return self.store

    def check_function(
        self, function: BooleanFunction
    ) -> WeightThresholdVector | None:
        """Weights aligned to ``function.variables`` order, or None.

        Variables outside the function's support get weight 0.
        """
        vector = self.check(function.cover)
        return vector

    def check(self, cover: Cover) -> WeightThresholdVector | None:
        """Return a weight–threshold vector for ``cover`` or None.

        None means the function is not a threshold function (binate, or the
        ILP is infeasible).  Weights are positionally aligned with the
        cover's variables; absent variables get weight 0.
        """
        self.stats.calls += 1
        store = self._ensure_store()
        cover = cover.scc()
        canonical = cover.canonical_key()
        key = (canonical, self.delta_on, self.delta_off, self.max_weight)
        found = store.get_vector(key)
        if not store.is_miss(found):
            self.stats.cache_hits += 1
            return found
        result = self._check_uncached(cover, canonical)
        store.put_vector(key, result)
        return result

    def _analysis(self, cover: Cover, canonical: tuple):
        """Delta-independent preprocessing, via the store's analysis tier."""
        from repro.engine.store import CoverAnalysis

        store = self._ensure_store()
        key = (canonical, self.minimize_cover)
        found = store.get_analysis(key)
        if not store.is_miss(found):
            return found
        if self.minimize_cover and cover.nvars <= 12:
            cover = minimize(cover)
        analysis: CoverAnalysis | None = None
        if syntactic_unateness(cover).is_unate:
            positive, flipped = to_positive_unate(cover)
            off_cubes = minimize(positive.complement())
            if not any(c.pos for c in off_cubes.cubes):
                analysis = CoverAnalysis(positive, tuple(flipped), off_cubes)
            # else: the complement of a positive-unate function is
            # negative-unate; a positive literal here means the cover was
            # only syntactically unate, not semantically, so it cannot be a
            # threshold function under any tolerance setting.
        store.put_analysis(key, analysis)
        return analysis

    def _check_uncached(
        self, cover: Cover, canonical: tuple
    ) -> WeightThresholdVector | None:
        nvars = cover.nvars
        # Constants: vacuous threshold gates.
        if cover.is_zero():
            return WeightThresholdVector((0,) * nvars, self.delta_on + 1)
        if cover.is_tautology():
            return WeightThresholdVector((0,) * nvars, -self.delta_on if self.delta_on else 0)
        analysis = self._analysis(cover, canonical)
        if analysis is None:
            return None
        positive, flipped = analysis.positive, analysis.flipped
        off_cubes = analysis.off_cubes
        problem, support = self._formulate(positive, off_cubes)
        self.stats.ilp_solved += 1
        result = solve_ilp(problem, backend=self.backend)
        if not result.is_optimal:
            return None
        self.stats.ilp_feasible += 1
        solution = result.int_values()
        weights = [0] * nvars
        threshold = solution[-1]
        for slot, var in enumerate(support):
            weights[var] = solution[slot]
        # Map back through the phase substitution (Section IV).
        for var in range(nvars):
            if flipped[var] and weights[var]:
                threshold -= weights[var]
                weights[var] = -weights[var]
        return WeightThresholdVector(tuple(weights), threshold)

    def _formulate(
        self, positive: Cover, off_cubes: Cover
    ) -> tuple[IlpProblem, list[int]]:
        """Build the Fig. 6 ILP for a positive-unate cover."""
        support = positive.support_vars()
        slot = {var: i for i, var in enumerate(support)}
        n = len(support)
        problem = IlpProblem(
            num_vars=n + 1,
            objective=[1] * (n + 1),
            names=[f"w{v}" for v in support] + ["T"],
        )
        # ON-set: each cube's literal weights must reach T + delta_on.
        for cube in positive.cubes:
            coeffs = [0] * (n + 1)
            for var, phase in cube.literals():
                if not phase:
                    raise CoverError("positive-unate cover has negative literal")
                coeffs[slot[var]] = 1
            coeffs[n] = -1
            problem.add_constraint(coeffs, ">=", self.delta_on)
            self.stats.constraints_emitted += 1
            free = n - cube.num_literals
            self.stats.constraints_without_elimination += 1 << free
        # OFF-set: for each maximal false point (complement cube), the sum of
        # the *unconstrained* (don't care) weights must stay below T.
        for cube in off_cubes.cubes:
            coeffs = [0] * (n + 1)
            for var in support:
                bit = 1 << var
                if not (cube.neg & bit):
                    coeffs[slot[var]] = 1
            coeffs[n] = -1
            problem.add_constraint(coeffs, "<=", -self.delta_off)
            self.stats.constraints_emitted += 1
            fixed = sum(1 for var in support if cube.neg & (1 << var))
            self.stats.constraints_without_elimination += 1 << fixed
        if self.max_weight is not None:
            for slot_index in range(n):
                coeffs = [0] * (n + 1)
                coeffs[slot_index] = 1
                problem.add_constraint(coeffs, "<=", self.max_weight)
        return problem, support

    def formulate_only(self, cover: Cover) -> IlpProblem | None:
        """Expose the ILP for a unate cover (diagnostics / ablations)."""
        cover = cover.scc()
        if cover.is_zero() or cover.is_tautology():
            return None
        if self.minimize_cover and cover.nvars <= 12:
            cover = minimize(cover)
        if not syntactic_unateness(cover).is_unate:
            return None
        positive, _ = to_positive_unate(cover)
        off_cubes = minimize(positive.complement())
        problem, _ = self._formulate(positive, off_cubes)
        return problem

    def cache_size(self) -> int:
        return self._ensure_store().num_vectors


def is_threshold_function(
    function: BooleanFunction | Cover,
    delta_on: int = 0,
    delta_off: int = 1,
    backend: str = "auto",
) -> WeightThresholdVector | None:
    """One-shot convenience wrapper around :class:`ThresholdChecker`."""
    checker = ThresholdChecker(
        delta_on=delta_on, delta_off=delta_off, backend=backend
    )
    if isinstance(function, BooleanFunction):
        return checker.check_function(function)
    return checker.check(function)
