"""Parametric weight-variation Monte Carlo (Section VI-C, Figs. 11-12).

The disturbed weight is ``w' = w + v * U(-0.5, 0.5)`` where ``v`` is the
variation multiplier.  A circuit *fails* when any simulated input vector
produces a wrong output value under the disturbed weights; the suite failure
rate is the fraction of benchmark circuits that fail (the paper's Fig. 11
definition).  Thresholds are left undisturbed, matching the paper's "
variations in the input weights".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.threshold import ThresholdNetwork
from repro.core.verify import _pi_matrix_from_vectors
from repro.network.network import BooleanNetwork
from repro.network.simulate import (
    EXHAUSTIVE_LIMIT,
    exhaustive_pi_vectors,
    random_pi_vectors,
    simulate_vectors,
)


@dataclass(frozen=True)
class DefectTrialResult:
    """Outcome of one disturbed-weight simulation of one circuit."""

    failed: bool
    wrong_vectors: int
    total_vectors: int


def _noise_generator(
    rng: random.Random | np.random.Generator | int,
) -> np.random.Generator:
    """Adapt any accepted RNG flavour to a NumPy generator.

    A ``random.Random`` is bridged by drawing 64 bits from it, so repeated
    calls against one Python RNG keep producing fresh (but reproducible)
    instances — the behaviour the per-trial loops rely on.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, random.Random):
        return np.random.default_rng(rng.getrandbits(64))
    return np.random.default_rng(rng)


def perturb_weights(
    network: ThresholdNetwork,
    v: float,
    rng: random.Random | np.random.Generator | int,
) -> dict[str, np.ndarray]:
    """One disturbed-weight instance: per-gate additive noise arrays.

    The noise for every weight of the network is drawn in one vectorized
    ``Generator.random`` call and sliced per gate, replacing the former
    per-weight Python loop; suites with thousands of gates perturb in
    microseconds.  The raw sample stream differs from the historical
    per-call ``random.Random`` implementation — only the distribution
    (``v * U(-0.5, 0.5)`` per weight) is contractual, which the
    compatibility tests pin statistically.
    """
    gen = _noise_generator(rng)
    gates = list(network.gates())
    counts = [len(gate.inputs) for gate in gates]
    sample = v * (gen.random(sum(counts)) - 0.5)
    noise: dict[str, np.ndarray] = {}
    offset = 0
    for gate, count in zip(gates, counts):
        noise[gate.name] = sample[offset : offset + count]
        offset += count
    return noise


def run_defect_trial(
    source: BooleanNetwork,
    synthesized: ThresholdNetwork,
    v: float,
    rng: random.Random,
    vectors: int = 1024,
) -> DefectTrialResult:
    """Disturb every weight once and simulate the whole vector set."""
    if len(source.inputs) <= EXHAUSTIVE_LIMIT:
        vecs, width = exhaustive_pi_vectors(source)
    else:
        width = vectors
        vecs = random_pi_vectors(source, width, rng)
    golden = simulate_vectors(source, vecs, width)
    matrix = _pi_matrix_from_vectors(source, vecs)
    noise = perturb_weights(synthesized, v, rng)
    outputs = synthesized.simulate_matrix(matrix, weight_noise=noise)
    wrong = 0
    for name in source.outputs:
        want = golden[name].to_bool_array()
        wrong += int(np.count_nonzero(outputs[name] != want))
    return DefectTrialResult(wrong > 0, wrong, width * len(source.outputs))


def circuit_failure_probability(
    source: BooleanNetwork,
    synthesized: ThresholdNetwork,
    v: float,
    trials: int = 20,
    seed: int = 0,
    vectors: int = 1024,
) -> float:
    """Fraction of disturbed-weight instances under which the circuit fails."""
    rng = random.Random(seed)
    failures = sum(
        run_defect_trial(source, synthesized, v, rng, vectors).failed
        for _ in range(trials)
    )
    return failures / trials


def suite_failure_rate(
    circuits: list[tuple[BooleanNetwork, ThresholdNetwork]],
    v: float,
    trials: int = 5,
    seed: int = 0,
    vectors: int = 1024,
) -> float:
    """Paper's failure-rate metric: % of benchmarks that fail simulation.

    Each benchmark is disturbed ``trials`` times; it counts as failed when
    any disturbed instance produces any wrong output vector.
    """
    failed = 0
    for index, (source, synthesized) in enumerate(circuits):
        rng = random.Random(seed * 7919 + index)
        if any(
            run_defect_trial(source, synthesized, v, rng, vectors).failed
            for _ in range(trials)
        ):
            failed += 1
    if not circuits:
        return 0.0
    return 100.0 * failed / len(circuits)
