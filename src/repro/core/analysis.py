"""Structural analysis of threshold networks.

Beyond the Table-I metrics, a designer targeting RTD/QCA wants to know the
distributions that determine manufacturability: fanin per gate, weight
magnitudes, thresholds, and the switching margins that predict robustness
(Section VI-C's failure behaviour correlates directly with the ON-side
margin).  ``analyze_network`` gathers these; ``format_analysis`` renders the
report the ``tels analyze`` command prints.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.threshold import ThresholdNetwork


@dataclass
class NetworkAnalysis:
    """Aggregate structural statistics of a threshold network."""

    gates: int
    levels: int
    area: int
    max_fanin: int
    fanin_histogram: dict[int, int] = field(default_factory=dict)
    weight_histogram: dict[int, int] = field(default_factory=dict)
    threshold_histogram: dict[int, int] = field(default_factory=dict)
    max_abs_weight: int = 0
    negative_weight_gates: int = 0
    min_on_margin: int | None = None
    min_off_margin: int | None = None
    critical_path: list[str] = field(default_factory=list)

    @property
    def mean_fanin(self) -> float:
        total = sum(k * v for k, v in self.fanin_histogram.items())
        return total / self.gates if self.gates else 0.0


def analyze_network(network: ThresholdNetwork) -> NetworkAnalysis:
    """Compute structural statistics (margins are exact, per gate)."""
    fanins: Counter[int] = Counter()
    weights: Counter[int] = Counter()
    thresholds: Counter[int] = Counter()
    max_abs = 0
    negative_gates = 0
    min_on: int | None = None
    min_off: int | None = None
    for gate in network.gates():
        fanins[gate.fanin] += 1
        thresholds[gate.threshold] += 1
        if any(w < 0 for w in gate.weights):
            negative_gates += 1
        for w in gate.weights:
            weights[w] += 1
            max_abs = max(max_abs, abs(w))
        on, off = gate.margins()
        if on is not None:
            min_on = on if min_on is None else min(min_on, on)
        if off is not None:
            min_off = off if min_off is None else min(min_off, off)
    return NetworkAnalysis(
        gates=network.num_gates,
        levels=network.depth(),
        area=network.area(),
        max_fanin=network.max_fanin(),
        fanin_histogram=dict(sorted(fanins.items())),
        weight_histogram=dict(sorted(weights.items())),
        threshold_histogram=dict(sorted(thresholds.items())),
        max_abs_weight=max_abs,
        negative_weight_gates=negative_gates,
        min_on_margin=min_on,
        min_off_margin=min_off,
        critical_path=_critical_path(network),
    )


def _critical_path(network: ThresholdNetwork) -> list[str]:
    """One longest PI-to-PO gate path (by level)."""
    levels = network.levels()
    if not network.outputs:
        return []
    end = max(network.outputs, key=lambda o: levels.get(o, 0))
    path: list[str] = []
    current = end
    while network.has_gate(current):
        path.append(current)
        gate = network.gate(current)
        if not gate.inputs:
            break
        current = max(gate.inputs, key=lambda s: levels.get(s, 0))
    path.reverse()
    return path


def format_analysis(analysis: NetworkAnalysis) -> str:
    """Render an analysis as the multi-section text report."""
    lines = [
        f"gates: {analysis.gates}  levels: {analysis.levels}  "
        f"area: {analysis.area}",
        f"fanin: max {analysis.max_fanin}, mean {analysis.mean_fanin:.2f}",
        "fanin histogram:     "
        + "  ".join(f"{k}:{v}" for k, v in analysis.fanin_histogram.items()),
        "weight histogram:    "
        + "  ".join(f"{k:+d}:{v}" for k, v in analysis.weight_histogram.items()),
        "threshold histogram: "
        + "  ".join(
            f"{k}:{v}" for k, v in analysis.threshold_histogram.items()
        ),
        f"max |weight|: {analysis.max_abs_weight}   gates with negative "
        f"weights: {analysis.negative_weight_gates}",
        f"tightest margins: ON {analysis.min_on_margin}, "
        f"OFF {analysis.min_off_margin}",
        "critical path: " + " -> ".join(analysis.critical_path),
    ]
    return "\n".join(lines)
