"""Gate-count / level / area metrics (Table I columns, Eq. 14).

Works on both :class:`ThresholdNetwork` (gates, levels, RTD area) and
:class:`BooleanNetwork` (gates and levels of the decomposed Boolean
baseline, for sanity comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.threshold import ThresholdNetwork
from repro.network.network import BooleanNetwork


@dataclass(frozen=True)
class NetworkStats:
    """The three Table-I columns for one network."""

    gates: int
    levels: int
    area: int

    def __str__(self) -> str:
        return f"gates={self.gates} levels={self.levels} area={self.area}"


def network_stats(network: ThresholdNetwork) -> NetworkStats:
    """Gate count, level count, and Eq.-(14) RTD area of a threshold network."""
    return NetworkStats(
        gates=network.num_gates,
        levels=network.depth(),
        area=network.area(),
    )


def boolean_stats(network: BooleanNetwork) -> NetworkStats:
    """Gate count and levels of a Boolean network (area = literal count)."""
    return NetworkStats(
        gates=network.num_nodes,
        levels=network.depth(),
        area=network.num_literals(),
    )


def reduction(before: int, after: int) -> float:
    """Percentage reduction from ``before`` to ``after`` (positive = better)."""
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before
