"""RTD/MOBILE technology model (the paper's Fig. 1 target device).

A monostable-bistable logic element (MOBILE) realizes an LTG with two
serially connected RTDs; each input contributes an RTD/HFET branch whose
peak current is proportional to its weight — positive weights on the load
side, negative weights on the driver side — and the threshold is set by the
relative areas of the two clocked RTDs.  MOBILEs are *clocked*: each logic
level evaluates in one clock phase, so network depth is the pipeline's
phase count.

This module turns a synthesized :class:`ThresholdNetwork` into the numbers
an RTD designer asks about: device counts, total RTD area (Eq. 14), clock
phases, and per-gate branch composition.  It is a costing model, not a
SPICE view — consistent with the paper's use of Eq. (14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.threshold import ThresholdGate, ThresholdNetwork


@dataclass(frozen=True)
class MobileGateCost:
    """Device composition of one MOBILE gate."""

    name: str
    positive_branches: int
    negative_branches: int
    rtd_area: int  # sum of |w| plus |T| in unit-RTD areas

    @property
    def input_rtds(self) -> int:
        return self.positive_branches + self.negative_branches

    @property
    def total_devices(self) -> int:
        # Input branches (one RTD + one HFET each) plus the two clocked
        # load/driver RTDs of the MOBILE core.
        return 2 * self.input_rtds + 2


@dataclass(frozen=True)
class MobileReport:
    """Technology cost of a whole threshold network."""

    gates: tuple[MobileGateCost, ...]
    clock_phases: int

    @property
    def total_rtd_area(self) -> int:
        return sum(g.rtd_area for g in self.gates)

    @property
    def total_devices(self) -> int:
        return sum(g.total_devices for g in self.gates)

    @property
    def total_negative_branches(self) -> int:
        return sum(g.negative_branches for g in self.gates)


def gate_cost(gate: ThresholdGate) -> MobileGateCost:
    """Branch composition and RTD area of one gate."""
    positive = sum(1 for w in gate.weights if w > 0)
    negative = sum(1 for w in gate.weights if w < 0)
    return MobileGateCost(
        name=gate.name,
        positive_branches=positive,
        negative_branches=negative,
        rtd_area=gate.area,
    )


def mobile_report(network: ThresholdNetwork) -> MobileReport:
    """Cost the whole network; clock phases = logic depth."""
    gates = tuple(
        gate_cost(network.gate(name))
        for name in network.topological_order()
    )
    return MobileReport(gates=gates, clock_phases=network.depth())


def format_mobile_report(report: MobileReport) -> str:
    """Short text summary for the CLI."""
    lines = [
        f"MOBILE gates:        {len(report.gates)}",
        f"clock phases:        {report.clock_phases}",
        f"total RTD area:      {report.total_rtd_area} (unit RTDs, Eq. 14)",
        f"total devices:       {report.total_devices} "
        "(input RTD+HFET pairs + clocked RTD pair per gate)",
        f"inverting branches:  {report.total_negative_branches}",
    ]
    return "\n".join(lines)
