"""Functional validation of synthesized threshold networks (Section VI).

The paper simulates every synthesized network against its source for
functional correctness; this module does the same.  Small-input networks are
checked exhaustively (exact equivalence); larger ones with a batch of random
vectors (a strong randomized check).
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.threshold import ThresholdNetwork
from repro.network.network import BooleanNetwork
from repro.network.simulate import (
    EXHAUSTIVE_LIMIT,
    exhaustive_pi_words,
    random_pi_words,
    simulate_words,
)


def _pi_matrix_from_words(
    network: BooleanNetwork, words: dict[str, int], width: int
) -> dict[str, np.ndarray]:
    matrix: dict[str, np.ndarray] = {}
    for name in network.inputs:
        word = words[name]
        bits = np.frombuffer(
            word.to_bytes((width + 7) // 8, "little"), dtype=np.uint8
        )
        matrix[name] = np.unpackbits(bits, bitorder="little")[:width].astype(
            np.float64
        )
    return matrix


def verify_threshold_network(
    source: BooleanNetwork,
    synthesized: ThresholdNetwork,
    vectors: int = 2048,
    seed: int = 0,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
) -> bool:
    """Check that ``synthesized`` matches ``source`` on all primary outputs.

    Exhaustive when the network has at most ``exhaustive_limit`` inputs,
    randomized otherwise.
    """
    if set(source.inputs) != set(synthesized.inputs):
        return False
    if set(source.outputs) != set(synthesized.outputs):
        return False
    if len(source.inputs) <= exhaustive_limit:
        words, width = exhaustive_pi_words(source)
    else:
        width = vectors
        words = random_pi_words(source, width, random.Random(seed))
    golden = simulate_words(source, words, width)
    matrix = _pi_matrix_from_words(source, words, width)
    outputs = synthesized.simulate_matrix(matrix)
    for name in source.outputs:
        got = outputs[name]
        want_word = golden[name]
        want = np.array(
            [(want_word >> k) & 1 for k in range(width)], dtype=bool
        )
        if not np.array_equal(got, want):
            return False
    return True


def first_mismatch(
    source: BooleanNetwork,
    synthesized: ThresholdNetwork,
    vectors: int = 2048,
    seed: int = 0,
) -> dict[str, bool] | None:
    """Return a PI assignment on which the two disagree, or None.

    Debugging helper: exhaustive for small input counts, random otherwise.
    """
    if len(source.inputs) <= EXHAUSTIVE_LIMIT:
        points = range(1 << len(source.inputs))
        assignments = (
            {
                name: bool((p >> i) & 1)
                for i, name in enumerate(source.inputs)
            }
            for p in points
        )
    else:
        rng = random.Random(seed)
        assignments = (
            {name: bool(rng.getrandbits(1)) for name in source.inputs}
            for _ in range(vectors)
        )
    for assignment in assignments:
        want = source.evaluate(assignment)
        got = synthesized.evaluate(assignment)
        if any(want[o] != got[o] for o in source.outputs):
            return assignment
    return None
