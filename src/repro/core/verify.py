"""Functional validation of synthesized threshold networks (Section VI).

The paper simulates every synthesized network against its source for
functional correctness; this module does the same.  Small-input networks are
checked exhaustively (exact equivalence); larger ones with a batch of random
vectors (a strong randomized check).  Golden values come from the packed
BitVec simulator; the threshold side runs through ``simulate_matrix`` so
weight perturbations stay representable.
"""

from __future__ import annotations

import random

import numpy as np

from repro.boolean.bitset import BitVec
from repro.core.threshold import ThresholdNetwork
from repro.network.network import BooleanNetwork
from repro.network.simulate import (
    EXHAUSTIVE_LIMIT,
    exhaustive_pi_vectors,
    random_pi_vectors,
    simulate_vectors,
)


def _pi_matrix_from_vectors(
    network: BooleanNetwork, vecs: dict[str, BitVec]
) -> dict[str, np.ndarray]:
    return {
        name: vecs[name].to_bool_array().astype(np.float64)
        for name in network.inputs
    }


def verify_threshold_network(
    source: BooleanNetwork,
    synthesized: ThresholdNetwork,
    vectors: int = 2048,
    seed: int = 0,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
) -> bool:
    """Check that ``synthesized`` matches ``source`` on all primary outputs.

    Exhaustive when the network has at most ``exhaustive_limit`` inputs,
    randomized otherwise.
    """
    if set(source.inputs) != set(synthesized.inputs):
        return False
    if set(source.outputs) != set(synthesized.outputs):
        return False
    if len(source.inputs) <= exhaustive_limit:
        vecs, width = exhaustive_pi_vectors(source)
    else:
        width = vectors
        vecs = random_pi_vectors(source, width, random.Random(seed))
    golden = simulate_vectors(source, vecs, width)
    matrix = _pi_matrix_from_vectors(source, vecs)
    outputs = synthesized.simulate_matrix(matrix)
    for name in source.outputs:
        got = np.asarray(outputs[name], dtype=bool)
        want = golden[name].to_bool_array()
        if not np.array_equal(got, want):
            return False
    return True


def first_mismatch(
    source: BooleanNetwork,
    synthesized: ThresholdNetwork,
    vectors: int = 2048,
    seed: int = 0,
) -> dict[str, bool] | None:
    """Return a PI assignment on which the two disagree, or None.

    Debugging helper: exhaustive for small input counts, random otherwise.
    Both sides are simulated bit-parallel; only the first disagreeing
    vector is unpacked into a point assignment.
    """
    if len(source.inputs) <= EXHAUSTIVE_LIMIT:
        vecs, width = exhaustive_pi_vectors(source)
    else:
        vecs, width = (
            random_pi_vectors(source, vectors, random.Random(seed)),
            vectors,
        )
    golden = simulate_vectors(source, vecs, width)
    matrix = _pi_matrix_from_vectors(source, vecs)
    outputs = synthesized.simulate_matrix(matrix)
    bad = np.zeros(width, dtype=bool)
    for name in source.outputs:
        got = np.asarray(outputs[name], dtype=bool)
        want = golden[name].to_bool_array()
        bad |= got != want
    if not bad.any():
        return None
    k = int(np.argmax(bad))
    return {
        name: bool(vecs[name].test(k)) for name in source.inputs
    }
