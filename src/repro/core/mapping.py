"""One-to-one mapping baseline (Section VI-A of the paper).

"One-to-one mapping refers to replacing each gate in the optimized Boolean
network with a threshold gate."  The input here is an optimized,
technology-decomposed network (every node a simple AND/OR gate of bounded
fanin, literal phases allowed); every such gate *is* a threshold function,
so each node maps to one LTG whose minimal-area weight–threshold vector the
ILP provides.
"""

from __future__ import annotations

from repro.core.identify import ThresholdChecker
from repro.core.threshold import ThresholdGate, ThresholdNetwork
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork


def one_to_one_map(
    network: BooleanNetwork,
    delta_on: int = 0,
    delta_off: int = 1,
    backend: str = "auto",
    checker: ThresholdChecker | None = None,
) -> ThresholdNetwork:
    """Replace every Boolean gate with a single threshold gate.

    Every node of ``network`` must itself be a threshold function (which is
    guaranteed when the network has been technology-decomposed into simple
    gates); a non-threshold node raises :class:`SynthesisError` naming it.
    """
    if checker is None:
        checker = ThresholdChecker(
            delta_on=delta_on, delta_off=delta_off, backend=backend
        )
    result = ThresholdNetwork(network.name + "_1to1")
    for pi in network.inputs:
        result.add_input(pi)
    for out in network.outputs:
        result.add_output(out)
    for node in network.topological_order():
        function = network.function(node).trimmed()
        if function.nvars == 0:
            from repro.core.threshold import WeightThresholdVector

            value = not function.cover.is_zero()
            vector = WeightThresholdVector((), 0 if value else 1 + delta_on)
            result.add_gate(
                ThresholdGate(node, (), vector, delta_on, delta_off)
            )
            continue
        vector = checker.check_function(function)
        if vector is None:
            raise SynthesisError(
                f"node {node!r} is not a threshold function; decompose the "
                "network into simple gates before one-to-one mapping"
            )
        result.add_gate(
            ThresholdGate(
                node, function.variables, vector, delta_on, delta_off
            )
        )
    result.check()
    return result
