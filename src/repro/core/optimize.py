"""Post-synthesis peephole optimization of threshold networks.

TELS's recursive construction can leave trivially improvable structure
behind: buffer gates created for primary outputs of split parts, constant
gates feeding logic, and single-fanout gates that a Theorem-2 input of their
reader could absorb.  This pass cleans those up without touching the
synthesis algorithms themselves; every rewrite preserves functional
equivalence (the tests verify by simulation).
"""

from __future__ import annotations

from repro.core.theorems import theorem2_extend
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
)


def peephole_optimize(
    network: ThresholdNetwork, psi: int = 0, delta_on: int = 0
) -> int:
    """Apply all peephole rewrites to a fixpoint; returns gates removed.

    Args:
        network: threshold network to optimize in place.
        psi: fanin restriction for rewrites that grow a gate's fanin
            (0 disables those rewrites).
        delta_on: ON tolerance used when re-deriving Theorem-2 weights.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        removed_now = (
            _fold_buffers(network)
            + _propagate_constants(network)
            + (_absorb_single_or_inputs(network, psi, delta_on) if psi else 0)
        )
        removed_now += network.cleanup()
        if removed_now:
            removed += removed_now
            changed = True
    network.check()
    return removed


def _gate_is_buffer(gate: ThresholdGate) -> bool:
    return (
        isinstance(gate.vector, WeightThresholdVector)
        and gate.fanin == 1
        and gate.vector.weights == (1,)
        and gate.vector.threshold == 1
    )


def _gate_is_constant(gate: ThresholdGate) -> tuple[bool, bool]:
    """(is_constant, value): true when no input assignment changes output."""
    if not isinstance(gate.vector, WeightThresholdVector):
        # Multi-threshold gates are opaque to the single-threshold
        # peephole algebra; leave them untouched.
        return False, False
    if gate.fanin == 0:
        return True, gate.vector.threshold <= 0
    lo = sum(w for w in gate.vector.weights if w < 0)
    hi = sum(w for w in gate.vector.weights if w > 0)
    if lo >= gate.vector.threshold:
        return True, True
    if hi < gate.vector.threshold:
        return True, False
    return False, False


def _readers(network: ThresholdNetwork) -> dict[str, list[str]]:
    readers: dict[str, list[str]] = {}
    for gate in network.gates():
        for fanin in gate.inputs:
            readers.setdefault(fanin, []).append(gate.name)
    return readers


def _replace_gate(network: ThresholdNetwork, gate: ThresholdGate) -> None:
    network._gates[gate.name] = gate  # module-internal rewiring


def _rewire_input(
    network: ThresholdNetwork, reader: str, old: str, new: str
) -> bool:
    gate = network.gate(reader)
    if new in gate.inputs:
        return False  # would create a duplicate input; skip
    inputs = tuple(new if name == old else name for name in gate.inputs)
    _replace_gate(
        network,
        ThresholdGate(
            gate.name, inputs, gate.vector, gate.delta_on, gate.delta_off
        ),
    )
    return True


def _fold_buffers(network: ThresholdNetwork) -> int:
    """Bypass buffer gates that do not drive primary outputs."""
    removed = 0
    for name in list(network.topological_order()):
        gate = network.gate(name)
        if not _gate_is_buffer(gate) or network.is_input(name):
            continue
        if name in network.outputs:
            continue
        source = gate.inputs[0]
        ok = all(
            _rewire_input(network, reader, name, source)
            for reader in _readers(network).get(name, [])
        )
        if ok:
            removed += 1
    return removed


def _propagate_constants(network: ThresholdNetwork) -> int:
    """Fold constant gates into their readers' weight sums."""
    folded = 0
    for name in list(network.topological_order()):
        gate = network.gate(name)
        is_const, value = _gate_is_constant(gate)
        if not is_const or gate.fanin == 0:
            continue
        # Rebuild as an explicit zero-input constant; readers then treat it
        # through the generic constant-input fold below.
        _replace_gate(
            network,
            ThresholdGate(
                name,
                (),
                WeightThresholdVector((), 0 if value else 1),
                gate.delta_on,
                gate.delta_off,
            ),
        )
        folded += 1
    # Fold zero-input constant gates into readers.
    for name in list(network.topological_order()):
        gate = network.gate(name)
        if gate.fanin != 0 or name in network.outputs:
            continue
        value = gate.vector.threshold <= 0
        for reader in _readers(network).get(name, []):
            rgate = network.gate(reader)
            if not isinstance(rgate.vector, WeightThresholdVector):
                continue  # cannot fold into a multi-threshold reader
            idx = rgate.inputs.index(name)
            weights = list(rgate.vector.weights)
            threshold = rgate.vector.threshold
            if value:
                threshold -= weights[idx]
            inputs = tuple(
                n for i, n in enumerate(rgate.inputs) if i != idx
            )
            weights = [w for i, w in enumerate(weights) if i != idx]
            _replace_gate(
                network,
                ThresholdGate(
                    reader,
                    inputs,
                    WeightThresholdVector(tuple(weights), threshold),
                    rgate.delta_on,
                    rgate.delta_off,
                ),
            )
            folded += 1
    return folded


def _absorb_single_or_inputs(
    network: ThresholdNetwork, psi: int, delta_on: int
) -> int:
    """Merge a single-fanout gate into a pure-OR reader via Theorem 2.

    If reader R is an OR gate (all weights 1, T=1) and one of its inputs is
    gate G read only by R, R can instead take G's inputs directly with G's
    weights and absorb the *other* OR inputs through Theorem-2 weights —
    eliminating G — provided the merged fanin fits ψ.
    """
    removed = 0
    readers = _readers(network)
    for name in list(network.topological_order()):
        if not network.has_gate(name):
            continue
        gate = network.gate(name)
        is_or = (
            isinstance(gate.vector, WeightThresholdVector)
            and gate.fanin >= 2
            and all(w == 1 for w in gate.vector.weights)
            and gate.vector.threshold == 1
        )
        if not is_or:
            continue
        for child_name in gate.inputs:
            if not network.has_gate(child_name):
                continue
            if child_name in network.outputs:
                continue
            if len(readers.get(child_name, [])) != 1:
                continue
            child = network.gate(child_name)
            if not isinstance(child.vector, WeightThresholdVector):
                continue  # Theorem 2 extends single-threshold vectors only
            others = [n for n in gate.inputs if n != child_name]
            merged_inputs = tuple(child.inputs) + tuple(others)
            if len(set(merged_inputs)) != len(merged_inputs):
                continue
            if len(merged_inputs) > psi:
                continue
            extended = theorem2_extend(child.vector, len(others), delta_on)
            _replace_gate(
                network,
                ThresholdGate(
                    name,
                    merged_inputs,
                    extended,
                    gate.delta_on,
                    gate.delta_off,
                ),
            )
            del network._gates[child_name]
            removed += 1
            readers = _readers(network)
            break
    return removed
