"""Executable forms of the paper's Theorems 1 and 2.

Theorem 1: replacing a literal ``x_i`` by ``x̄_j`` in a unate expression
yields a function ``g`` such that if ``g`` is not threshold, neither is
``f``.  TELS uses it as justification for the most-frequent-variable
splitting heuristic; here it is also directly executable so tests can verify
the implication on enumerated functions.

Theorem 2: if ``f`` is threshold then ``f ∨ x_{l+1} ∨ ... ∨ x_{l+k}`` is
threshold, with each new weight equal to the positive-form threshold plus
``delta_on``.  TELS applies it as the *combining* step after unate splitting:
the larger split half keeps its gate and the smaller half enters the same
gate through a single high-weight input.
"""

from __future__ import annotations

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.core.threshold import WeightThresholdVector
from repro.errors import CoverError


def replace_literal(
    function: BooleanFunction, source: str, target: str
) -> BooleanFunction:
    """Theorem 1 transformation: replace literal ``source`` by ``target'``.

    Every occurrence of ``source`` (in whichever phase it appears) is
    replaced by the *complemented* corresponding phase of ``target``.
    ``target`` must already be a variable of the function and differ from
    ``source``.
    """
    if source == target:
        raise CoverError("source and target must differ")
    i = function.index_of(source)
    j = function.index_of(target)
    cubes = []
    for cube in function.cover.cubes:
        pos, neg = cube.pos, cube.neg
        bit_i, bit_j = 1 << i, 1 << j
        if pos & bit_i:
            pos &= ~bit_i
            if pos & bit_j:
                # x_j x̄_j: contradictory cube, drops out.
                continue
            neg |= bit_j
        elif neg & bit_i:
            neg &= ~bit_i
            if neg & bit_j:
                continue
            pos |= bit_j
        cubes.append(Cube(pos, neg, cube.nvars))
    return BooleanFunction(Cover(cubes, function.nvars), function.variables).trimmed()


def theorem2_extend(
    vector: WeightThresholdVector, extra_inputs: int, delta_on: int = 0
) -> WeightThresholdVector:
    """Theorem 2: extend ``f``'s vector to ``f ∨ y_1 ∨ ... ∨ y_k``.

    Each new input gets weight ``T_pos + delta_on`` where ``T_pos`` is the
    threshold of the positive-unate form (i.e. ``T`` plus the magnitudes of
    the negative weights), which guarantees any single new input firing the
    gate regardless of the other inputs.
    """
    if extra_inputs < 0:
        raise CoverError("extra_inputs must be non-negative")
    t_pos = vector.to_positive_threshold()
    # For genuine (non-degenerate) gates T_pos >= 1; the clamp keeps the
    # construction correct even for constant-true vectors, where multiple
    # negative-weight extras could otherwise push the sum below T.
    new_weight = max(t_pos + delta_on, 0)
    return WeightThresholdVector(
        vector.weights + (new_weight,) * extra_inputs, vector.threshold
    )


def or_with_inputs(
    function: BooleanFunction, extra: list[str]
) -> BooleanFunction:
    """The function ``f ∨ x_1 ∨ ... ∨ x_k`` of Theorem 2 (for validation)."""
    variables = list(function.variables) + [v for v in extra if v not in function.variables]
    base = function.rebased(variables)
    cubes = list(base.cover.cubes)
    for name in extra:
        idx = variables.index(name)
        cubes.append(Cube.from_literals({idx: True}, len(variables)))
    return BooleanFunction(Cover(cubes, len(variables)).scc(), variables)
