"""Linear threshold gates and threshold networks.

A linear threshold gate (LTG) computes ``1`` when the weighted sum of its
inputs reaches its threshold ``T`` (Eq. 1 of the paper).  Synthesized gates
carry the defect tolerances ``delta_on`` / ``delta_off`` they were solved
with: the gate's weight–threshold vector guarantees every true input vector
sums to at least ``T + delta_on`` and every false one to at most
``T - delta_off``, which is what makes the network robust to weight
perturbation (Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.boolean import bitset
from repro.boolean.bitset import BitVec
from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.errors import NetworkError


@dataclass(frozen=True)
class WeightThresholdVector:
    """The vector ``<w1, ..., wl; T>`` defining a threshold function."""

    weights: tuple[int, ...]
    threshold: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", tuple(int(w) for w in self.weights))
        object.__setattr__(self, "threshold", int(self.threshold))

    @property
    def num_inputs(self) -> int:
        return len(self.weights)

    @property
    def area(self) -> int:
        """RTD area model, Eq. (14): sum of |w_i| plus |T| (A_u = 1)."""
        return sum(abs(w) for w in self.weights) + abs(self.threshold)

    def fires(self, total: int | float) -> bool:
        """Gate output for a weighted input sum (Eq. 1)."""
        return total >= self.threshold

    def fires_array(self, totals: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fires` over an array of weighted sums."""
        return totals >= self.threshold

    def evaluate(self, inputs: Sequence[bool | int]) -> bool:
        """Exact gate evaluation: fire when the weighted sum reaches T."""
        total = sum(w for w, x in zip(self.weights, inputs) if x)
        return total >= self.threshold

    def to_positive_threshold(self) -> int:
        """Threshold of the positive-unate form (negative weights absorbed)."""
        return self.threshold + sum(-w for w in self.weights if w < 0)

    def margins(self) -> tuple[int | None, int | None]:
        """(ON margin, OFF margin) over all ``2**l`` input points.

        The ON margin is the tightest slack of a true vector's sum above
        ``T``; the OFF margin the tightest slack of a false vector's sum
        below ``T``.  None when the gate has no true (resp. false) vectors.
        """
        sums = np.asarray(bitset.weighted_sums(self.weights))
        on = sums[sums >= self.threshold]
        off = sums[sums < self.threshold]
        on_margin = int(on.min() - self.threshold) if on.size else None
        off_margin = int(self.threshold - off.max()) if off.size else None
        return on_margin, off_margin

    def table(self) -> BitVec:
        """Packed truth table over all ``2**l`` input points."""
        return bitset.fires_table(
            bitset.weighted_sums(self.weights), self.threshold
        )

    def __str__(self) -> str:
        ws = ", ".join(str(w) for w in self.weights)
        return f"<{ws}; {self.threshold}>"


@dataclass(frozen=True)
class MultiThresholdVector:
    """A multi-threshold gate ``<w1, ..., wl; T1 < ... < Tk>``.

    The gate fires when the weighted input sum has crossed an *odd* number
    of thresholds — the output toggles at every ``T_j`` (arXiv:1301.0048).
    With ``k = 1`` this degenerates to the ordinary LTG; with weights of 1
    and thresholds ``1..l`` it computes parity, which is why the
    ``multi-threshold`` gate model can absorb whole XOR cones that the
    single-threshold flow must split.
    """

    weights: tuple[int, ...]
    thresholds: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", tuple(int(w) for w in self.weights))
        object.__setattr__(
            self, "thresholds", tuple(int(t) for t in self.thresholds)
        )
        if not self.thresholds:
            raise NetworkError("multi-threshold vector needs >= 1 threshold")
        if any(
            a >= b for a, b in zip(self.thresholds, self.thresholds[1:])
        ):
            raise NetworkError(
                f"thresholds must be strictly increasing: {self.thresholds}"
            )

    @property
    def num_inputs(self) -> int:
        return len(self.weights)

    @property
    def threshold(self) -> int:
        """The first (lowest) threshold — printing/diagnostic compatibility."""
        return self.thresholds[0]

    @property
    def area(self) -> int:
        """Eq. (14) generalized: one RTD per weight plus one per threshold."""
        return sum(abs(w) for w in self.weights) + sum(
            abs(t) for t in self.thresholds
        )

    def fires(self, total: int | float) -> bool:
        """Output toggles at each threshold the sum has reached."""
        return sum(1 for t in self.thresholds if total >= t) % 2 == 1

    def fires_array(self, totals: np.ndarray) -> np.ndarray:
        crossed = np.zeros(totals.shape, dtype=np.int64)
        for t in self.thresholds:
            crossed = crossed + (totals >= t)
        return crossed % 2 == 1

    def evaluate(self, inputs: Sequence[bool | int]) -> bool:
        total = sum(w for w, x in zip(self.weights, inputs) if x)
        return self.fires(total)

    def margins(self) -> tuple[int | None, int | None]:
        """(ON margin, OFF margin) generalized to interval boundaries.

        Every threshold behaves locally like an LTG threshold: a point at
        sum ``s`` must clear its nearest threshold below by the ON margin
        (``s - T_below``) and stay below its nearest threshold above by the
        OFF margin (``T_above - s``).  For ``k = 1`` this reduces exactly to
        :meth:`WeightThresholdVector.margins`.
        """
        sums = np.asarray(bitset.weighted_sums(self.weights))
        ts = np.asarray(self.thresholds)
        # searchsorted(right) counts thresholds <= s; the nearest threshold
        # below is ts[idx-1] (when idx > 0), the one above ts[idx] (idx < k).
        idx = np.searchsorted(ts, sums, side="right")
        has_below = idx > 0
        has_above = idx < len(ts)
        on_margin: int | None = None
        off_margin: int | None = None
        if has_below.any():
            below = sums[has_below] - ts[idx[has_below] - 1]
            on_margin = int(below.min())
        if has_above.any():
            above = ts[idx[has_above]] - sums[has_above]
            off_margin = int(above.min())
        return on_margin, off_margin

    def table(self) -> BitVec:
        """Packed truth table: XOR of the per-threshold fire tables."""
        sums = bitset.weighted_sums(self.weights)
        table = bitset.fires_table(sums, self.thresholds[0])
        for t in self.thresholds[1:]:
            table = table ^ bitset.fires_table(sums, t)
        return table

    def __str__(self) -> str:
        ws = ", ".join(str(w) for w in self.weights)
        ts = ", ".join(str(t) for t in self.thresholds)
        return f"<{ws}; {ts}>"


#: Any gate-defining vector a ThresholdGate may carry.
GateVector = WeightThresholdVector | MultiThresholdVector


def _point_sums(weights: tuple[int, ...]) -> Iterator[int]:
    """Weighted sums of all ``2**l`` input points (small l only)."""
    for total in bitset.weighted_sums(weights):
        yield int(total)


@dataclass(frozen=True)
class ThresholdGate:
    """A named threshold-gate instance inside a threshold network.

    The ``vector`` is usually a :class:`WeightThresholdVector` (the paper's
    LTG); under the ``multi-threshold`` gate model it may be a
    :class:`MultiThresholdVector`.  All evaluation and margin queries go
    through the vector so both kinds behave uniformly.
    """

    name: str
    inputs: tuple[str, ...]
    vector: GateVector
    delta_on: int = 0
    delta_off: int = 1

    def __post_init__(self) -> None:
        if len(self.inputs) != self.vector.num_inputs:
            raise NetworkError(
                f"gate {self.name!r}: {len(self.inputs)} inputs but "
                f"{self.vector.num_inputs} weights"
            )
        if len(set(self.inputs)) != len(self.inputs):
            raise NetworkError(f"gate {self.name!r}: duplicate input names")

    @property
    def weights(self) -> tuple[int, ...]:
        return self.vector.weights

    @property
    def threshold(self) -> int:
        return self.vector.threshold

    @property
    def fanin(self) -> int:
        return len(self.inputs)

    @property
    def area(self) -> int:
        return self.vector.area

    def evaluate(self, values: Mapping[str, bool | int]) -> bool:
        total = sum(
            w for w, name in zip(self.vector.weights, self.inputs) if values[name]
        )
        return self.vector.fires(total)

    def local_function(self) -> BooleanFunction:
        """The Boolean function this gate implements, as an SOP.

        Built from the vector's packed truth table — gates are small (fanin
        is bounded by the synthesis fanin restriction), so this is cheap.
        """
        n = len(self.inputs)
        bits = self.vector.table().to_bits()
        return BooleanFunction(Cover.from_truth_table(bits, n), self.inputs)

    def implements(self, function: BooleanFunction) -> bool:
        """Exhaustively check this gate against ``function`` (small fanin)."""
        if tuple(function.variables) != self.inputs:
            function = function.rebased(self.inputs)
        return self.vector.table() == function.cover.packed_table()

    def margins(self) -> tuple[int | None, int | None]:
        """(ON margin, OFF margin), delegated to the gate's vector.

        For the LTG vector this is the distance of the tightest true sum
        above ``T`` and of the tightest false sum below ``T``; see
        :meth:`MultiThresholdVector.margins` for the generalized contract.
        """
        return self.vector.margins()


class ThresholdNetwork:
    """A DAG of threshold gates: the output of TELS."""

    def __init__(self, name: str = "threshold_network"):
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, ThresholdGate] = {}
        #: Optional per-gate source line numbers, filled by ``parse_thblif``
        #: so lint diagnostics can point into the file the gate came from.
        self.gate_lines: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        if name in self._inputs or name in self._gates:
            raise NetworkError(f"duplicate signal {name!r}")
        self._inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        if name in self._outputs:
            raise NetworkError(f"duplicate primary output {name!r}")
        self._outputs.append(name)
        return name

    def add_gate(self, gate: ThresholdGate) -> str:
        if gate.name in self._gates or gate.name in self._inputs:
            raise NetworkError(f"duplicate signal {gate.name!r}")
        self._gates[gate.name] = gate
        return gate.name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    def gates(self) -> Iterator[ThresholdGate]:
        return iter(self._gates.values())

    def gate(self, name: str) -> ThresholdGate:
        try:
            return self._gates[name]
        except KeyError:
            raise NetworkError(f"unknown gate {name!r}") from None

    def has_gate(self, name: str) -> bool:
        return name in self._gates

    def is_input(self, name: str) -> bool:
        return name in self._inputs

    def area(self) -> int:
        """Total RTD area, Eq. (14)."""
        return sum(g.area for g in self._gates.values())

    def max_fanin(self) -> int:
        return max((g.fanin for g in self._gates.values()), default=0)

    def topological_order(self) -> list[str]:
        indegree: dict[str, int] = {}
        readers: dict[str, list[str]] = {}
        for name, gate in self._gates.items():
            count = 0
            for fanin in gate.inputs:
                if fanin in self._gates:
                    count += 1
                    readers.setdefault(fanin, []).append(name)
                elif fanin not in self._inputs:
                    raise NetworkError(
                        f"gate {name!r} reads undefined signal {fanin!r}"
                    )
            indegree[name] = count
        ready = [n for n, d in indegree.items() if d == 0]
        order = []
        while ready:
            node = ready.pop()
            order.append(node)
            for reader in readers.get(node, ()):
                indegree[reader] -= 1
                if indegree[reader] == 0:
                    ready.append(reader)
        if len(order) != len(self._gates):
            raise NetworkError("cycle in threshold network")
        return order

    def levels(self) -> dict[str, int]:
        level = {name: 0 for name in self._inputs}
        for name in self.topological_order():
            fanins = self._gates[name].inputs
            level[name] = 1 + max((level[f] for f in fanins), default=0)
        return level

    def depth(self) -> int:
        level = self.levels()
        return max((level[o] for o in self._outputs), default=0)

    def check(self) -> None:
        for out in self._outputs:
            if out not in self._gates and out not in self._inputs:
                raise NetworkError(f"primary output {out!r} undefined")
        self.topological_order()

    def cleanup(self) -> int:
        """Drop gates not reachable from any primary output."""
        live: set[str] = set()
        stack = [o for o in self._outputs if o in self._gates]
        while stack:
            name = stack.pop()
            if name in live:
                continue
            live.add(name)
            for fanin in self._gates[name].inputs:
                if fanin in self._gates:
                    stack.append(fanin)
        dead = [n for n in self._gates if n not in live]
        for name in dead:
            del self._gates[name]
        return len(dead)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool | int]) -> dict[str, bool]:
        values: dict[str, bool] = {}
        for name in self._inputs:
            if name not in assignment:
                raise NetworkError(f"missing value for primary input {name!r}")
            values[name] = bool(assignment[name])
        for name in self.topological_order():
            values[name] = self._gates[name].evaluate(values)
        return {o: values[o] for o in self._outputs}

    def simulate_matrix(
        self,
        pi_matrix: Mapping[str, np.ndarray],
        weight_noise: Mapping[str, np.ndarray] | None = None,
    ) -> dict[str, np.ndarray]:
        """Vectorized simulation over many input vectors at once.

        Args:
            pi_matrix: per-input 0/1 arrays, all the same shape.
            weight_noise: optional per-gate additive weight perturbation,
                shaped ``(fanin,)`` (one disturbed instance applied to all
                vectors) — this is the Section VI-C experiment.

        Returns:
            Per-output boolean arrays.
        """
        values: dict[str, np.ndarray] = {}
        shape: tuple[int, ...] = (1,)
        for name in self._inputs:
            values[name] = np.asarray(pi_matrix[name], dtype=np.float64)
            shape = values[name].shape
        for name in self.topological_order():
            gate = self._gates[name]
            weights = np.array(gate.vector.weights, dtype=np.float64)
            if weight_noise is not None and name in weight_noise:
                weights = weights + np.asarray(weight_noise[name])
            total = np.zeros(shape, dtype=np.float64)
            for w, fanin in zip(weights, gate.inputs):
                total = total + w * values[fanin]
            fired = gate.vector.fires_array(total)
            values[name] = fired.astype(np.float64)
        return {o: values[o].astype(bool) for o in self._outputs}

    def __repr__(self) -> str:
        return (
            f"ThresholdNetwork({self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, gates={len(self._gates)})"
        )


def make_or_vector(
    k: int, delta_on: int = 0, delta_off: int = 1
) -> WeightThresholdVector:
    """The k-input OR gate vector, honoring the defect tolerances.

    With the paper's defaults this is the classic ``<1, ..., 1; 1>``; for
    larger tolerances the threshold rises to ``delta_off`` and each weight
    to ``delta_off + delta_on`` so every true vector clears ``T + delta_on``
    and the false vector stays at ``T - delta_off``.
    """
    threshold = max(delta_off, 1)
    return WeightThresholdVector((threshold + delta_on,) * k, threshold)


def make_and_vector(k: int) -> WeightThresholdVector:
    """The k-input AND gate vector ``<1, ..., 1; k>``."""
    return WeightThresholdVector((1,) * k, k)


def gate_table(network: ThresholdNetwork) -> Iterable[tuple[str, str, str]]:
    """(gate, inputs, vector) rows for pretty-printing (CLI ``print_th``)."""
    for name in network.topological_order():
        gate = network.gate(name)
        yield name, " ".join(gate.inputs), str(gate.vector)
