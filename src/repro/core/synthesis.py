"""The TELS threshold-network synthesis flow (Fig. 3) — façade.

The input is an algebraically-factored multi-output Boolean network; the
output is a functionally equivalent :class:`ThresholdNetwork` in which every
gate respects the fanin restriction ψ and the defect tolerances.  The flow,
per node (starting from the primary outputs):

1. **collapse** the node into its non-preserved fanins (Fig. 4);
2. if the collapsed function is **binate**, split it per Fig. 8 into
   ``min(ψ, |K_n|)`` parts OR-combined by a ``<1,...,1;1>`` gate;
3. if it is unate, run the **ILP threshold check** (Fig. 6); success emits
   the gate and recurses into its node fanins;
4. otherwise **split** per Fig. 7; when the larger half is threshold and the
   split is an OR, **Theorem 2** absorbs the smaller half into the same gate
   through one high-weight input; an AND split emits an AND root gate; and
   when nothing else applies the node is split ``min(ψ, |K_n|)``-ways.

Fanout nodes of the input network (and primary outputs) are *preserved*:
collapsing stops at them, so logic sharing survives into the threshold
network (Section V-A).

Since the engine refactor this module is a thin compatibility façade: the
recursion lives in :mod:`repro.engine` as per-cone tasks driven by a
work-queue scheduler (:func:`repro.engine.scheduler.run_synthesis`), which
is what adds ``jobs`` (process-pool parallelism across cones) and ``store``
(a shared result cache across runs and sweeps) to the signatures below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.identify import ThresholdChecker
from repro.core.threshold import ThresholdNetwork
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork

if TYPE_CHECKING:
    from repro.analysis.report import AnalysisResult
    from repro.engine.events import EngineTrace
    from repro.engine.resilience import DegradedCone
    from repro.engine.store import ResultStore
    from repro.lint.diagnostics import LintReport


@dataclass
class SynthesisOptions:
    """Tunable parameters of the TELS flow.

    Attributes:
        psi: fanin restriction ψ on every threshold gate (paper uses 3-8).
        delta_on / delta_off: defect tolerances in Eq. (1); the paper's
            experiments use ``delta_on`` in 0..3 and ``delta_off`` = 1.
        backend: ILP backend (``auto`` / ``exact`` / ``scipy``).
        seed: RNG seed for the random tie-breaks of splitting rule 4.  Each
            cone task derives its own ``random.Random("{seed}:{task_id}")``
            stream, so results are reproducible under parallel execution.
        apply_theorem2: enable the Theorem-2 combining step (ablation knob).
        preserve_sharing: treat fanout nodes as collapse barriers (ablation
            knob; the paper argues this preserves network structure).
        split_on_most_frequent: rule-3 splitting on the most frequent
            variable; when False a random variable is used instead
            (ablation knob for the Theorem-1-motivated heuristic).
        splitting_strategy: ``"paper"`` (Fig. 7 rules), ``"lookahead"``
            (ILP-guided split-variable selection), or ``"balanced"``
            (depth-oriented cube halving) — the future-work directions of
            the paper's conclusion, selectable per run.
        gate_model: target gate technology (``repro.gates`` registry name):
            ``"ltg"`` — the paper's single-threshold gate (default,
            behaviorally identical to the pre-gate-model flow),
            ``"multi-threshold"`` — k-threshold gates absorbing parity
            cones, ``"flash"`` — LTGs on a flash device grid with
            drift-derived tolerances.
        use_fastpath: resolve threshold checks with the Chow-parameter fast
            path before formulating an ILP (ablation knob).
        use_presolve: run the ILP presolve reductions inside the solver
            stack (ablation knob).
        max_collapse_cubes: SOP size guard during collapsing.
        lint: run the static lint post-pass — gate-local rules per cone,
            the full structural+semantic rule set on the assembled network
            (``repro.lint``); violation counts land in ``TaskMetrics`` /
            ``EngineTrace`` and the report carries the ``LintReport``.
        lint_rules: restrict the post-pass to these rule ids/prefixes
            (None runs every source-free rule).
        analyze: run the whole-network dataflow analysis post-pass
            (``repro.analysis``): interval/don't-care fixpoints, verified
            redundancy candidates, and a robustness certificate.  Off by
            default — it re-simulates the network per removal candidate.
        deadline_per_cone_s: wall-clock budget for each cone task; a cone
            blowing it falls back to the one-to-one mapping (degradation).
            None disables the per-cone deadline and the watchdog.
        deadline_total_s: wall-clock budget for the whole run; on expiry
            every unfinished cone degrades.
        max_attempts: dispatch attempts per cone for transient errors
            before degrading.
        poison_crashes: worker crashes a cone may cause (or witness) before
            it is quarantined and degraded.
        retry_backoff_s / retry_backoff_max_s: base and cap of the
            exponential retry backoff (deterministically jittered from
            ``seed``).
        watchdog_grace_s: slack past ``deadline_per_cone_s`` before the
            process executor's watchdog kills a wedged worker pool.
        strict_synthesis: raise :class:`SynthesisError` instead of
            degrading a failed cone (see docs/RESILIENCE.md).
    """

    psi: int = 3
    delta_on: int = 0
    delta_off: int = 1
    backend: str = "auto"
    seed: int = 0
    apply_theorem2: bool = True
    preserve_sharing: bool = True
    split_on_most_frequent: bool = True
    splitting_strategy: str = "paper"
    gate_model: str = "ltg"
    use_fastpath: bool = True
    use_presolve: bool = True
    max_weight: int | None = None
    max_collapse_cubes: int = 128
    lint: bool = True
    lint_rules: tuple[str, ...] | None = None
    analyze: bool = False
    deadline_per_cone_s: float | None = None
    deadline_total_s: float | None = None
    max_attempts: int = 3
    poison_crashes: int = 3
    retry_backoff_s: float = 0.05
    retry_backoff_max_s: float = 0.5
    watchdog_grace_s: float = 2.0
    strict_synthesis: bool = False

    def __post_init__(self) -> None:
        if self.psi < 2:
            raise SynthesisError("fanin restriction must be at least 2")
        if self.delta_on < 0 or self.delta_off < 0:
            raise SynthesisError("defect tolerances must be non-negative")
        for name in ("deadline_per_cone_s", "deadline_total_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise SynthesisError(f"{name} must be positive when set")
        if self.max_attempts < 1:
            raise SynthesisError("max_attempts must be at least 1")
        if self.poison_crashes < 1:
            raise SynthesisError("poison_crashes must be at least 1")
        from repro.gates import model_names

        if self.gate_model not in model_names():
            raise SynthesisError(
                f"unknown gate model {self.gate_model!r} "
                f"(available: {', '.join(model_names())})"
            )


@dataclass
class SynthesisReport:
    """Bookkeeping of one synthesis run.

    ``trace`` carries the engine's per-task instrumentation (collapse /
    check / split timings, cache activity) when the run came through the
    pass-based engine — always, since the façade delegates to it.
    ``lint`` is the static post-pass report over the assembled network
    (None when ``options.lint`` is off).  ``degraded`` lists every cone the
    resilience layer completed with the one-to-one fallback mapping (and
    why); the result network is still complete and simulation-equivalent,
    only those cones' area optimality is lost.
    """

    nodes_processed: int = 0
    gates_emitted: int = 0
    binate_splits: int = 0
    unate_splits: int = 0
    kway_splits: int = 0
    theorem2_applications: int = 0
    and_factor_splits: int = 0
    checker: ThresholdChecker | None = None
    trace: "EngineTrace | None" = None
    lint: "LintReport | None" = None
    analysis: "AnalysisResult | None" = None
    degraded_cones: int = 0
    degraded: "tuple[DegradedCone, ...]" = ()


def synthesize(
    network: BooleanNetwork,
    options: SynthesisOptions | None = None,
    jobs: int = 1,
    store: "ResultStore | None" = None,
    cache_dir: str | None = None,
    on_event=None,
    cancel=None,
    distribute: str | None = None,
) -> ThresholdNetwork:
    """Run TELS on an (ideally algebraically-factored) Boolean network.

    Args:
        network: the prepared source network.
        options: flow parameters (defaults mirror the paper).
        jobs: cone-synthesis worker processes; 1 runs inline, 0 uses every
            core.  Serial and parallel runs emit identical networks.
        store: optional shared :class:`~repro.engine.store.ResultStore`;
            pass the same store across runs/sweeps to reuse threshold-check
            results and re-solve only what changed.
        cache_dir: directory of the persistent NP-canonical synthesis cache
            (ignored when ``store`` is given — attach the cache to the
            store instead).
        on_event: optional structured-progress listener (see
            :func:`repro.engine.scheduler.run_synthesis`).
        cancel: optional cooperative cancellation flag checked between
            cones; when set the run raises
            :class:`~repro.errors.SynthesisCancelled`.
        distribute: URL of a ``tels serve`` daemon to farm cones to
            (see :mod:`repro.engine.remote`); output is byte-identical
            to a local run.
    """
    from repro.engine.scheduler import run_synthesis

    return run_synthesis(
        network,
        options,
        jobs=jobs,
        store=store,
        cache_dir=cache_dir,
        on_event=on_event,
        cancel=cancel,
        distribute=distribute,
    ).network


def synthesize_with_report(
    network: BooleanNetwork,
    options: SynthesisOptions | None = None,
    jobs: int = 1,
    store: "ResultStore | None" = None,
    cache_dir: str | None = None,
    on_event=None,
    cancel=None,
    distribute: str | None = None,
) -> tuple[ThresholdNetwork, SynthesisReport]:
    """Like :func:`synthesize` but also returns run statistics."""
    from repro.engine.scheduler import run_synthesis

    result = run_synthesis(
        network,
        options,
        jobs=jobs,
        store=store,
        cache_dir=cache_dir,
        on_event=on_event,
        cancel=cancel,
        distribute=distribute,
    )
    return result.network, result.report
