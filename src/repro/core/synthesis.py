"""The TELS recursive threshold-network synthesis flow (Fig. 3).

The input is an algebraically-factored multi-output Boolean network; the
output is a functionally equivalent :class:`ThresholdNetwork` in which every
gate respects the fanin restriction ψ and the defect tolerances.  The flow,
per node (starting from the primary outputs):

1. **collapse** the node into its non-preserved fanins (Fig. 4);
2. if the collapsed function is **binate**, split it per Fig. 8 into
   ``min(ψ, |K_n|)`` parts OR-combined by a ``<1,...,1;1>`` gate;
3. if it is unate, run the **ILP threshold check** (Fig. 6); success emits
   the gate and recurses into its node fanins;
4. otherwise **split** per Fig. 7; when the larger half is threshold and the
   split is an OR, **Theorem 2** absorbs the smaller half into the same gate
   through one high-weight input; an AND split emits an AND root gate; and
   when nothing else applies the node is split ``min(ψ, |K_n|)``-ways.

Fanout nodes of the input network (and primary outputs) are *preserved*:
collapsing stops at them, so logic sharing survives into the threshold
network (Section V-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.boolean.unate import syntactic_unateness
from repro.core.collapse import collapse_node
from repro.core.identify import ThresholdChecker
from repro.core.splitting import split_binate, split_k_way
from repro.core.theorems import theorem2_extend
from repro.core.threshold import (
    ThresholdGate,
    ThresholdNetwork,
    WeightThresholdVector,
    make_or_vector,
)
from repro.errors import SynthesisError
from repro.network.network import BooleanNetwork


@dataclass
class SynthesisOptions:
    """Tunable parameters of the TELS flow.

    Attributes:
        psi: fanin restriction ψ on every threshold gate (paper uses 3-8).
        delta_on / delta_off: defect tolerances in Eq. (1); the paper's
            experiments use ``delta_on`` in 0..3 and ``delta_off`` = 1.
        backend: ILP backend (``auto`` / ``exact`` / ``scipy``).
        seed: RNG seed for the random tie-breaks of splitting rule 4.
        apply_theorem2: enable the Theorem-2 combining step (ablation knob).
        preserve_sharing: treat fanout nodes as collapse barriers (ablation
            knob; the paper argues this preserves network structure).
        split_on_most_frequent: rule-3 splitting on the most frequent
            variable; when False a random variable is used instead
            (ablation knob for the Theorem-1-motivated heuristic).
        splitting_strategy: ``"paper"`` (Fig. 7 rules), ``"lookahead"``
            (ILP-guided split-variable selection), or ``"balanced"``
            (depth-oriented cube halving) — the future-work directions of
            the paper's conclusion, selectable per run.
        max_collapse_cubes: SOP size guard during collapsing.
    """

    psi: int = 3
    delta_on: int = 0
    delta_off: int = 1
    backend: str = "auto"
    seed: int = 0
    apply_theorem2: bool = True
    preserve_sharing: bool = True
    split_on_most_frequent: bool = True
    splitting_strategy: str = "paper"
    max_weight: int | None = None
    max_collapse_cubes: int = 128

    def __post_init__(self) -> None:
        if self.psi < 2:
            raise SynthesisError("fanin restriction must be at least 2")
        if self.delta_on < 0 or self.delta_off < 0:
            raise SynthesisError("defect tolerances must be non-negative")


@dataclass
class SynthesisReport:
    """Bookkeeping of one synthesis run."""

    nodes_processed: int = 0
    gates_emitted: int = 0
    binate_splits: int = 0
    unate_splits: int = 0
    kway_splits: int = 0
    theorem2_applications: int = 0
    and_factor_splits: int = 0
    checker: ThresholdChecker | None = None


class _Synthesizer:
    """One synthesis run: mutable working state bundled together."""

    def __init__(self, network: BooleanNetwork, options: SynthesisOptions):
        self.options = options
        self.work = network.copy(network.name)
        self.rng = random.Random(options.seed)
        self.checker = ThresholdChecker(
            delta_on=options.delta_on,
            delta_off=options.delta_off,
            backend=options.backend,
            max_weight=options.max_weight,
        )
        self.result = ThresholdNetwork(network.name + "_th")
        self.report = SynthesisReport(checker=self.checker)
        self.preserved = self._preserved_set()
        self.pending: list[str] = []
        self.done: set[str] = set()
        from repro.core.strategies import make_splitter

        self.splitter = make_splitter(
            options.splitting_strategy, self.checker, options.psi
        )

    def _preserved_set(self) -> frozenset[str]:
        preserved: set[str] = set(
            o for o in self.work.outputs if self.work.has_node(o)
        )
        if self.options.preserve_sharing:
            for signal, readers in self.work.fanout_map().items():
                if self.work.has_node(signal):
                    uses = len(readers) + (1 if self.work.is_output(signal) else 0)
                    if uses >= 2:
                        preserved.add(signal)
        return frozenset(preserved)

    # ------------------------------------------------------------------
    def run(self) -> ThresholdNetwork:
        for pi in self.work.inputs:
            self.result.add_input(pi)
        for out in self.work.outputs:
            self.result.add_output(out)
            if self.work.has_node(out):
                self.pending.append(out)
        budget = 1000 * (self.work.num_nodes + 10)
        while self.pending:
            name = self.pending.pop()
            if name in self.done or self.work.is_input(name):
                continue
            self.done.add(name)
            if self.report.nodes_processed > budget:
                raise SynthesisError(
                    "synthesis is not converging (split/collapse loop?)"
                )
            self.report.nodes_processed += 1
            function = collapse_node(
                self.work,
                name,
                self.options.psi,
                self.preserved - {name},
                max_cubes=self.options.max_collapse_cubes,
            )
            self._process(name, function)
        self.result.cleanup()
        self.result.check()
        return self.result

    # ------------------------------------------------------------------
    def _process(self, name: str, function: BooleanFunction) -> None:
        function = function.trimmed()
        if function.nvars == 0:
            self._emit_constant(name, not function.cover.is_zero())
            return
        if not syntactic_unateness(function.cover).is_unate:
            self._process_binate(name, function)
            return
        if function.nvars <= self.options.psi:
            vector = self.checker.check_function(function)
            if vector is not None:
                self._emit(name, function.variables, vector)
                return
        self._process_unate_nonthreshold(name, function)

    def _process_binate(self, name: str, function: BooleanFunction) -> None:
        self.report.binate_splits += 1
        parts = split_binate(function, self.options.psi, self.rng)
        if len(parts) < 2:
            raise SynthesisError(
                f"binate split of {name!r} produced {len(parts)} part(s)"
            )
        self._emit_or_of_parts(name, parts)

    def _emit_or_of_parts(
        self, name: str, parts: list[BooleanFunction]
    ) -> None:
        """Emit ``name = part_1 OR ... OR part_k``.

        When the largest part is itself a threshold function and the fanin
        budget allows, Theorem 2 folds it into the root gate directly (the
        remaining parts enter through weight ``T_pos + delta_on`` inputs),
        saving one gate per split — an XNOR costs two gates instead of
        three.  Otherwise the root is a plain ``<1,...,1;1>`` OR.
        """
        if self.options.apply_theorem2:
            largest = max(range(len(parts)), key=lambda i: parts[i].num_cubes)
            main = parts[largest]
            rest = [p for i, p in enumerate(parts) if i != largest]
            if main.nvars + len(rest) <= self.options.psi and rest:
                vector = self.checker.check_function(main)
                if vector is not None and self._theorem2_weight_ok(vector):
                    children = [self._new_node(p) for p in rest]
                    if len(set(children) | set(main.variables)) == len(
                        children
                    ) + main.nvars:
                        extended = theorem2_extend(
                            vector, len(children), self.options.delta_on
                        )
                        self._emit(
                            name,
                            tuple(main.variables) + tuple(children),
                            extended,
                        )
                        self.report.theorem2_applications += 1
                        return
                    # A child collapsed onto a signal the main part already
                    # reads; fall through to the plain OR root below, giving
                    # the children their own nodes.
        children = [self._new_node(part) for part in parts]
        if len(set(children)) != len(children):
            # Two parts reduced to the same signal; deduplicate.
            children = list(dict.fromkeys(children))
            if len(children) == 1:
                # The OR collapsed to a single signal: emit a buffer.
                vector = WeightThresholdVector((1,), 1)
                self._emit(name, (children[0],), vector)
                return
        self._emit(
            name,
            tuple(children),
            make_or_vector(
                len(children), self.options.delta_on, self.options.delta_off
            ),
        )

    def _process_unate_nonthreshold(
        self, name: str, function: BooleanFunction
    ) -> None:
        if function.num_cubes < 2:
            if function.nvars > self.options.psi:
                # One wide cube: break the AND into a tree of psi-input ANDs.
                self._split_large_cube(name, function)
                return
            # A single unate cube within the fanin bound is always a
            # threshold function, so reaching here means extreme defect
            # tolerances made even an AND infeasible; splitting cannot help.
            raise SynthesisError(
                f"single-cube node {name!r} has no threshold realization "
                f"under delta_on={self.options.delta_on}, "
                f"delta_off={self.options.delta_off}"
            )
        self.report.unate_splits += 1
        split = self.splitter(function, self.rng)
        if not self.options.split_on_most_frequent and split.mode == "or":
            split = self._random_or_split(function)
        if split.mode == "and":
            self._emit_and_root(name, split.parts)
            return
        larger = split.parts[split.larger_index]
        smaller = split.parts[1 - split.larger_index]
        if self.options.apply_theorem2 and larger.nvars + 1 <= self.options.psi:
            vector = self.checker.check_function(larger)
            if vector is not None and self._theorem2_weight_ok(vector):
                child = self._new_node(smaller)
                if child not in larger.variables:
                    extended = theorem2_extend(
                        vector, 1, self.options.delta_on
                    )
                    self._emit(
                        name, tuple(larger.variables) + (child,), extended
                    )
                    self.report.theorem2_applications += 1
                    return
        k = min(self.options.psi, function.num_cubes)
        parts = split_k_way(function, k)
        if len(parts) < 2:
            raise SynthesisError(f"k-way split of {name!r} failed")
        self.report.kway_splits += 1
        self._emit_or_of_parts(name, parts)

    def _split_large_cube(self, name: str, function: BooleanFunction) -> None:
        """Emit a wide AND cube as a tree of at-most-ψ-input AND gates."""
        cube = function.cover.cubes[0]
        literals = [(function.variables[v], ph) for v, ph in cube.literals()]
        psi = self.options.psi
        groups = [literals[i : i + psi] for i in range(0, len(literals), psi)]
        children: list[str] = []
        for group in groups:
            if len(group) == 1 and group[0][1]:
                children.append(group[0][0])
                if self.work.has_node(group[0][0]):
                    self.pending.append(group[0][0])
                continue
            names = [n for n, _ in group]
            child_func = BooleanFunction(
                Cover(
                    (
                        Cube.from_literals(
                            {i: ph for i, (_, ph) in enumerate(group)},
                            len(group),
                        ),
                    ),
                    len(group),
                ),
                names,
            )
            children.append(self._new_node(child_func))
        if len(children) > psi:
            # Too many chunks for one root: AND the children hierarchically.
            and_vars = tuple(children)
            child_func = BooleanFunction(
                Cover(
                    (
                        Cube.from_literals(
                            {i: True for i in range(len(and_vars))},
                            len(and_vars),
                        ),
                    ),
                    len(and_vars),
                ),
                and_vars,
            )
            self._split_large_cube(name, child_func)
            return
        root_func = BooleanFunction(
            Cover(
                (
                    Cube.from_literals(
                        {i: True for i in range(len(children))}, len(children)
                    ),
                ),
                len(children),
            ),
            tuple(children),
        )
        vector = self.checker.check_function(root_func)
        if vector is None:
            raise SynthesisError(f"AND tree root of {name!r} not threshold")
        self._emit(name, tuple(children), vector)

    def _theorem2_weight_ok(self, vector: WeightThresholdVector) -> bool:
        """Check the Theorem-2 extension weight against the weight bound."""
        if self.options.max_weight is None:
            return True
        new_weight = max(
            vector.to_positive_threshold() + self.options.delta_on, 0
        )
        return new_weight <= self.options.max_weight

    def _random_or_split(self, function: BooleanFunction):
        """Ablation variant of rule 3: split on a random present variable."""
        from repro.core.splitting import UnateSplit

        cover = function.cover.scc()
        present = cover.support_vars()
        self.rng.shuffle(present)
        for var in present:
            bit = 1 << var
            with_var = [c for c in cover.cubes if (c.pos | c.neg) & bit]
            without = [c for c in cover.cubes if not ((c.pos | c.neg) & bit)]
            if with_var and without:
                part_a = BooleanFunction(
                    Cover(with_var, cover.nvars), function.variables
                ).trimmed()
                part_b = BooleanFunction(
                    Cover(without, cover.nvars), function.variables
                ).trimmed()
                return UnateSplit("or", (part_a, part_b))
        half = (cover.num_cubes + 1) // 2
        part_a = BooleanFunction(
            Cover(cover.cubes[:half], cover.nvars), function.variables
        ).trimmed()
        part_b = BooleanFunction(
            Cover(cover.cubes[half:], cover.nvars), function.variables
        ).trimmed()
        return UnateSplit("or", (part_a, part_b))

    def _emit_and_root(
        self, name: str, parts: tuple[BooleanFunction, BooleanFunction]
    ) -> None:
        """Emit ``name = common-cube AND quotient`` (Fig. 7 rule 2)."""
        self.report.and_factor_splits += 1
        cube_part, quotient = parts
        if cube_part.num_cubes != 1:
            cube_part, quotient = quotient, cube_part
        child = self._new_node(quotient)
        # Root = AND of the common-cube literals and the quotient node.
        literal_names = list(cube_part.variables)
        variables = tuple(literal_names) + (child,)
        cube = cube_part.cover.cubes[0]
        lits = {var: phase for var, phase in cube.literals()}
        lits[len(literal_names)] = True
        root = BooleanFunction(
            Cover(
                (Cube.from_literals(lits, len(variables)),), len(variables)
            ),
            variables,
        )
        if root.nvars > self.options.psi:
            # The common cube alone exceeds psi: build an AND tree instead.
            self._split_large_cube(name, root)
            return
        vector = self.checker.check_function(root)
        if vector is None:
            raise SynthesisError(
                f"AND root of {name!r} unexpectedly not threshold"
            )
        self._emit(name, variables, vector)

    # ------------------------------------------------------------------
    def _new_node(self, function: BooleanFunction) -> str:
        """Install a split part as a fresh work node and queue it."""
        if function.nvars == 1 and function.num_cubes == 1:
            cube = function.cover.cubes[0]
            if cube.num_literals == 1 and cube.pos:
                # A bare positive literal needs no gate: reference the signal.
                signal = function.variables[0]
                if self.work.has_node(signal):
                    self.pending.append(signal)
                return signal
        name = self.work.fresh_name("t")
        self.work.add_node(name, function)
        self.pending.append(name)
        return name

    def _emit_constant(self, name: str, value: bool) -> None:
        threshold = 0 if value else 1 + self.options.delta_on
        gate = ThresholdGate(
            name,
            (),
            WeightThresholdVector((), threshold),
            self.options.delta_on,
            self.options.delta_off,
        )
        self.result.add_gate(gate)
        self.report.gates_emitted += 1

    def _emit(
        self,
        name: str,
        inputs: tuple[str, ...],
        vector: WeightThresholdVector,
    ) -> None:
        if len(inputs) > self.options.psi:
            raise SynthesisError(
                f"gate {name!r} fanin {len(inputs)} exceeds psi="
                f"{self.options.psi}"
            )
        gate = ThresholdGate(
            name,
            tuple(inputs),
            vector,
            self.options.delta_on,
            self.options.delta_off,
        )
        self.result.add_gate(gate)
        self.report.gates_emitted += 1
        for fanin in inputs:
            if self.work.has_node(fanin) and fanin not in self.done:
                self.pending.append(fanin)


def synthesize(
    network: BooleanNetwork,
    options: SynthesisOptions | None = None,
) -> ThresholdNetwork:
    """Run TELS on an (ideally algebraically-factored) Boolean network."""
    synthesizer = _Synthesizer(network, options or SynthesisOptions())
    return synthesizer.run()


def synthesize_with_report(
    network: BooleanNetwork,
    options: SynthesisOptions | None = None,
) -> tuple[ThresholdNetwork, SynthesisReport]:
    """Like :func:`synthesize` but also returns run statistics."""
    synthesizer = _Synthesizer(network, options or SynthesisOptions())
    result = synthesizer.run()
    return result, synthesizer.report
