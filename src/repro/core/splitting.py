"""Unate and binate node splitting (Figs. 7 and 8 of the paper).

When a collapsed node is not a threshold function it is split into smaller
nodes that are more likely to be.  The unate rules (Fig. 7):

1. every variable appears exactly once → halve the cube set (OR split);
2. some variable appears in every cube → factor the common cube out
   (AND split);
3. otherwise → group the cubes containing the most frequent variable
   (OR split), which per Theorem 1 leaves fewer literal-replacement
   opportunities that could certify non-thresholdness;
4. ties among most-frequent variables break randomly (seeded RNG).

The binate algorithm (Fig. 8) first splits on the most frequent binate
variable — cubes with the negative literal go to one part, everything else
to the other — and falls back to OR-style unate splitting until exactly
``k = min(ψ, |K_n|)`` parts exist; the parts are OR-combined by a
``<1, ..., 1; 1>`` gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.function import BooleanFunction
from repro.boolean.unate import Phase, syntactic_unateness
from repro.errors import SynthesisError


@dataclass(frozen=True)
class UnateSplit:
    """Result of a two-way unate split: ``mode`` is how parts recombine."""

    mode: Literal["or", "and"]
    parts: tuple[BooleanFunction, BooleanFunction]

    @property
    def larger_index(self) -> int:
        """Index of the part with more cubes (paper: 'choose the larger')."""
        a, b = self.parts
        return 0 if a.num_cubes >= b.num_cubes else 1


def split_unate(
    function: BooleanFunction, rng: random.Random
) -> UnateSplit:
    """Split a unate node per the Fig. 7 rules."""
    cover = function.cover.scc()
    if cover.num_cubes < 2:
        raise SynthesisError(
            "cannot split a node with fewer than two cubes"
        )
    function = BooleanFunction(cover, function.variables)

    # Rule 2: a variable present in every cube → factor out the common cube.
    common_pos = common_neg = ~0
    for cube in cover.cubes:
        common_pos &= cube.pos
        common_neg &= cube.neg
    mask = (1 << cover.nvars) - 1
    common_pos &= mask
    common_neg &= mask
    if common_pos or common_neg:
        common = Cube(common_pos, common_neg, cover.nvars)
        quotient = Cover(
            [
                Cube(c.pos & ~common_pos, c.neg & ~common_neg, cover.nvars)
                for c in cover.cubes
            ],
            cover.nvars,
        ).scc()
        part_a = BooleanFunction(
            Cover((common,), cover.nvars), function.variables
        ).trimmed()
        part_b = BooleanFunction(quotient, function.variables).trimmed()
        return UnateSplit("and", (part_a, part_b))

    # Rule 1: every variable appears exactly once → halve the cubes.
    occurrences = [0] * cover.nvars
    for cube in cover.cubes:
        for var, _ in cube.literals():
            occurrences[var] += 1
    present = [c for c in occurrences if c]
    if all(c == 1 for c in present):
        half = (cover.num_cubes + 1) // 2
        return _or_split(function, cover.cubes[:half], cover.cubes[half:])

    # Rule 3 (+ 4): group on the most frequent variable, random tie-break.
    top = max(occurrences)
    candidates = [v for v, c in enumerate(occurrences) if c == top]
    var = candidates[0] if len(candidates) == 1 else rng.choice(candidates)
    bit = 1 << var
    with_var = [c for c in cover.cubes if (c.pos | c.neg) & bit]
    without = [c for c in cover.cubes if not ((c.pos | c.neg) & bit)]
    if not without:
        # Only reachable off-contract (a binate cover, where the variable
        # appears in every cube but in mixed phases): partition by phase.
        with_var = [c for c in cover.cubes if c.pos & bit]
        without = [c for c in cover.cubes if not (c.pos & bit)]
    return _or_split(function, with_var, without)


def _or_split(
    function: BooleanFunction, cubes_a: list[Cube], cubes_b: list[Cube]
) -> UnateSplit:
    nvars = function.nvars
    part_a = BooleanFunction(Cover(cubes_a, nvars), function.variables).trimmed()
    part_b = BooleanFunction(Cover(cubes_b, nvars), function.variables).trimmed()
    return UnateSplit("or", (part_a, part_b))


def split_k_way(
    function: BooleanFunction, k: int
) -> list[BooleanFunction]:
    """Partition the cubes into ``k`` balanced OR-parts (last-resort split)."""
    cover = function.cover.scc()
    k = min(k, cover.num_cubes)
    if k < 1:
        raise SynthesisError("k-way split needs at least one part")
    groups: list[list[Cube]] = [[] for _ in range(k)]
    for i, cube in enumerate(cover.cubes):
        groups[i % k].append(cube)
    return [
        BooleanFunction(Cover(g, cover.nvars), function.variables).trimmed()
        for g in groups
    ]


def split_binate(
    function: BooleanFunction, psi: int, rng: random.Random
) -> list[BooleanFunction]:
    """Split a binate node into ``min(ψ, |K_n|)`` OR-parts (Fig. 8)."""
    cover = function.cover.scc()
    function = BooleanFunction(cover, function.variables)
    k = min(psi, cover.num_cubes)
    if k < 2:
        k = 2 if cover.num_cubes >= 2 else 1
    parts: list[BooleanFunction] = [function]

    def find_binate(parts: list[BooleanFunction]) -> int:
        for i, p in enumerate(parts):
            if p.num_cubes >= 2 and not syntactic_unateness(p.cover).is_unate:
                return i
        return -1

    while len(parts) < k:
        idx = find_binate(parts)
        if idx < 0:
            break
        part = parts.pop(idx)
        var = _most_frequent_binate(part, rng)
        bit = 1 << var
        negatives = [c for c in part.cover.cubes if c.neg & bit]
        others = [c for c in part.cover.cubes if not (c.neg & bit)]
        nvars = part.nvars
        parts.append(
            BooleanFunction(Cover(others, nvars), part.variables).trimmed()
        )
        parts.append(
            BooleanFunction(Cover(negatives, nvars), part.variables).trimmed()
        )
    while len(parts) < k:
        idx = next(
            (i for i, p in enumerate(parts) if p.num_cubes >= 2), -1
        )
        if idx < 0:
            break
        part = parts.pop(idx)
        half = (part.num_cubes + 1) // 2
        cubes = part.cover.cubes
        nvars = part.nvars
        parts.append(
            BooleanFunction(Cover(cubes[:half], nvars), part.variables).trimmed()
        )
        parts.append(
            BooleanFunction(Cover(cubes[half:], nvars), part.variables).trimmed()
        )
    return parts


def _most_frequent_binate(part: BooleanFunction, rng: random.Random) -> int:
    report = syntactic_unateness(part.cover)
    counts = []
    for var, phase in enumerate(report.phases):
        if phase is Phase.BINATE:
            pos, neg = part.cover.column_phases(var)
            counts.append((pos + neg, var))
    if not counts:
        raise SynthesisError("no binate variable in a binate part")
    top = max(c for c, _ in counts)
    candidates = [v for c, v in counts if c == top]
    return candidates[0] if len(candidates) == 1 else rng.choice(candidates)
