"""Node collapsing (Fig. 4 of the paper).

A node is repeatedly expanded by substituting in the local functions of its
fanins, stopping at primary inputs and at *fanout nodes* (members of the
preserved-sharing set S), and never letting the fanin count exceed the fanin
restriction ψ — a substitution that would is undone.  The result is the
widest function the threshold check is allowed to attempt for this node.
"""

from __future__ import annotations

from repro.boolean.function import BooleanFunction
from repro.network.network import BooleanNetwork


def collapse_node(
    network: BooleanNetwork,
    node: str,
    psi: int,
    preserved: frozenset[str] | set[str],
    max_cubes: int = 128,
) -> BooleanFunction:
    """Collapse ``node`` per Fig. 4; returns the collapsed local function.

    Args:
        network: the Boolean network being synthesized.
        node: name of the node to collapse.
        psi: fanin restriction (ψ > 0).
        preserved: the sharing set S — fanout nodes (and primary-output
            nodes) whose boundaries must survive into the threshold network.
        max_cubes: guard against SOP blow-up during substitution; a
            substitution growing the cover beyond this is undone exactly
            like a fanin-restriction violation.

    Returns:
        The collapsed function; its variables are all primary inputs,
        preserved nodes, or nodes that could not be substituted without
        violating ψ.
    """
    current = network.function(node).trimmed()
    blocked: set[str] = set()

    def eligible(name: str) -> bool:
        return (
            name not in blocked
            and name not in preserved
            and not network.is_input(name)
        )

    while current.nvars <= psi:
        substituted = False
        for name in list(current.variables):
            if not eligible(name):
                continue
            candidate = current.substitute(name, network.function(name))
            if candidate.nvars <= psi and candidate.num_cubes <= max_cubes:
                current = candidate
                substituted = True
                continue
            # Fig. 4 would undo here.  But the bound may only be violated
            # transiently: substituting the *other* eligible fanins too can
            # bring the support back under psi (e.g. collapsing both halves
            # of an AND/OR pair into a single majority gate).  Look ahead by
            # eagerly collapsing the candidate before giving up.
            eager = _eager_collapse(
                network, candidate, eligible, psi, max_cubes
            )
            if eager is not None:
                current = eager
                substituted = True
            else:
                blocked.add(name)  # undo: keep `current` unchanged
        frontier = [n for n in current.variables if eligible(n)]
        if not substituted or not frontier:
            break
    return current


_EAGER_VAR_CAP_FACTOR = 3


def _eager_collapse(
    network: BooleanNetwork,
    function: BooleanFunction,
    eligible,
    psi: int,
    max_cubes: int,
) -> BooleanFunction | None:
    """Fully substitute eligible fanins; accept only a <= psi result.

    Intermediate supports may exceed psi (that is the point), but are capped
    at a small multiple of psi so runaway cones abort quickly.
    """
    var_cap = max(psi * _EAGER_VAR_CAP_FACTOR, psi + 4)
    current = function
    changed = True
    while changed:
        changed = False
        if current.nvars > var_cap or current.num_cubes > max_cubes:
            return None
        for name in list(current.variables):
            if not eligible(name):
                continue
            candidate = current.substitute(name, network.function(name))
            if candidate.nvars > var_cap or candidate.num_cubes > max_cubes:
                return None
            current = candidate
            changed = True
    if current.nvars <= psi and current.num_cubes <= max_cubes:
        return current
    return None
