"""Alternative splitting strategies (the paper's future-work directions).

The conclusions of the paper suggest that "there may also exist better
partitioning heuristics" and that "different heuristics [may be] required
depending upon the optimization criteria".  This module implements two such
strategies next to the paper's Fig. 7 rules:

* ``lookahead`` — evaluate every candidate split variable with the actual
  ILP threshold check and pick the split whose parts are threshold
  functions (both if possible, else the larger one).  More ILP calls (all
  memoized), fewer recursion levels.
* ``balanced`` — ignore variable frequency and always halve the cube set,
  which minimizes the depth of the OR tree the recursion builds
  (delay-oriented criterion).

``make_splitter`` returns a callable with the same signature as
:func:`repro.core.splitting.split_unate`, so the synthesis engine treats
all strategies uniformly.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import Protocol

from repro.boolean.cover import Cover
from repro.boolean.function import BooleanFunction
from repro.core.splitting import UnateSplit, split_unate
from repro.errors import SynthesisError

Splitter = Callable[[BooleanFunction, random.Random], UnateSplit]


class _ChecksThreshold(Protocol):
    def check_function(self, function: BooleanFunction):
        ...


STRATEGIES = ("paper", "lookahead", "balanced")


def make_splitter(
    strategy: str,
    checker: _ChecksThreshold | None = None,
    psi: int = 3,
    options=None,
) -> Splitter:
    """Build the unate splitter for a strategy name.

    ``options`` (a :class:`~repro.core.synthesis.SynthesisOptions`) is an
    alternative way to configure the oracle-backed strategies: it supplies
    ``psi`` and, when no ``checker`` is passed, a checker built with the
    run's ILP backend / tolerance / fast-path configuration.
    """
    if options is not None:
        psi = options.psi
    if strategy == "paper":
        return split_unate
    if strategy == "balanced":
        return _split_balanced
    if strategy == "lookahead":
        if checker is None and options is not None:
            from repro.core.identify import ThresholdChecker

            checker = ThresholdChecker.from_options(options)
        if checker is None:
            raise SynthesisError("lookahead strategy needs a checker")
        return _LookaheadSplitter(checker, psi)
    raise SynthesisError(
        f"unknown splitting strategy {strategy!r}; choose from {STRATEGIES}"
    )


def _split_balanced(
    function: BooleanFunction, rng: random.Random
) -> UnateSplit:
    """Halve the cube set regardless of variable structure."""
    cover = function.cover.scc()
    if cover.num_cubes < 2:
        raise SynthesisError("cannot split a node with fewer than two cubes")
    half = (cover.num_cubes + 1) // 2
    part_a = BooleanFunction(
        Cover(cover.cubes[:half], cover.nvars), function.variables
    ).trimmed()
    part_b = BooleanFunction(
        Cover(cover.cubes[half:], cover.nvars), function.variables
    ).trimmed()
    return UnateSplit("or", (part_a, part_b))


class _LookaheadSplitter:
    """Rule-3 with an ILP oracle instead of the frequency heuristic."""

    def __init__(self, checker: _ChecksThreshold, psi: int):
        self._checker = checker
        self._psi = psi

    def __call__(
        self, function: BooleanFunction, rng: random.Random
    ) -> UnateSplit:
        cover = function.cover.scc()
        if cover.num_cubes < 2:
            raise SynthesisError(
                "cannot split a node with fewer than two cubes"
            )
        base = split_unate(function, rng)
        if base.mode == "and":
            return base  # common-cube factoring is already ideal
        best = base
        best_score = self._score(base)
        for var in cover.support_vars():
            bit = 1 << var
            with_var = [c for c in cover.cubes if (c.pos | c.neg) & bit]
            without = [c for c in cover.cubes if not ((c.pos | c.neg) & bit)]
            if not with_var or not without:
                continue
            candidate = UnateSplit(
                "or",
                (
                    BooleanFunction(
                        Cover(with_var, cover.nvars), function.variables
                    ).trimmed(),
                    BooleanFunction(
                        Cover(without, cover.nvars), function.variables
                    ).trimmed(),
                ),
            )
            score = self._score(candidate)
            if score > best_score:
                best, best_score = candidate, score
                if best_score >= 4:
                    break  # both halves threshold within psi: cannot improve
        return best

    def _score(self, split: UnateSplit) -> int:
        """2 points per threshold part that fits the fanin bound."""
        score = 0
        for part in split.parts:
            if part.nvars > self._psi:
                continue
            if self._checker.check_function(part) is not None:
                score += 2
        return score
