"""The ``tels`` command line — the Fig. 9 TELS command set, plus experiments.

Commands mirroring the five commands of the original tool:

* ``tels stats FILE``       — network information (gates, levels, literals);
* ``tels map FILE``         — one-to-one threshold mapping of the optimized
  decomposed network;
* ``tels synth FILE``       — TELS threshold synthesis;
* ``tels simulate FILE``    — synthesize and simulate against the source for
  functional correctness;
* ``tels print-th FILE``    — display a synthesized threshold network.

Extras for the reproduction:

* ``tels bench NAME``       — emit a benchmark stand-in as BLIF;
* ``tels table1`` / ``fig10`` / ``fig11`` / ``fig12`` — regenerate the
  paper's experiments;
* ``tels sweep``            — delta_on sweep sharing one engine result store;
* ``tels enumerate N``      — the Section VI-B function counts.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys

from repro.benchgen.mcnc import benchmark_names
from repro.core.area import boolean_stats, network_stats
from repro.core.mapping import one_to_one_map
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.core.threshold import gate_table
from repro.core.verify import verify_threshold_network
from repro.errors import ReproError
from repro.io.blif import read_blif, to_blif, write_blif
from repro.io.thblif import (
    parse_thblif,
    read_thblif,
    to_thblif,
    write_thblif,
)
from repro.network.scripts import prepare_one_to_one, prepare_tels


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    from repro.ilp.backends import registered_backends

    parser.add_argument(
        "--ilp-backend",
        "--backend",  # legacy alias
        dest="ilp_backend",
        default="auto",
        choices=("auto", *registered_backends()),
        help="ILP solver backend",
    )
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable the Chow-parameter fast path (always solve the ILP)",
    )
    parser.add_argument(
        "--no-presolve",
        action="store_true",
        help="disable the ILP presolve reductions",
    )


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent synthesis-cache directory "
        "(default: the TELS_CACHE environment variable, if set)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the persistent cache even when TELS_CACHE is set",
    )


def _cache_dir(args: argparse.Namespace) -> str | None:
    """Resolve the persistent-cache directory from flags and environment."""
    import os

    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache", None)
    if explicit:
        return explicit
    return os.environ.get("TELS_CACHE") or None


def _add_gate_model_arg(parser: argparse.ArgumentParser) -> None:
    from repro.gates import model_names

    parser.add_argument(
        "--gate-model",
        default="ltg",
        choices=model_names(),
        help="gate-model backend: ltg (paper default), multi-threshold "
        "(k-threshold gates absorbing parity cones), flash "
        "(grid-quantized weights with drift-derived margins)",
    )


def _add_synthesis_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--psi", type=int, default=3, help="fanin restriction")
    _add_gate_model_arg(parser)
    parser.add_argument("--delta-on", type=int, default=0, help="ON tolerance")
    parser.add_argument("--delta-off", type=int, default=1, help="OFF tolerance")
    parser.add_argument("--seed", type=int, default=0, help="tie-break seed")
    _add_backend_args(parser)
    _add_cache_args(parser)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="cone-synthesis worker processes (0 = all cores)",
    )
    parser.add_argument(
        "--distribute",
        metavar="URL",
        default=None,
        help="farm cones to `tels worker` processes through this serve "
        "daemon; on total worker loss the run degrades to a local "
        "executor and still completes with identical output",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the static lint post-pass over the synthesized network",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="run the whole-network dataflow analysis post-pass "
        "(certificate + verified removal candidates in the trace summary)",
    )
    parser.add_argument(
        "--deadline-per-cone",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cone; a cone blowing it degrades to "
        "the one-to-one mapping (see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--deadline-total",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole run; unfinished cones "
        "degrade on expiry",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="dispatch attempts per cone before degrading (transient "
        "failures retry with exponential backoff)",
    )
    parser.add_argument(
        "--strict-synthesis",
        action="store_true",
        help="fail instead of degrading a cone that times out, crashes "
        "repeatedly, or exhausts its retries",
    )


def _options(args: argparse.Namespace) -> SynthesisOptions:
    return SynthesisOptions(
        psi=args.psi,
        delta_on=args.delta_on,
        delta_off=args.delta_off,
        seed=args.seed,
        backend=args.ilp_backend,
        gate_model=getattr(args, "gate_model", "ltg"),
        use_fastpath=not args.no_fastpath,
        use_presolve=not args.no_presolve,
        lint=not getattr(args, "no_lint", False),
        analyze=getattr(args, "analyze", False),
        deadline_per_cone_s=getattr(args, "deadline_per_cone", None),
        deadline_total_s=getattr(args, "deadline_total", None),
        max_attempts=getattr(args, "max_attempts", 3),
        strict_synthesis=getattr(args, "strict_synthesis", False),
    )


def _jobs(args: argparse.Namespace) -> int:
    return getattr(args, "jobs", 1)


def cmd_stats(args: argparse.Namespace) -> int:
    network = read_blif(args.file)
    stats = boolean_stats(network)
    print(f"model:    {network.name}")
    print(f"inputs:   {len(network.inputs)}")
    print(f"outputs:  {len(network.outputs)}")
    print(f"nodes:    {stats.gates}")
    print(f"levels:   {stats.levels}")
    print(f"literals: {stats.area}")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.errors import SynthesisCancelled

    network = read_blif(args.file)
    prepared = prepare_tels(network)
    # Ctrl-C cancels cooperatively: the first SIGINT sets the flag, the
    # scheduler stops between cones and reaps its pool workers (a second
    # Ctrl-C falls through to the default handler and kills the process).
    cancel = threading.Event()

    def _on_sigint(signum, frame):
        if cancel.is_set():
            raise KeyboardInterrupt
        cancel.set()
        print(
            "tels synth: interrupt received, stopping between cones "
            "(Ctrl-C again to kill)",
            file=sys.stderr,
        )

    try:
        previous = signal.signal(signal.SIGINT, _on_sigint)
    except ValueError:  # not the main thread (embedded use): no handler
        previous = None
    try:
        threshold_net, report = synthesize_with_report(
            prepared,
            _options(args),
            jobs=_jobs(args),
            cache_dir=_cache_dir(args),
            cancel=cancel,
            distribute=getattr(args, "distribute", None),
        )
    except SynthesisCancelled as exc:
        print(f"tels synth: {exc}", file=sys.stderr)
        return 130
    finally:
        if previous is not None:
            signal.signal(signal.SIGINT, previous)
    ok = verify_threshold_network(network, threshold_net)
    stats = network_stats(threshold_net)
    print(f"TELS: {stats} verified={ok}")
    print(
        f"processed={report.nodes_processed} binate_splits="
        f"{report.binate_splits} unate_splits={report.unate_splits} "
        f"theorem2={report.theorem2_applications}"
    )
    check = report.checker.stats if report.checker else None
    if check is not None:
        print(
            f"checks: {check.calls} calls, {check.cache_hits} cache hits "
            f"({100.0 * check.cache_hit_rate:.1f}%), "
            f"{check.ilp_solved} ILPs ({check.ilp_feasible} feasible), "
            f"constraints {check.constraints_emitted} "
            f"(vs {check.constraints_without_elimination} unrestricted)"
        )
        print(
            f"fastpath: {check.fastpath_hits} hits, "
            f"{check.fastpath_negatives} negatives, "
            f"{check.fastpath_misses} misses "
            f"({100.0 * check.fastpath_hit_rate:.1f}% resolved without ILP)"
        )
        print(
            f"solvers: exact {check.exact_solves} solves "
            f"{check.exact_wall_s:.3f}s, "
            f"scipy {check.scipy_solves} solves {check.scipy_wall_s:.3f}s, "
            f"presolve removed {check.presolve_rows_removed} rows"
        )
    if report.trace is not None:
        print(report.trace.format_summary())
    cache_dir = _cache_dir(args)
    store = report.checker.store if report.checker else None
    if cache_dir and store is not None and store.persistent is not None:
        s = store.stats
        print(
            f"cache: {cache_dir} holds {len(store.persistent)} entries; "
            f"this run: {s.persistent_hits} hits, "
            f"{s.persistent_misses} misses, "
            f"{s.transformed_hits} NP-transformed, "
            f"{s.transform_rejects} rejected"
        )
    if report.degraded_cones:
        cones = ", ".join(
            f"{d.task_id} ({d.reason})" for d in report.degraded
        )
        print(
            f"warning: {report.degraded_cones} cone(s) degraded to "
            f"one-to-one mapping: {cones}",
            file=sys.stderr,
        )
    lint_failed = False
    if report.lint is not None:
        from repro.lint.emitters import format_text

        if not report.lint.is_clean:
            print(format_text(report.lint))
        lint_failed = report.lint.violations > 0
    if args.output:
        write_thblif(threshold_net, args.output)
        print(f"wrote {args.output}")
    elif args.print_network:
        print(to_thblif(threshold_net), end="")
    return 0 if ok and not lint_failed else 1


def cmd_map(args: argparse.Namespace) -> int:
    network = read_blif(args.file)
    prepared = prepare_one_to_one(network, max_fanin=args.psi)
    threshold_net = one_to_one_map(
        prepared, delta_on=args.delta_on, delta_off=args.delta_off,
        backend=args.ilp_backend,
    )
    ok = verify_threshold_network(network, threshold_net)
    print(f"one-to-one: {network_stats(threshold_net)} verified={ok}")
    if args.output:
        write_thblif(threshold_net, args.output)
        print(f"wrote {args.output}")
    return 0 if ok else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    network = read_blif(args.file)
    prepared = prepare_tels(network)
    threshold_net, _ = synthesize_with_report(prepared, _options(args))
    ok = verify_threshold_network(network, threshold_net, vectors=args.vectors)
    mode = (
        "exhaustively"
        if len(network.inputs) <= 14
        else f"with {args.vectors} random vectors"
    )
    print(f"simulated {mode}: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def cmd_print_th(args: argparse.Namespace) -> int:
    network = read_thblif(args.file)
    stats = network_stats(network)
    print(f"model: {network.name}  ({stats})")
    for name, inputs, vector in gate_table(network):
        print(f"  {name:24s} <- [{inputs}]  {vector}")
    return 0


def _expand_paths(paths: list[str], suffixes: tuple[str, ...]) -> list[str]:
    """Expand directories into their matching files (sorted), keep files."""
    from pathlib import Path

    out: list[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            matches = sorted(
                str(f)
                for f in p.iterdir()
                if f.is_file() and f.suffix in suffixes
            )
            out.extend(matches)
        else:
            out.append(raw)
    return out


def _analyze_load(args: argparse.Namespace, path: str):
    """Load one analyze input: (threshold network, golden BooleanNetwork)."""
    from repro.analysis import threshold_to_boolean

    if path.endswith(".th"):
        network = read_thblif(path)
        return network, threshold_to_boolean(network)
    source = read_blif(path)
    prepared = prepare_tels(source)
    network, _ = synthesize_with_report(prepared, _options(args))
    return network, source


def cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        AnalysisOptions,
        analyze_threshold_network,
        apply_removals,
    )
    from repro.analysis.report import format_analysis_report
    from repro.core.analysis import analyze_network, format_analysis
    from repro.core.technology import format_mobile_report, mobile_report
    from repro.lint.diagnostics import (
        EXIT_CLEAN,
        EXIT_USAGE,
        EXIT_VIOLATIONS,
        LintOptions,
        merge_reports,
    )
    from repro.lint.emitters import render
    from repro.lint.runner import run_lint

    files = _expand_paths(args.files, (".th", ".blif"))
    if not files:
        print("analyze: no input files found", file=sys.stderr)
        return EXIT_USAGE
    if args.apply and len(files) != 1:
        print(
            "analyze: --apply takes exactly one input file",
            file=sys.stderr,
        )
        return EXIT_USAGE

    gate_model = getattr(args, "gate_model", "ltg")
    aopts = AnalysisOptions(
        gate_model=gate_model,
        vectors=args.vectors,
        seed=getattr(args, "seed", 0),
    )
    entries = []  # (path, network, golden source, AnalysisResult, report)
    for path in files:
        network, golden = _analyze_load(args, path)
        result = analyze_threshold_network(network, aopts)
        report = run_lint(
            network,
            LintOptions(
                analysis=True,
                gate_model=gate_model,
                gate_lines=dict(network.gate_lines),
            ),
            source=golden,
            file=path,
            analysis=result,
        )
        entries.append((path, network, golden, result, report))

    merged = merge_reports(
        [e[4] for e in entries], name=f"{len(entries)} files"
    )
    unverified = sum(len(e[3].unverified_findings) for e in entries)

    if args.apply:
        return _analyze_apply(args, entries[0], apply_removals)

    if args.format == "text":
        blocks = []
        for path, network, _, result, _ in entries:
            blocks.append(
                "\n\n".join(
                    (
                        format_analysis(analyze_network(network)),
                        format_mobile_report(mobile_report(network)),
                        format_analysis_report(result),
                    )
                )
            )
        text = ("\n\n" + "=" * 60 + "\n\n").join(blocks)
        if merged.diagnostics:
            text += "\n\n" + render(merged, "text")
    elif args.format == "json":
        text = json.dumps(
            {
                "files": [
                    {"file": path, **result.to_dict()}
                    for path, _, _, result, _ in entries
                ],
                "unverified_findings": unverified,
            },
            indent=2,
            sort_keys=True,
        )
    else:
        text = render(merged, "sarif")

    if args.output:
        Path(args.output).write_text(text + "\n")
    else:
        print(text)
    return EXIT_VIOLATIONS if unverified else EXIT_CLEAN


def _analyze_apply(args: argparse.Namespace, entry, apply_removals) -> int:
    """The ``tels analyze --apply`` round-trip: rewrite, re-lint, re-verify."""
    from repro.lint.diagnostics import (
        EXIT_CLEAN,
        EXIT_VIOLATIONS,
        LintOptions,
    )
    from repro.lint.emitters import render
    from repro.lint.runner import run_lint

    path, network, golden, result, _ = entry
    gate_model = getattr(args, "gate_model", "ltg")
    rewritten, applied = apply_removals(
        network, result.findings, vectors=args.vectors
    )
    if not applied:
        print(f"{path}: no verified removals to apply")
        return EXIT_CLEAN

    # Round-trip gate 1: the rewritten network must re-lint without new
    # errors before anything touches the filesystem.
    post = run_lint(
        rewritten,
        LintOptions(gate_model=gate_model),
        source=golden,
        file=path,
    )
    if post.errors:
        print(render(post, "text"), file=sys.stderr)
        print(
            f"analyze: rewritten network fails lint with {post.errors} "
            "error(s); not writing",
            file=sys.stderr,
        )
        return EXIT_VIOLATIONS
    # Round-trip gate 2: packed golden compare against the source Boolean
    # network (for .th inputs, the truth-table mirror of the original).
    if not verify_threshold_network(golden, rewritten, vectors=args.vectors):
        print(
            "analyze: rewritten network is NOT equivalent to the source; "
            "not writing",
            file=sys.stderr,
        )
        return EXIT_VIOLATIONS

    out_path = args.output
    if not out_path:
        out_path = path if path.endswith(".th") else path + ".th"
    write_thblif(rewritten, out_path)
    for finding in applied:
        print(f"applied: {finding.message}")
    print(
        f"wrote {out_path}: {len(applied)} removal(s) applied, "
        f"{network.num_gates} -> {rewritten.num_gates} gates, "
        "equivalence verified"
    )
    return EXIT_CLEAN


def cmd_verilog(args: argparse.Namespace) -> int:
    from repro.io.verilog import threshold_to_verilog

    if args.file.endswith(".th"):
        network = read_thblif(args.file)
    else:
        source = read_blif(args.file)
        prepared = prepare_tels(source)
        network, _ = synthesize_with_report(prepared, _options(args))
    text = threshold_to_verilog(network)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.benchgen.extended import all_benchmark_names
    from repro.experiments.extended_suite import format_suite, run_suite

    names = [n for n in all_benchmark_names() if args.full or n != "i10"]
    summary = run_suite(
        names,
        psi=args.psi,
        seed=args.seed,
        jobs=args.jobs,
        backend=args.ilp_backend,
        cache_dir=_cache_dir(args),
        gate_model=getattr(args, "gate_model", "ltg"),
    )
    print(format_suite(summary))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import format_sweep, run_delta_sweep

    points = run_delta_sweep(
        args.benchmarks,
        delta_ons=tuple(args.deltas),
        delta_off=args.delta_off,
        psi=args.psi,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=_cache_dir(args),
        gate_model=getattr(args, "gate_model", "ltg"),
    )
    print(format_sweep(points))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.corpus is not None:
        # Suite mode: wrap benchmarks/synth_bench (the CI artifact script).
        # The benchmarks package lives next to src/, not inside it, so it
        # is reached through the repo root when running from a checkout.
        import sys as _sys
        from pathlib import Path as _Path

        repo_root = _Path(__file__).resolve().parents[2]
        if str(repo_root) not in _sys.path:
            _sys.path.insert(0, str(repo_root))
        from benchmarks.synth_bench import main as bench_main

        bench_args = ["--corpus", args.corpus, "--jobs", str(args.jobs)]
        if args.output:
            bench_args += ["-o", args.output]
        return bench_main(bench_args)
    if args.name is None:
        print("error: bench requires a benchmark name (or --corpus)")
        return 2
    from repro.benchgen.extended import build_extended_benchmark

    network = build_extended_benchmark(args.name)
    text = to_blif(network)
    if args.output:
        write_blif(network, args.output)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import format_table1, run_table1

    names = args.benchmarks or benchmark_names(include_large=not args.small)
    rows = run_table1(names, psi=args.psi, seed=args.seed)
    print(format_table1(rows))
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    from repro.experiments.fig10 import format_fig10, run_fig10

    points = run_fig10(args.benchmark, seed=args.seed)
    print(format_fig10(points, args.benchmark))
    return 0


def cmd_fig11(args: argparse.Namespace) -> int:
    from repro.experiments.fig11 import format_fig11, run_fig11

    points = run_fig11(trials=args.trials, seed=args.seed)
    print(format_fig11(points))
    return 0


def cmd_fig12(args: argparse.Namespace) -> int:
    from repro.experiments.fig12 import format_fig12, run_fig12

    points = run_fig12(trials=args.trials, seed=args.seed)
    print(format_fig12(points))
    return 0


def _require_cache_dir(args: argparse.Namespace) -> str | None:
    cache_dir = _cache_dir(args)
    if cache_dir is None:
        print(
            "no cache directory: pass --cache DIR or set TELS_CACHE",
            file=sys.stderr,
        )
    return cache_dir


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache.store import cache_file, open_cache

    cache_dir = _require_cache_dir(args)
    if cache_dir is None:
        return 2

    if args.cache_command == "stats":
        cache = open_cache(cache_dir, read_only=True)
        info = cache.file_stats
        print(f"cache:    {cache_file(cache_dir)}")
        print(f"entries:  {len(cache)}")
        print(f"solved:   {cache.solved_count}")
        print(f"negative: {len(cache) - cache.solved_count}")
        if info.rejected_header:
            print("header:   REJECTED (stale format/version/fingerprint)")
        if info.corrupt_lines:
            print(f"corrupt:  {info.corrupt_lines} lines skipped")
        return 0

    if args.cache_command == "clear":
        cache = open_cache(cache_dir)
        removed = len(cache)
        cache.clear()
        print(f"cleared {removed} entries from {cache_file(cache_dir)}")
        return 0

    # warm: synthesize the named benchmarks against the cache to seed it.
    from repro.benchgen.extended import build_extended_benchmark
    from repro.engine.store import ResultStore
    from repro.network.scripts import prepare_tels

    store = ResultStore.with_cache_dir(cache_dir)
    for name in args.benchmarks:
        source = build_extended_benchmark(name)
        synthesize_with_report(
            prepare_tels(source),
            SynthesisOptions(psi=args.psi, seed=args.seed),
            jobs=_jobs(args),
            store=store,
        )
        print(f"warmed {name}: cache now {len(store.persistent)} entries")
    s = store.stats
    print(
        f"warm run: {s.persistent_hits} persistent hits, "
        f"{s.persistent_misses} misses; "
        f"{len(store.persistent)} entries on disk"
    )
    return 0


def _lint_one_file(
    args: argparse.Namespace, path: str, rules: tuple[str, ...] | None
):
    """Lint one ``.th`` file.  Returns ``(LintReport | None, parse_failed)``."""
    from pathlib import Path

    from repro.errors import BlifError
    from repro.lint.diagnostics import LintOptions, LintReport
    from repro.lint.rules import parse_diagnostic
    from repro.lint.runner import run_lint

    try:
        text = Path(path).read_text()
    except OSError as exc:
        print(f"lint: cannot read {path}: {exc}", file=sys.stderr)
        return None, True
    try:
        # validate=False: structural defects (cycles, dangling fanins,
        # undriven outputs) should surface as TLS0xx findings, not as a
        # blanket parse failure.
        network = parse_thblif(
            text, default_name=Path(path).stem, validate=False
        )
    except BlifError as exc:
        # Parse failures are reported through the same diagnostic pipe as
        # lint findings (rule TLP201) so --format json/sarif still applies.
        message = str(exc)
        if exc.line_number is not None:
            prefix = f"line {exc.line_number}: "
            message = message.removeprefix(prefix)
        report = LintReport(
            network_name=Path(path).stem,
            diagnostics=(
                parse_diagnostic(message, file=path, line=exc.line_number),
            ),
            rules_run=("TLP201",),
            file=path,
        )
        return report, True
    options = LintOptions(
        psi=args.psi,
        rules=rules,
        strict=args.strict,
        gate_model=getattr(args, "gate_model", "ltg"),
        gate_lines=dict(network.gate_lines),
        analysis=getattr(args, "analysis", False),
    )
    return run_lint(network, options, file=path), False


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint.diagnostics import EXIT_USAGE, merge_reports
    from repro.lint.emitters import render
    from repro.lint.rules import registered_rules

    if args.list_rules:
        for rule in registered_rules():
            print(
                f"{rule.rule_id}  {rule.severity.value:7s} "
                f"{rule.category:9s} {rule.name}"
            )
        return 0
    files = _expand_paths(args.files, (".th",))
    if not files:
        print("lint: a FILE argument is required", file=sys.stderr)
        return EXIT_USAGE

    rules = (
        tuple(r for part in args.rules for r in part.split(",") if r)
        if args.rules
        else None
    )
    reports = []
    parse_failed = False
    for path in files:
        report, failed = _lint_one_file(args, path, rules)
        parse_failed |= failed
        if report is not None:
            reports.append(report)
    if not reports:
        return EXIT_USAGE
    merged = merge_reports(reports, name=f"{len(reports)} files")
    text = render(merged, args.format)
    if args.output:
        Path(args.output).write_text(text + "\n")
    else:
        print(text)
    if parse_failed:
        return EXIT_USAGE
    return merged.exit_code(strict=args.strict)


def cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.serve.app import ServeApp

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    app = ServeApp(
        host=args.host,
        port=args.port,
        cache_dir=_cache_dir(args),
        journal_dir=args.journal,
        max_workers=args.max_workers,
        queue_limit=args.queue_limit,
        lease_s=args.lease_s,
    )
    print(f"tels serve listening on {app.url}")
    if app.manager.journal is not None:
        print(f"jobs journal: {app.manager.journal.path}")
    try:
        app.serve_forever()
    except KeyboardInterrupt:
        print("tels serve: shutting down", file=sys.stderr)
    finally:
        app.shutdown()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    import logging
    import signal
    import threading

    from repro.serve.client import resolve_url
    from repro.serve.worker import run_worker

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    stop = threading.Event()
    with contextlib.suppress(ValueError):  # not the main thread
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        done = run_worker(
            resolve_url(args.url),
            worker_id=args.worker_id,
            max_tasks=args.max_tasks,
            poll_s=args.poll_s,
            stop=stop,
            use_network_cache=not args.no_network_cache,
        )
    except KeyboardInterrupt:
        stop.set()
        print("tels worker: shutting down", file=sys.stderr)
        return 0
    print(f"tels worker: {done} cone(s) completed", file=sys.stderr)
    return 0


def _client(args: argparse.Namespace):
    from repro.serve.client import TelsClient

    return TelsClient(base_url=args.url)


def _api_options(args: argparse.Namespace) -> dict:
    """Synthesis flags as a job-API options dict (defaults elided)."""
    options = {
        "psi": args.psi,
        "delta_on": args.delta_on,
        "delta_off": args.delta_off,
        "seed": args.seed,
        "backend": args.ilp_backend,
        "gate_model": getattr(args, "gate_model", "ltg"),
        "use_fastpath": not args.no_fastpath,
        "use_presolve": not args.no_presolve,
        "lint": not getattr(args, "no_lint", False),
        "deadline_per_cone_s": getattr(args, "deadline_per_cone", None),
        "deadline_total_s": getattr(args, "deadline_total", None),
        "max_attempts": getattr(args, "max_attempts", 3),
        "strict_synthesis": getattr(args, "strict_synthesis", False),
    }
    return {k: v for k, v in options.items() if v is not None}


def _print_snapshot(snapshot: dict) -> None:
    print(json.dumps(snapshot, indent=2))


def cmd_submit(args: argparse.Namespace) -> int:
    from pathlib import Path

    client = _client(args)
    blif = Path(args.file).read_text()
    name = args.name or Path(args.file).stem
    snapshot = client.submit(
        blif,
        name=name,
        options=_api_options(args),
        jobs=_jobs(args),
        use_cache=not args.no_cache,
    )
    job_id = snapshot["id"]
    if not args.wait:
        print(job_id)
        return 0
    print(f"submitted {job_id} ({name}); waiting", file=sys.stderr)
    final = client.wait(job_id, timeout=args.timeout)
    _print_snapshot(final)
    if final["state"] != "done":
        return 1
    summary = final.get("summary") or {}
    ok = bool(summary.get("verified"))
    lint_clean = summary.get("lint_clean")
    return 0 if ok and lint_clean in (True, None) else 1


def cmd_status_job(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.job_id:
        _print_snapshot(client.status(args.job_id))
    else:
        _print_snapshot({"jobs": client.jobs()})
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    client = _client(args)
    result = client.result(args.job_id, fmt=args.format)
    text = (
        result
        if isinstance(result, str)
        else json.dumps(result, indent=2) + "\n"
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    client = _client(args)
    for event in client.events(args.job_id, since=args.since):
        print(json.dumps(event, separators=(",", ":")), flush=True)
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    client = _client(args)
    _print_snapshot(client.cancel(args.job_id))
    return 0


def cmd_daemon_stats(args: argparse.Namespace) -> int:
    _print_snapshot(_client(args).stats())
    return 0


def cmd_enumerate(args: argparse.Namespace) -> int:
    from repro.experiments.enumeration import (
        PAPER_COUNTS,
        count_positive_unate_threshold,
    )

    result = count_positive_unate_threshold(args.nvars)
    paper = PAPER_COUNTS.get(args.nvars)
    print(
        f"{args.nvars} variables: {result.threshold_classes} threshold / "
        f"{result.positive_unate_classes} positive-unate classes"
        + (f"  (paper: {paper[1]}/{paper[0]})" if paper else "")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tels",
        description="Threshold logic network synthesis (TELS reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="print network information")
    p.add_argument("file")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("synth", help="TELS threshold synthesis")
    p.add_argument("file")
    p.add_argument("-o", "--output", help="write BLIF-TH here")
    p.add_argument(
        "--print-network", action="store_true", help="dump BLIF-TH to stdout"
    )
    _add_synthesis_args(p)
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser("map", help="one-to-one threshold mapping")
    p.add_argument("file")
    p.add_argument("-o", "--output", help="write BLIF-TH here")
    _add_synthesis_args(p)
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("simulate", help="synthesize and verify by simulation")
    p.add_argument("file")
    p.add_argument("--vectors", type=int, default=2048)
    _add_synthesis_args(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("print-th", help="display a BLIF-TH network")
    p.add_argument("file")
    p.set_defaults(func=cmd_print_th)

    p = sub.add_parser(
        "analyze",
        help="whole-network dataflow analysis: structural stats, interval "
        "and don't-care fixpoints, robustness certificate, verified "
        "removal suggestions (.blif or .th; files or directories)",
    )
    p.add_argument(
        "files",
        nargs="+",
        help="input files or directories (directories expand to their "
        ".th/.blif members)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif aggregates all inputs into one log "
        "with per-file artifact locations)",
    )
    p.add_argument(
        "--apply",
        action="store_true",
        help="apply the verified removals, re-lint and re-verify the "
        "rewritten network against the source (packed golden compare), "
        "and write it out; exits nonzero without writing on any failure",
    )
    p.add_argument(
        "--vectors",
        type=int,
        default=4096,
        help="random vectors for equivalence checks past the exhaustive "
        "limit",
    )
    p.add_argument(
        "-o",
        "--output",
        help="write the report (or with --apply the rewritten network) "
        "here instead of stdout / in place",
    )
    _add_synthesis_args(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "verilog", help="export a threshold network as structural Verilog"
    )
    p.add_argument("file")
    p.add_argument("-o", "--output")
    _add_synthesis_args(p)
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser(
        "bench",
        help="emit a benchmark stand-in as BLIF, or run the synthesis "
        "bench suite with --corpus",
    )
    from repro.benchgen.extended import all_benchmark_names

    p.add_argument(
        "name", nargs="?", choices=sorted(all_benchmark_names())
    )
    p.add_argument("-o", "--output")
    p.add_argument(
        "--corpus",
        choices=("small", "large"),
        help="run the benchmarks/synth_bench suite instead of emitting "
        "BLIF ('large' adds the corpus and substrate sections)",
    )
    p.add_argument("--jobs", type=int, default=1)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "suite", help="run both flows over the full benchmark population"
    )
    p.add_argument("--full", action="store_true", help="include i10")
    p.add_argument("--psi", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    _add_gate_model_arg(p)
    _add_backend_args(p)
    _add_cache_args(p)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="benchmark worker processes (0 = all cores)",
    )
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser(
        "sweep",
        help="delta_on sweep over a shared result store (Section VI-C)",
    )
    p.add_argument(
        "--benchmarks", nargs="*", default=["cm152a", "cm85a", "cmb"]
    )
    p.add_argument(
        "--deltas",
        nargs="*",
        type=int,
        default=[0, 1, 2, 3],
        help="delta_on values to sweep",
    )
    p.add_argument("--delta-off", type=int, default=1)
    p.add_argument("--psi", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1)
    _add_gate_model_arg(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("table1", help="regenerate Table I")
    p.add_argument("--benchmarks", nargs="*", help="subset of benchmarks")
    p.add_argument("--small", action="store_true", help="skip i10")
    p.add_argument("--psi", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("fig10", help="regenerate Fig. 10 (fanin sweep)")
    p.add_argument("--benchmark", default="comp")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser("fig11", help="regenerate Fig. 11 (failure rates)")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig11)

    p = sub.add_parser("fig12", help="regenerate Fig. 12 (robustness/area)")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig12)

    p = sub.add_parser(
        "cache", help="inspect or manage the persistent synthesis cache"
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "print cache file statistics"),
        ("clear", "drop every cached entry"),
        ("warm", "seed the cache by synthesizing benchmarks"),
    ):
        cp = cache_sub.add_parser(name, help=help_text)
        _add_cache_args(cp)
        if name == "warm":
            cp.add_argument(
                "benchmarks",
                nargs="*",
                default=["cm152a", "cm85a", "cmb"],
                help="benchmarks to synthesize into the cache",
            )
            cp.add_argument("--psi", type=int, default=3)
            cp.add_argument("--seed", type=int, default=0)
            cp.add_argument("--jobs", type=int, default=1)
        cp.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "lint", help="static verification of BLIF-TH networks"
    )
    p.add_argument(
        "files",
        nargs="*",
        help="BLIF-TH files or directories to lint (directories expand "
        "to their .th members); diagnostics aggregate into one report",
    )
    p.add_argument(
        "--analysis",
        action="store_true",
        help="also run the whole-network dataflow analyses so the "
        "TLA3xx rules can fire (heavier: fixpoints plus packed "
        "equivalence verification)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format",
    )
    p.add_argument(
        "--rules",
        action="append",
        metavar="IDS",
        help="comma-separated rule ids or prefixes (e.g. TLS001,TLM)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings and notes too, not just errors",
    )
    p.add_argument(
        "--psi",
        type=int,
        default=None,
        help="fanin restriction to enforce (default: no fanin rule)",
    )
    _add_gate_model_arg(p)
    p.add_argument("-o", "--output", help="write the report here")
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("enumerate", help="Section VI-B function counts")
    p.add_argument("nvars", type=int, choices=range(1, 6))
    p.set_defaults(func=cmd_enumerate)

    def _add_url_arg(client_parser: argparse.ArgumentParser) -> None:
        client_parser.add_argument(
            "--url",
            default=None,
            help="daemon base URL (default: $TELS_SERVE_URL or "
            "http://127.0.0.1:8765)",
        )

    p = sub.add_parser(
        "serve", help="run the synthesis-as-a-service HTTP daemon"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765, help="0 = ephemeral")
    p.add_argument(
        "--max-workers",
        type=int,
        default=2,
        help="concurrent synthesis worker threads",
    )
    p.add_argument(
        "--journal",
        metavar="DIR",
        default=None,
        help="jobs-journal directory: accepted jobs survive a daemon "
        "restart (omit for in-memory jobs only)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="pending-job bound before submissions get 503",
    )
    p.add_argument(
        "--lease-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="work-broker lease duration: a worker missing its heartbeat "
        "this long forfeits its cones back to the queue (default 15)",
    )
    p.add_argument("--verbose", action="store_true", help="debug logging")
    _add_cache_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run a remote cone-synthesis worker against a serve daemon",
    )
    _add_url_arg(p)
    p.add_argument("--id", default=None, dest="worker_id")
    p.add_argument(
        "--max-tasks", type=int, default=4, help="cones per claim batch"
    )
    p.add_argument(
        "--poll-s", type=float, default=0.2, help="idle poll interval"
    )
    p.add_argument(
        "--no-network-cache",
        action="store_true",
        help="solve without the daemon's shared cache tier",
    )
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "submit", help="submit a BLIF circuit to a running daemon"
    )
    p.add_argument("file")
    p.add_argument("--name", default=None, help="model name (default: stem)")
    _add_url_arg(p)
    p.add_argument(
        "--wait",
        action="store_true",
        help="block until the job is terminal and print its snapshot",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait limit in seconds",
    )
    _add_synthesis_args(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "status", help="show one job (or all jobs) on the daemon"
    )
    p.add_argument("job_id", nargs="?", default=None)
    _add_url_arg(p)
    p.set_defaults(func=cmd_status_job)

    p = sub.add_parser("result", help="fetch a finished job's result")
    p.add_argument("job_id")
    p.add_argument(
        "--format",
        choices=("json", "thblif", "sarif"),
        default="json",
        help="full report, the synthesized network, or the lint log",
    )
    p.add_argument("-o", "--output", help="write the result here")
    _add_url_arg(p)
    p.set_defaults(func=cmd_result)

    p = sub.add_parser(
        "events", help="stream a job's progress events as NDJSON"
    )
    p.add_argument("job_id")
    p.add_argument(
        "--since", type=int, default=0, help="resume after event N-1"
    )
    _add_url_arg(p)
    p.set_defaults(func=cmd_events)

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    p.add_argument("job_id")
    _add_url_arg(p)
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser(
        "daemon-stats", help="queue depth and cache hit rates of the daemon"
    )
    _add_url_arg(p)
    p.set_defaults(func=cmd_daemon_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Malformed input or an unsatisfiable request: a usage-level
        # failure (exit 2), distinct from "ran fine, found violations"
        # (exit 1).  See README for the shared exit-code convention.
        print(f"tels {args.command}: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an error.
        # (Must precede the OSError arm — BrokenPipeError subclasses it.)
        import os

        with contextlib.suppress(OSError):
            os.close(sys.stdout.fileno())
        return 0
    except OSError as exc:
        # Unreadable input / unwritable output: same usage-level bucket.
        print(f"tels {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
