"""Exception hierarchy for the TELS reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BlifError(ReproError):
    """Raised when a BLIF file is malformed or uses unsupported constructs."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class PlaError(ReproError):
    """Raised when a PLA file is malformed or uses unsupported constructs."""


class NetworkError(ReproError):
    """Raised on inconsistent network operations (unknown node, cycle, ...)."""


class CoverError(ReproError):
    """Raised on invalid cube/cover construction or manipulation."""


class IlpError(ReproError):
    """Raised when an ILP model is malformed or a backend misbehaves."""


class UnboundedError(IlpError):
    """Raised when a (relaxed) linear program is unbounded."""


class SynthesisError(ReproError):
    """Raised when threshold synthesis cannot make progress on a node."""


class DeadlineExceeded(ReproError):
    """Raised when a cooperative deadline budget runs out mid-computation.

    The engine treats this as a *per-cone* failure: the cone is degraded to
    the one-to-one fallback (or the whole run fails under strict mode), so
    the exception never escapes ``run_synthesis`` unless strict is set.
    """


class SynthesisCancelled(ReproError):
    """Raised when a run's cooperative cancellation flag is observed set.

    The scheduler checks the flag between cones, so cancellation always
    leaves the executor cleanly closed — no orphaned pool workers — and
    every already-solved vector is still flushed to the persistent cache.
    """


class TransientError(ReproError):
    """A failure worth retrying: cache I/O hiccup, injected chaos fault,
    or a solver backend error that is not a property of the model."""


class ChaosError(ReproError):
    """Raised on a malformed ``TELS_CHAOS`` fault-injection spec."""
