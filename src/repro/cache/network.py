"""The network cache tier: the persistent cache served over HTTP.

:class:`NetworkCacheClient` presents the same surface as
:class:`~repro.cache.store.PersistentCache` (``get`` returning values /
``None`` / :data:`~repro.cache.store.ABSENT`, ``put``, ``flush``,
``read_only``), so it drops straight into the ``persistent`` slot of a
:class:`~repro.engine.store.ResultStore`.  That placement is the whole
trust story: everything this client returns flows through the store's
``_persistent_lookup`` — NP-transform decode, then **re-verification of
the vector against the cover's ON/OFF sets** — before a worker uses it,
so a corrupt, stale, or adversarial remote entry can only ever cost a
cache miss, never a wrong gate.

Integrity layers, outermost first:

1. **fingerprint check** — every request carries the client's
   canonicalization fingerprint; the daemon answers 412 on mismatch
   (a different canonicalization would silently alias keys).  Gate-model
   isolation needs no extra plumbing: the model fingerprint is part of
   the entry key itself.
2. **ETag check** — the daemon's ``ETag`` is a content hash of the entry
   values; the client recomputes it over the received body, so transport
   corruption is caught before deserialization is trusted.
3. **semantic re-verification** — the store's transform+verify+reject
   path, unchanged from the on-disk tier (PR 3); the ``net-corrupt``
   chaos site injects corrupted payloads *after* the ETag check exactly
   to prove this last line holds.

Network failures degrade to misses (counted in :attr:`get_errors` /
:attr:`put_errors`); synthesis never fails because the cache tier is
unreachable.
"""

from __future__ import annotations

import urllib.parse

from repro.cache.store import ABSENT, values_etag
from repro.faults.injector import get_injector
from repro.serve.transport import (
    HttpStatusError,
    HttpTransport,
    TransportError,
)


class NetworkCacheClient:
    """A remote content-addressed vector cache behind ``GET/PUT /cache``."""

    read_only = False

    def __init__(
        self,
        base_url: str,
        fingerprint: str | None = None,
        transport: HttpTransport | None = None,
    ):
        if fingerprint is None:
            from repro.cache.canonical import CANONICAL_FINGERPRINT

            fingerprint = CANONICAL_FINGERPRINT
        self.fingerprint = fingerprint
        self.transport = transport or HttpTransport(base_url)
        #: Entry count last reported by the daemon (len() support).
        self.known_entries = 0
        self.gets = 0
        self.hits = 0
        self.absent = 0
        self.puts = 0
        self.get_errors = 0
        self.put_errors = 0
        self.etag_rejects = 0
        self.fingerprint_rejects = 0

    # -- persistent-cache surface --------------------------------------
    def _path(self, key: str) -> str:
        quoted = urllib.parse.quote(key, safe="")
        fp = urllib.parse.quote(self.fingerprint, safe="")
        return f"/cache/{quoted}?fp={fp}"

    @staticmethod
    def _chaos_corrupt(key: str, values):
        """The ``net-corrupt`` site: flip one weight after the ETag check.

        The corruption lands between the transport checks and the semantic
        verification, so only the transform+verify+reject path can catch
        it — which is the property the chaos campaign exists to prove.
        """
        injector = get_injector()
        if (
            values
            and injector is not None
            and injector.decide("net-corrupt", key)
        ):
            return [values[0] + 1, *values[1:]]
        return values

    def get(self, key: str):
        """Values for ``key``, ``None`` (non-threshold), or ``ABSENT``."""
        self.gets += 1
        try:
            status, raw, headers = self.transport.request(
                "GET", self._path(key)
            )
        except HttpStatusError as exc:
            if exc.status == 404:
                self.absent += 1
            elif exc.status == 412:
                self.fingerprint_rejects += 1
            else:
                self.get_errors += 1
            return ABSENT
        except TransportError:
            self.get_errors += 1
            return ABSENT
        import json

        payload = json.loads(raw)
        values = payload.get("values")
        if values is not None:
            values = [int(v) for v in values]
        etag = headers.get("ETag", "")
        if etag and etag != values_etag(values):
            self.etag_rejects += 1
            return ABSENT
        self.known_entries = payload.get("entries", self.known_entries)
        self.hits += 1
        return self._chaos_corrupt(key, values)

    def put(self, key: str, values: list[int] | None) -> bool:
        """Publish an entry; network failures are swallowed (and counted)."""
        self.puts += 1
        try:
            payload = self.transport.json(
                "PUT",
                self._path(key),
                {"values": values},
            )
        except (HttpStatusError, TransportError):
            self.put_errors += 1
            return False
        self.known_entries = payload.get("entries", self.known_entries)
        return bool(payload.get("installed", False))

    def flush(self) -> int:
        """Nothing to flush: every put is already remote."""
        return 0

    @property
    def dirty_count(self) -> int:
        return 0

    def __len__(self) -> int:
        return self.known_entries

    def stats(self) -> dict:
        return {
            "gets": self.gets,
            "hits": self.hits,
            "absent": self.absent,
            "puts": self.puts,
            "get_errors": self.get_errors,
            "put_errors": self.put_errors,
            "etag_rejects": self.etag_rejects,
            "fingerprint_rejects": self.fingerprint_rejects,
        }

    def __repr__(self) -> str:
        return (
            f"NetworkCacheClient({self.transport.base_url!r}, "
            f"hits={self.hits}, puts={self.puts})"
        )
