"""Persistent NP-canonical synthesis cache.

``repro.cache`` is the cross-run tier of the result-store stack: covers are
reduced to NP-semi-canonical function-class representatives
(:mod:`repro.cache.canonical`), and solved weight–threshold vectors are
persisted per class in a corruption-tolerant JSON-lines file
(:mod:`repro.cache.store`).  The engine's in-memory
:class:`~repro.engine.store.ResultStore` consults this layer on a miss and
commits every newly solved vector back, so repeated ``tels synth`` /
``tels suite`` / sweep invocations become near-pure lookups.
"""

from repro.cache.canonical import (
    CANONICAL_FINGERPRINT,
    MAX_CANONICAL_VARS,
    NPCanonical,
    NPTransform,
    np_canonicalize,
    vector_from_canonical,
    vector_to_canonical,
    verify_vector_key,
)
from repro.cache.store import (
    ABSENT,
    PersistentCache,
    cache_file,
    entry_key,
    open_cache,
    parse_signature,
    signature_string,
)

__all__ = [
    "ABSENT",
    "CANONICAL_FINGERPRINT",
    "MAX_CANONICAL_VARS",
    "NPCanonical",
    "NPTransform",
    "PersistentCache",
    "cache_file",
    "entry_key",
    "np_canonicalize",
    "open_cache",
    "parse_signature",
    "signature_string",
    "vector_from_canonical",
    "vector_to_canonical",
    "verify_vector_key",
]
