"""Disk-backed persistent cache of solved weight–threshold vectors.

The cache is a JSON-lines file (``cache.jsonl`` inside a cache directory):
a header line identifying the format, version, and canonicalization
fingerprint, then one line per entry mapping an NP-canonical cover
signature plus the solver-relevant parameters to the solved vector in
canonical space (or ``null`` for a proven non-threshold class).

Design points:

* **atomic append** — :meth:`PersistentCache.flush` writes all journaled
  entries in one buffered write to an append-mode handle, so concurrent
  writers (parallel suite benchmarks) interleave whole batches; a torn
  line from a crash is skipped by the corruption-tolerant loader.
* **single-writer locking** — every file mutation (flush append,
  compaction, clear) is serialized through an instance lock *and* an
  advisory ``cache.jsonl.lock`` flock, so the daemon's concurrent job
  threads — or two processes sharing one cache directory — cannot
  interleave partial journal appends or race a compaction rename.
* **journal/merge semantics** — new entries accumulate in a dirty journal;
  the engine's process-pool workers hold read-only copies (pickling a
  cache drops its journal and write permission), journal through the
  existing :class:`~repro.engine.store.StoreDelta` path, and the parent
  commits the merged deltas here.
* **graceful degradation** — a corrupted, truncated, or version- or
  fingerprint-mismatched file is logged and treated as empty (the run goes
  cold instead of failing); the next :meth:`flush` rewrites it whole.
* **compaction** — duplicated keys from concurrent appends are deduplicated
  on load; :meth:`compact` rewrites the file crash-safely: the temp file is
  flushed and fsynced *before* the atomic rename (plus a best-effort
  directory fsync), so a process killed mid-compaction leaves either the
  complete old journal or the complete new one — never a torn file.
* **retry with backoff** — transient ``OSError`` during flush/compaction is
  retried a few times with deterministic exponential backoff before the
  usual warn-and-continue degradation (see docs/RESILIENCE.md); the chaos
  harness (``TELS_CHAOS``) injects both write failures (``cache``) and torn
  trailing lines (``cache-corrupt``) through the same code paths the real
  faults would take.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.cache.canonical import CANONICAL_FINGERPRINT
from repro.faults.injector import get_injector
from repro.faults.retry import RetryPolicy, retry_call

try:  # advisory inter-process locking (POSIX only; see _advisory_lock)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger("repro.cache")

#: I/O retry schedule for flush/compaction (short: disk hiccups, not locks).
_IO_RETRY = RetryPolicy(max_attempts=3, base_backoff_s=0.01, max_backoff_s=0.1)


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)

CACHE_FILENAME = "cache.jsonl"
FORMAT_NAME = "tels-cache"
FORMAT_VERSION = 1

#: Miss sentinel: distinguishes "no entry" from a cached ``None`` verdict.
ABSENT = object()


@dataclass
class CacheFileStats:
    """What loading (and using) a cache file observed."""

    entries: int = 0
    corrupt_lines: int = 0
    rejected_header: bool = False
    path: str = ""


def signature_string(cover_key: tuple) -> str:
    """Serialize a canonical cover key as a compact, exact string."""
    nvars, rows = cover_key
    return f"{nvars}:" + ",".join(f"{pos}.{neg}" for pos, neg in rows)


def parse_signature(text: str) -> tuple:
    """Inverse of :func:`signature_string`."""
    head, _, body = text.partition(":")
    nvars = int(head)
    rows = []
    if body:
        for item in body.split(","):
            pos, _, neg = item.partition(".")
            rows.append((int(pos), int(neg)))
    return (nvars, tuple(rows))


def values_etag(values: list[int] | None) -> str:
    """Content fingerprint of one cache entry's canonical values.

    Served as the ``ETag`` of the network cache tier
    (``GET /cache/{key}``) and recomputed by the client over the received
    body, so a payload corrupted in transit is detected before it even
    reaches the transform+verify path.
    """
    payload = json.dumps(values, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def entry_key(
    signature: str,
    delta_on: int,
    delta_off: int,
    max_weight: int | None,
    model: str | None = None,
) -> str:
    """The persisted lookup key: canonical signature + solve parameters.

    ``model`` is the gate-model fingerprint; the default single-threshold
    model keeps the historical un-suffixed key, every other backend gets a
    disjoint key space inside the same cache file.
    """
    wmax = "-" if max_weight is None else str(max_weight)
    base = f"{signature}|{delta_on}|{delta_off}|{wmax}"
    if model is None:
        return base
    return f"{base}|{model}"


class PersistentCache:
    """One on-disk vector cache, loaded eagerly, journaled incrementally."""

    def __init__(
        self,
        path: str | Path,
        fingerprint: str = CANONICAL_FINGERPRINT,
        read_only: bool = False,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.read_only = read_only
        self._entries: dict[str, list[int] | None] = {}
        self._dirty: dict[str, list[int] | None] = {}
        self._needs_rewrite = False
        self._lock = threading.RLock()
        self.file_stats = CacheFileStats(path=str(self.path))
        self._load()

    @contextlib.contextmanager
    def _advisory_lock(self):
        """Exclusive inter-process flock on ``<cache>.lock`` (best effort).

        The instance lock serializes this process's threads; the flock
        extends the single-writer guarantee across processes sharing one
        cache directory.  Platforms without :mod:`fcntl` (and unopenable
        lock files) degrade to the instance lock alone.
        """
        if fcntl is None:
            yield
            return
        lock_path = self.path.with_name(self.path.name + ".lock")
        try:
            handle = open(lock_path, "a")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            with contextlib.suppress(OSError):
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    # -- loading -------------------------------------------------------
    def _header(self) -> dict:
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
        }

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            text = self.path.read_text()
        except OSError as exc:
            logger.warning("cache %s unreadable (%s); starting cold", self.path, exc)
            self._needs_rewrite = True
            return
        lines = text.splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
            ok = (
                header.get("format") == FORMAT_NAME
                and header.get("version") == FORMAT_VERSION
                and header.get("fingerprint") == self.fingerprint
            )
        except (json.JSONDecodeError, AttributeError):
            ok = False
        if not ok:
            logger.warning(
                "cache %s has a mismatched or corrupt header; starting cold",
                self.path,
            )
            self.file_stats.rejected_header = True
            self._needs_rewrite = True
            return
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = record["k"]
                values = record["v"]
                if values is not None:
                    values = [int(v) for v in values]
                if not isinstance(key, str):
                    raise TypeError("entry key must be a string")
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.file_stats.corrupt_lines += 1
                continue
            self._entries[key] = values
        self.file_stats.entries = len(self._entries)
        if self.file_stats.corrupt_lines:
            logger.warning(
                "cache %s: skipped %d corrupt line(s)",
                self.path,
                self.file_stats.corrupt_lines,
            )

    # -- lookups -------------------------------------------------------
    def get(self, key: str):
        """The canonical-space values for ``key``, or :data:`ABSENT`."""
        return self._entries.get(key, ABSENT)

    def put(self, key: str, values: list[int] | None) -> bool:
        """Install an entry; journals it for the next flush. False if known."""
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = values
            if not self.read_only:
                self._dirty[key] = values
            return True

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    @property
    def solved_count(self) -> int:
        """Entries holding a vector (the rest are non-threshold verdicts)."""
        return sum(1 for v in self._entries.values() if v is not None)

    # -- persistence ---------------------------------------------------
    def _encode(self, key: str, values: list[int] | None) -> str:
        return json.dumps({"k": key, "v": values}, separators=(",", ":"))

    def flush(self) -> int:
        """Append journaled entries to disk; returns lines written.

        Thread- and process-safe: the instance lock serializes journal
        swaps among this process's threads, and the advisory flock keeps
        a concurrent writer in another process from interleaving bytes
        inside our batch.
        """
        if self.read_only:
            return 0
        with self._lock:
            if not self._dirty and not self._needs_rewrite:
                return 0
            if self._needs_rewrite or not self.path.exists():
                return len(self._entries) if self._compact_locked() else 0
            dirty, self._dirty = self._dirty, {}
            lines = [self._encode(k, v) for k, v in dirty.items()]
            payload = "".join(line + "\n" for line in lines)
            # A torn trailing line (chaos: what a crash mid-append leaves
            # behind) exercises the loader's corruption tolerance.
            payload += self._chaos_torn_line("flush")

            def _append(attempt: int) -> None:
                self._chaos_write_fault("flush", attempt)
                with open(self.path, "a") as handle:
                    handle.write(payload)

            try:
                with self._advisory_lock():
                    retry_call(
                        _append,
                        _IO_RETRY,
                        retryable=(OSError,),
                        key=str(self.path),
                    )
            except OSError as exc:
                logger.warning("cache %s flush failed (%s)", self.path, exc)
                # Keep the batch journaled for a later flush; entries are
                # content-addressed, so merge order is irrelevant.
                dirty.update(self._dirty)
                self._dirty = dirty
                return 0
            return len(lines)

    def compact(self) -> bool:
        """Crash-safely rewrite the file: header + deduplicated entries.

        The rewrite is durable-then-atomic: the temp file is flushed and
        fsynced before ``os.replace`` swaps it in, and the directory entry
        is fsynced afterwards (best effort).  A kill at any instant leaves
        a complete journal — the old one up to the rename, the new one
        after it.  Returns True when the rewrite reached disk; on failure
        the journal is retained for a later flush.
        """
        if self.read_only:
            return False
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        lines = [json.dumps(self._header())]
        lines.extend(self._encode(k, v) for k, v in sorted(self._entries.items()))
        payload = "".join(line + "\n" for line in lines)

        def _rewrite(attempt: int) -> None:
            self._chaos_write_fault("compact", attempt)
            with open(tmp, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            _fsync_dir(self.path.parent)

        try:
            with self._advisory_lock():
                retry_call(
                    _rewrite, _IO_RETRY, retryable=(OSError,), key=str(tmp)
                )
        except OSError as exc:
            logger.warning("cache %s compaction failed (%s)", self.path, exc)
            return False
        self._needs_rewrite = False
        self._dirty.clear()
        return True

    # -- chaos hooks ----------------------------------------------------
    def _chaos_write_fault(self, op: str, attempt: int) -> None:
        """Raise an injected OSError for this (operation, attempt).

        Keyed per attempt, so a retried write rolls the dice again — at
        rates below 1.0 the retry path usually recovers, exactly like a
        transient disk fault.
        """
        injector = get_injector()
        if injector is not None and injector.decide(
            "cache", f"{self.path.name}|{op}|attempt{attempt}"
        ):
            raise OSError(f"chaos: injected cache {op} failure")

    def _chaos_torn_line(self, op: str) -> str:
        injector = get_injector()
        if injector is not None and injector.decide(
            "cache-corrupt", f"{self.path.name}|{op}|{len(self._entries)}"
        ):
            return '{"k":"torn'
        return ""

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        with self._lock:
            self._entries.clear()
            self._dirty.clear()
            self._needs_rewrite = False
            if not self.read_only:
                try:
                    with self._advisory_lock():
                        self.path.unlink(missing_ok=True)
                except OSError as exc:
                    logger.warning(
                        "cache %s clear failed (%s)", self.path, exc
                    )

    # -- worker shipping -----------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle as a read-only snapshot: workers look up, never write."""
        with self._lock:
            return {
                "path": str(self.path),
                "fingerprint": self.fingerprint,
                "entries": dict(self._entries),
            }

    def __setstate__(self, state: dict) -> None:
        self.path = Path(state["path"])
        self.fingerprint = state["fingerprint"]
        self.read_only = True
        self._entries = state["entries"]
        self._dirty = {}
        self._needs_rewrite = False
        self._lock = threading.RLock()
        self.file_stats = CacheFileStats(
            entries=len(self._entries), path=str(self.path)
        )

    def __repr__(self) -> str:
        mode = "ro" if self.read_only else "rw"
        return (
            f"PersistentCache({str(self.path)!r}, {mode}, "
            f"entries={len(self._entries)}, dirty={len(self._dirty)})"
        )


def cache_file(directory: str | Path) -> Path:
    return Path(directory) / CACHE_FILENAME


def open_cache(
    directory: str | Path,
    fingerprint: str = CANONICAL_FINGERPRINT,
    read_only: bool = False,
) -> PersistentCache:
    """Open (creating the directory for) the cache file under ``directory``."""
    path = cache_file(directory)
    if not read_only:
        path.parent.mkdir(parents=True, exist_ok=True)
    return PersistentCache(path, fingerprint=fingerprint, read_only=read_only)
