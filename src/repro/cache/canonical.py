"""NP-semi-canonical forms for covers, with invertible transform records.

Threshold-ness is invariant under input *permutation* and input *negation*
(the NP group): if ``<w1..wl; T>`` realizes ``f``, then permuting the
inputs permutes the weights, and replacing input ``x`` by ``x'`` maps the
vector in closed form — ``w' = -w`` and ``T' = T - w`` (Section IV of the
paper, applied per variable).  Both operations also preserve the defect
margins ``delta_on`` / ``delta_off`` exactly, because they are bijections
of the input points that shift every weighted sum by a constant.

This module reduces a cover key (the ``(nvars, rows)`` tuple produced by
:meth:`repro.boolean.cover.Cover.canonical_key`) to an *NP-semi-canonical*
representative of its function class:

1. **phase normalization** — every variable is put in its majority phase
   (a variable appearing more often negated is complemented), which maps
   any unate cover to its positive-unate rewrite and gives binate covers a
   deterministic phase choice;
2. **variable ordering** — variables are sorted by a structural signature
   (occurrence profile per phase and cube size); signature ties are broken
   by exhaustively selecting, within each tied group, the permutation whose
   remapped row set is lexicographically smallest (capped — hence *semi*-
   canonical: pathological tie groups fall back to a stable order, which
   can only cost cache hits, never correctness).

The returned :class:`NPCanonical` carries the canonical key plus the
:class:`NPTransform` needed to map a vector solved for the canonical cover
back to the original cover (and vice versa — the phase map is an
involution).  Every transformed vector can be re-verified against the
original cover's ON/OFF sets with :func:`verify_vector_key`, which is what
the persistent-cache lookup path does before trusting a transformed gate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.boolean import bitset
from repro.core.threshold import WeightThresholdVector

#: Covers wider than this skip NP-canonicalization entirely: the exhaustive
#: re-verification of a transformed vector enumerates ``2**nvars`` points.
MAX_CANONICAL_VARS = 14

#: Total candidate permutations tried across all signature-tie groups.
MAX_TIE_CANDIDATES = 720

#: Bump when the canonical form or the entry encoding changes shape —
#: persisted entries produced by a different algorithm must not be trusted.
CANONICAL_FINGERPRINT = "np-v1"


@dataclass(frozen=True)
class NPTransform:
    """How an original cover maps onto its canonical representative.

    Attributes:
        perm: ``perm[slot]`` is the original variable occupying canonical
            position ``slot``.
        flipped: per-original-variable flags; True where the canonical form
            uses the complemented phase of that variable.
    """

    perm: tuple[int, ...]
    flipped: tuple[bool, ...]

    @property
    def is_identity(self) -> bool:
        return not any(self.flipped) and all(
            v == i for i, v in enumerate(self.perm)
        )


@dataclass(frozen=True)
class NPCanonical:
    """A canonical cover key together with its recovery transform."""

    key: tuple  # (nvars, sorted (pos, neg) rows) of the canonical cover
    transform: NPTransform


def _flip_rows(rows: tuple, flip_mask: int) -> list[tuple[int, int]]:
    """Exchange the pos/neg literal bits of every variable in ``flip_mask``."""
    out = []
    for pos, neg in rows:
        moved_to_pos = neg & flip_mask
        moved_to_neg = pos & flip_mask
        out.append(
            (
                (pos & ~flip_mask) | moved_to_pos,
                (neg & ~flip_mask) | moved_to_neg,
            )
        )
    return out


def _permute_rows(
    rows: list[tuple[int, int]], perm: tuple[int, ...]
) -> tuple[tuple[int, int], ...]:
    """Remap rows so canonical slot ``i`` reads original variable ``perm[i]``."""
    out = []
    for pos, neg in rows:
        new_pos = 0
        new_neg = 0
        for slot, var in enumerate(perm):
            bit = 1 << var
            if pos & bit:
                new_pos |= 1 << slot
            if neg & bit:
                new_neg |= 1 << slot
        out.append((new_pos, new_neg))
    # Sorted row order is part of the cover-key canonical form.
    return tuple(sorted(out))


def _var_signature(rows: list[tuple[int, int]], var: int) -> tuple:
    """A permutation-invariant structural profile of one variable."""
    bit = 1 << var
    pos_profile = sorted(
        (pos | neg).bit_count() for pos, neg in rows if pos & bit
    )
    neg_profile = sorted(
        (pos | neg).bit_count() for pos, neg in rows if neg & bit
    )
    return (
        len(pos_profile),
        len(neg_profile),
        tuple(pos_profile),
        tuple(neg_profile),
    )


def _var_signatures(
    rows: list[tuple[int, int]], nvars: int
) -> dict[int, tuple]:
    """All variable signatures in one pass over the rows.

    Treats each phase as a packed column over the row index: row sizes are
    computed once, then scattered to the variables each row touches —
    O(rows * literals) instead of O(nvars * rows) rescans.
    """
    pos_sizes: list[list[int]] = [[] for _ in range(nvars)]
    neg_sizes: list[list[int]] = [[] for _ in range(nvars)]
    for pos, neg in rows:
        size = (pos | neg).bit_count()
        mask = pos
        while mask:
            low = mask & -mask
            pos_sizes[low.bit_length() - 1].append(size)
            mask ^= low
        mask = neg
        while mask:
            low = mask & -mask
            neg_sizes[low.bit_length() - 1].append(size)
            mask ^= low
    return {
        var: (
            len(pos_sizes[var]),
            len(neg_sizes[var]),
            tuple(sorted(pos_sizes[var])),
            tuple(sorted(neg_sizes[var])),
        )
        for var in range(nvars)
    }


def np_canonicalize(cover_key: tuple) -> NPCanonical:
    """Reduce a cover key to its NP-semi-canonical representative.

    ``cover_key`` must be the ``(nvars, rows)`` tuple of
    :meth:`Cover.canonical_key`.  The result is deterministic and, for
    covers without oversized signature-tie groups, identical for every
    NP-equivalent input cover.
    """
    nvars, rows = cover_key
    # Phase normalization: put every variable in its majority phase; ties
    # keep the positive phase so unate covers land on their positive form.
    flip_mask = 0
    for var in range(nvars):
        bit = 1 << var
        pos = sum(1 for p, n in rows if p & bit)
        neg = sum(1 for p, n in rows if n & bit)
        if neg > pos:
            flip_mask |= bit
    flipped = tuple(bool(flip_mask & (1 << v)) for v in range(nvars))
    normalized = _flip_rows(rows, flip_mask)

    # Order variables by signature; signatures sort descending so heavily
    # used variables take the low canonical slots.
    signatures = _var_signatures(normalized, nvars)
    ordered = sorted(range(nvars), key=lambda v: (signatures[v], v))
    ordered.reverse()  # descending signature, descending index within ties

    # Group consecutive variables with identical signatures; within each
    # group the order is structurally unconstrained, so pick the composite
    # permutation minimizing the remapped row set (capped).
    groups: list[list[int]] = []
    for var in ordered:
        if groups and signatures[groups[-1][-1]] == signatures[var]:
            groups[-1].append(var)
        else:
            groups.append([var])
    candidates = 1
    for group in groups:
        for k in range(2, len(group) + 1):
            candidates *= k
        if candidates > MAX_TIE_CANDIDATES:
            break
    if candidates > MAX_TIE_CANDIDATES or len(groups) == nvars:
        perm = tuple(ordered)
        best_rows = _permute_rows(normalized, perm)
    else:
        best_rows = None
        perm = tuple(ordered)
        for arrangement in itertools.product(
            *(itertools.permutations(g) for g in groups)
        ):
            candidate = tuple(itertools.chain.from_iterable(arrangement))
            remapped = _permute_rows(normalized, candidate)
            if best_rows is None or remapped < best_rows:
                best_rows = remapped
                perm = candidate
    return NPCanonical(
        key=(nvars, best_rows), transform=NPTransform(perm, flipped)
    )


def vector_to_canonical(
    vector: WeightThresholdVector, transform: NPTransform
) -> list[int]:
    """Map an original-cover vector into canonical space (weights + T)."""
    weights = list(vector.weights)
    threshold = vector.threshold
    for var, flip in enumerate(transform.flipped):
        if flip:
            threshold -= weights[var]
            weights[var] = -weights[var]
    return [weights[var] for var in transform.perm] + [threshold]


def vector_from_canonical(
    values: list[int], transform: NPTransform
) -> WeightThresholdVector:
    """Map a canonical-space vector (weights + T) back to the original cover."""
    nvars = len(transform.perm)
    weights = [0] * nvars
    threshold = values[-1]
    for slot, var in enumerate(transform.perm):
        weights[var] = values[slot]
    # The phase map is an involution: the same closed form inverts it.
    for var, flip in enumerate(transform.flipped):
        if flip:
            threshold -= weights[var]
            weights[var] = -weights[var]
    return WeightThresholdVector(tuple(weights), threshold)


def verify_vector_key(
    cover_key: tuple,
    vector: WeightThresholdVector,
    delta_on: int,
    delta_off: int,
) -> bool:
    """Exhaustively check a vector against a cover key's ON/OFF sets.

    Every ON point must reach ``T + delta_on`` and every OFF point must stay
    at or below ``T - delta_off`` — the Eq. (1) robustness contract, not
    just plain functional agreement.  Exponential in ``nvars``; callers
    gate on :data:`MAX_CANONICAL_VARS`.
    """
    nvars, rows = cover_key
    if nvars > MAX_CANONICAL_VARS:
        return False
    weights = vector.weights
    threshold = vector.threshold
    if len(weights) != nvars:
        return False
    # Bit-parallel contract check: one weighted-sum sweep plus one packed
    # ON-set table replaces the per-point Python loop.
    sums = np.asarray(bitset.weighted_sums(weights))
    on = np.array(bitset.key_table(cover_key).to_bits(), dtype=bool)
    if on.any() and int(sums[on].min()) < threshold + delta_on:
        return False
    off = ~on
    if off.any() and int(sums[off].max()) > threshold - delta_off:
        return False
    return True
