"""Solver backends: a small protocol + registry replacing hard-coded dispatch.

A :class:`SolverBackend` turns an :class:`~repro.ilp.model.IlpProblem` into
an :class:`~repro.ilp.model.IlpResult`.  Backends register themselves in a
module-level registry keyed by name, so adding a solver (another MILP
library, a SAT translation, a remote service) is one class + one
:func:`register_backend` call — the dispatch layer, the CLI choices, and
``available_backends()`` pick it up without edits.

Every solve is wrapped in a :class:`SolveAttempt` (backend, status, wall
time) and the dispatch layer aggregates attempts into a :class:`SolveInfo`,
which is what threads per-backend telemetry up through the checker, the
engine trace, the CLI summary, and ``BENCH_synth.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Protocol, runtime_checkable

from repro.errors import IlpError
from repro.ilp.model import IlpProblem, IlpResult, Status
from repro.ilp.presolve import PresolveInfo


@dataclass(frozen=True)
class SolveAttempt:
    """One backend invocation inside a single ``solve_ilp`` call."""

    backend: str
    status: Status
    wall_s: float
    warm_started: bool = False
    timed_out: bool = False


@dataclass
class SolveInfo:
    """Structured telemetry for one dispatch-layer solve.

    Attributes:
        backend: name of the backend whose answer was returned (may be
            ``"presolve"`` when the reduction itself settled the model).
        status: final status returned to the caller.
        attempts: every backend invocation, in order — a verification
            fallback shows up as a second attempt.
        presolve: what the presolve pass did, or None when disabled.
        verified: the returned point (or infeasibility) was re-checked
            against the *original* model, not just the backend's answer.
        fallback: True when the answering backend was not the first tried.
    """

    backend: str = ""
    status: Status = Status.INFEASIBLE
    attempts: list[SolveAttempt] = field(default_factory=list)
    presolve: PresolveInfo | None = None
    verified: bool = False
    fallback: bool = False

    @property
    def wall_s(self) -> float:
        return sum(a.wall_s for a in self.attempts)

    def wall_for(self, backend: str) -> float:
        return sum(a.wall_s for a in self.attempts if a.backend == backend)

    def solves_for(self, backend: str) -> int:
        return sum(1 for a in self.attempts if a.backend == backend)

    @property
    def timed_out(self) -> bool:
        """True when any attempt was cut short by a wall-clock limit."""
        return any(a.timed_out for a in self.attempts)


@runtime_checkable
class SolverBackend(Protocol):
    """The contract every ILP backend implements."""

    name: str

    def available(self) -> bool:
        """True when the backend can run on this machine."""
        ...

    def solve(
        self,
        problem: IlpProblem,
        warm_start: tuple[Fraction, ...] | None = None,
        timeout_s: float | None = None,
    ) -> IlpResult:
        """Solve ``problem``; ``warm_start`` is a feasible incumbent hint
        (backends without warm-start support simply ignore it), and
        ``timeout_s`` is a best-effort wall-clock limit — a backend that
        honours it returns a result with ``timed_out=True`` instead of a
        proven answer (see the deadline contract in docs/ARCHITECTURE.md)."""
        ...


class ExactBackend:
    """Pure-Python rational simplex + branch & bound (always available)."""

    name = "exact"

    def available(self) -> bool:
        return True

    def solve(
        self,
        problem: IlpProblem,
        warm_start: tuple[Fraction, ...] | None = None,
        timeout_s: float | None = None,
    ) -> IlpResult:
        from repro.ilp.branch_bound import solve_bb

        return solve_bb(
            problem, incumbent_values=warm_start, time_limit_s=timeout_s
        )


class ScipyBackend:
    """HiGHS via :func:`scipy.optimize.milp` (fast, float-based)."""

    name = "scipy"

    def available(self) -> bool:
        from repro.ilp.scipy_backend import have_scipy

        return have_scipy()

    def solve(
        self,
        problem: IlpProblem,
        warm_start: tuple[Fraction, ...] | None = None,
        timeout_s: float | None = None,
    ) -> IlpResult:
        from repro.ilp.scipy_backend import solve_scipy

        # scipy.optimize.milp has no warm-start interface; the hint is
        # intentionally unused.
        return solve_scipy(problem, time_limit_s=timeout_s)


_REGISTRY: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend) -> None:
    """Add (or replace) a backend in the registry."""
    if not backend.name or backend.name == "auto":
        raise IlpError(f"invalid backend name {backend.name!r}")
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> SolverBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise IlpError(
            f"unknown backend {name!r}; registered: "
            f"{sorted(_REGISTRY)} (or 'auto')"
        ) from None


def registered_backends() -> list[str]:
    """Every registered backend name, available or not."""
    return sorted(_REGISTRY)


def available_backends() -> list[str]:
    """Names of usable backends on this machine."""
    return [name for name in sorted(_REGISTRY) if _REGISTRY[name].available()]


def timed_solve(
    backend: SolverBackend,
    problem: IlpProblem,
    warm_start: tuple[Fraction, ...] | None = None,
    timeout_s: float | None = None,
) -> tuple[IlpResult, SolveAttempt]:
    """Run one backend under a wall-clock, producing its attempt record."""
    started = time.perf_counter()
    if timeout_s is None:
        # Backends registered before the timeout contract only take
        # (problem, warm_start); never passing an unused keyword keeps them
        # working as long as no deadline is configured.
        result = backend.solve(problem, warm_start=warm_start)
    else:
        result = backend.solve(
            problem, warm_start=warm_start, timeout_s=timeout_s
        )
    attempt = SolveAttempt(
        backend=backend.name,
        status=result.status,
        wall_s=time.perf_counter() - started,
        warm_started=warm_start is not None,
        timed_out=result.timed_out,
    )
    return result, attempt


register_backend(ExactBackend())
register_backend(ScipyBackend())
