"""Integer linear programming substrate (the LP_SOLVE stand-in).

The threshold-identification step of TELS casts "is this unate function a
threshold function?" as a small ILP (Fig. 6 of the paper).  This package
provides:

* :mod:`repro.ilp.model` — a tiny declarative model (:class:`IlpProblem`);
* :mod:`repro.ilp.simplex` — an exact rational two-phase simplex;
* :mod:`repro.ilp.branch_bound` — branch & bound on top of the simplex;
* :mod:`repro.ilp.scipy_backend` — optional HiGHS backend via
  :func:`scipy.optimize.milp`;
* :func:`repro.ilp.solve.solve_ilp` — the backend dispatcher.

The pure-Python path is exact (Fraction arithmetic, no tolerance tuning) and
has no dependencies; HiGHS is faster on larger models.  Both return identical
feasibility answers on the paper's workloads — an ablation benchmark
(`benchmarks/test_ablation_ilp.py`) checks exactly that.
"""

from repro.ilp.model import Constraint, IlpProblem, IlpResult, Sense, Status
from repro.ilp.solve import available_backends, solve_ilp

__all__ = [
    "Constraint",
    "IlpProblem",
    "IlpResult",
    "Sense",
    "Status",
    "available_backends",
    "solve_ilp",
]
