"""Backend dispatch for ILP solving.

``backend`` choices:

* ``"exact"`` — pure-Python rational simplex + branch & bound (always
  available, exact feasibility);
* ``"scipy"`` — HiGHS via scipy (fast, float-based, re-verified);
* ``"auto"`` (default) — scipy when importable, verified against the exact
  solver on disagreement-prone cases by construction: a scipy INFEASIBLE is
  re-checked with the exact solver before being trusted, because threshold
  identification treats infeasibility as a *semantic* answer.
"""

from __future__ import annotations

from repro.errors import IlpError
from repro.ilp.branch_bound import solve_bb, verify_integral_solution
from repro.ilp.model import IlpProblem, IlpResult, Status
from repro.ilp.scipy_backend import have_scipy, solve_scipy


def available_backends() -> list[str]:
    """Names of usable backends on this machine."""
    backends = ["exact"]
    if have_scipy():
        backends.append("scipy")
    return backends


def solve_ilp(problem: IlpProblem, backend: str = "auto") -> IlpResult:
    """Solve an ILP with the chosen backend.

    ``auto`` uses HiGHS when present but never trusts a float INFEASIBLE:
    that answer is confirmed with the exact solver, since TELS interprets
    infeasibility as "not a threshold function" and a false negative would
    silently degrade synthesis quality (never correctness).
    """
    if backend == "exact":
        result = solve_bb(problem)
        verify_integral_solution(problem, result)
        return result
    if backend == "scipy":
        if not have_scipy():
            raise IlpError("scipy backend requested but scipy is unavailable")
        return solve_scipy(problem)
    if backend == "auto":
        if have_scipy():
            result = solve_scipy(problem)
            if result.status is Status.INFEASIBLE:
                return solve_bb(problem)
            return result
        result = solve_bb(problem)
        verify_integral_solution(problem, result)
        return result
    raise IlpError(f"unknown backend {backend!r}")
