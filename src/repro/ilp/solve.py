"""The layered dispatch for ILP solving: presolve → backend → verify.

``backend`` choices:

* ``"exact"`` — pure-Python rational simplex + branch & bound (always
  available, exact feasibility);
* ``"scipy"`` — HiGHS via scipy (fast, float-based, re-verified);
* ``"auto"`` (default) — scipy when importable, with a *verification
  chain*: a scipy OPTIMAL is rounded to integers and re-checked against
  every constraint of the original model (falling back to the exact solver
  on any violation), and a scipy INFEASIBLE is re-proved by the exact
  solver before being trusted, because threshold identification treats
  infeasibility as a *semantic* answer;
* any other registered name — see :mod:`repro.ilp.backends`.

Every call runs the exactness-preserving :mod:`repro.ilp.presolve` pass
first (duplicate/dominated-row elimination, bound consolidation), and when
the reduced model still has interchangeable variables, a symmetry-collapsed
pre-solve supplies the exact backend with a warm-start incumbent.
:func:`solve_ilp_info` returns the result together with a
:class:`~repro.ilp.backends.SolveInfo` record (per-backend attempts, wall
times, presolve effect, verification outcome) for the telemetry pipeline.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import IlpError
from repro.faults.injector import get_injector
from repro.ilp.backends import (
    SolveAttempt,
    SolveInfo,
    available_backends,
    get_backend,
    registered_backends,
    timed_solve,
)
from repro.ilp.branch_bound import verify_integral_solution
from repro.ilp.model import IlpProblem, IlpResult, Status
from repro.ilp.presolve import (
    collapse_symmetric,
    expand_solution,
    presolve as run_presolve,
)

__all__ = [
    "available_backends",
    "registered_backends",
    "solve_ilp",
    "solve_ilp_info",
]

#: Node budget for the symmetry-collapsed incumbent pre-solve; the collapsed
#: model is strictly smaller, so a small budget is enough and a blown budget
#: just means "no warm start".
_COLLAPSE_NODE_LIMIT = 200


def _round_to_integral(
    problem: IlpProblem, result: IlpResult
) -> IlpResult | None:
    """Round integer variables and re-verify against the model.

    Returns the verified (possibly repaired) result, or None when the
    rounded point violates a constraint — the caller then falls back.
    """
    assert result.values is not None
    values = []
    for j, v in enumerate(result.values):
        values.append(Fraction(round(v)) if problem.integer[j] else v)
    values_t = tuple(values)
    if not problem.is_feasible_point(values_t):
        return None
    return IlpResult(
        Status.OPTIMAL,
        problem.objective_value(values_t),
        values_t,
        limit_hit=result.limit_hit,
    )


def _exact_warm_start(
    problem: IlpProblem,
    info: SolveInfo,
    warm_start: tuple[Fraction, ...] | None,
) -> tuple[Fraction, ...] | None:
    """A warm-start incumbent for the exact backend.

    A caller-supplied candidate wins; otherwise, when presolve found
    interchangeable variables, solve the symmetry-collapsed model (strictly
    smaller) and expand its solution.  The expansion is only used after it
    verifies against the *original* model, and only ever as an incumbent
    bound — the full model is still solved to optimality.
    """
    if warm_start is not None:
        return warm_start
    if info.presolve is None or not info.presolve.symmetry_classes:
        return None
    collapse = collapse_symmetric(problem, info.presolve.symmetry_classes)
    if collapse is None or collapse.problem.num_vars >= problem.num_vars:
        return None
    from repro.ilp.branch_bound import solve_bb

    import time

    started = time.perf_counter()
    reduced = solve_bb(collapse.problem, node_limit=_COLLAPSE_NODE_LIMIT)
    info.attempts.append(
        SolveAttempt(
            backend="exact",
            status=reduced.status,
            wall_s=time.perf_counter() - started,
        )
    )
    if not reduced.is_optimal or reduced.limit_hit:
        return None
    expanded = expand_solution(collapse, reduced.values)
    if not problem.is_feasible_point(expanded):
        return None
    return expanded


def _problem_key(problem: IlpProblem) -> str:
    """A content string for chaos keying: stable across processes/orders."""
    parts = [str(problem.num_vars)]
    for con in problem.constraints:
        coeffs = ",".join(str(c) for c in con.coefficients)
        parts.append(f"{con.sense.value}{con.rhs}:{coeffs}")
    return "|".join(parts)


def solve_ilp_info(
    problem: IlpProblem,
    backend: str = "auto",
    *,
    presolve: bool = True,
    warm_start: tuple[Fraction, ...] | None = None,
    timeout_s: float | None = None,
) -> tuple[IlpResult, SolveInfo]:
    """Solve an ILP and report structured per-solve telemetry.

    Args:
        problem: the model (left untouched; presolve works on a copy).
        backend: registered backend name, or ``"auto"``.
        presolve: run the reduction pass before any backend.
        warm_start: a candidate point (full variable space) used as the
            exact backend's starting incumbent when feasible.
        timeout_s: best-effort wall-clock budget forwarded to every backend
            attempt; a solve cut short reports ``timed_out`` in its attempt
            record and is treated as a declared (not proven) answer.
    """
    info = SolveInfo()
    reduced = problem
    if presolve:
        reduced, pinfo = run_presolve(problem)
        info.presolve = pinfo
        if pinfo.infeasible:
            info.backend = "presolve"
            info.status = Status.INFEASIBLE
            info.verified = True
            return IlpResult(Status.INFEASIBLE), info

    if backend == "auto":
        result = _solve_auto(problem, reduced, info, warm_start, timeout_s)
    elif backend == "exact":
        result = _solve_exact(problem, reduced, info, warm_start, timeout_s)
    else:
        result = _solve_named(
            problem, reduced, info, backend, warm_start, timeout_s
        )
    info.status = result.status
    return result, info


def _solve_exact(
    problem: IlpProblem,
    reduced: IlpProblem,
    info: SolveInfo,
    warm_start: tuple[Fraction, ...] | None,
    timeout_s: float | None = None,
) -> IlpResult:
    incumbent = _exact_warm_start(reduced, info, warm_start)
    result, attempt = timed_solve(
        get_backend("exact"), reduced, warm_start=incumbent,
        timeout_s=timeout_s,
    )
    info.attempts.append(attempt)
    info.backend = "exact"
    # Verify against the ORIGINAL model: this also guards the presolve
    # reductions themselves, not just the backend.
    verify_integral_solution(problem, result)
    info.verified = True
    return result


def _solve_named(
    problem: IlpProblem,
    reduced: IlpProblem,
    info: SolveInfo,
    backend: str,
    warm_start: tuple[Fraction, ...] | None,
    timeout_s: float | None = None,
) -> IlpResult:
    solver = get_backend(backend)
    if not solver.available():
        raise IlpError(
            f"{backend} backend requested but {backend} is unavailable"
        )
    result, attempt = timed_solve(
        solver, reduced, warm_start=warm_start, timeout_s=timeout_s
    )
    info.attempts.append(attempt)
    info.backend = backend
    if result.is_optimal:
        repaired = _round_to_integral(problem, result)
        if repaired is None:
            raise IlpError(
                f"{backend} returned an OPTIMAL point violating the model"
            )
        info.verified = True
        return repaired
    return result


def _solve_auto(
    problem: IlpProblem,
    reduced: IlpProblem,
    info: SolveInfo,
    warm_start: tuple[Fraction, ...] | None,
    timeout_s: float | None = None,
) -> IlpResult:
    """scipy when present, under the verification chain; exact otherwise."""
    scipy = get_backend("scipy")
    if not scipy.available():
        return _solve_exact(problem, reduced, info, warm_start, timeout_s)
    # Chaos only ever perturbs the *float* attempt: the recovery path under
    # test is the verification chain itself, and the exact backend stays
    # the trust anchor, so an injected fault can cost a fallback solve but
    # never a wrong answer.
    injector = get_injector()
    chaos_key = _problem_key(reduced) if injector is not None else ""
    if injector is not None and injector.decide("solver", chaos_key):
        info.attempts.append(
            SolveAttempt(
                backend="scipy",
                status=Status.INFEASIBLE,
                wall_s=0.0,
                timed_out=True,
            )
        )
        info.fallback = True
        return _solve_exact(problem, reduced, info, warm_start, timeout_s)
    result, attempt = timed_solve(scipy, reduced, timeout_s=timeout_s)
    info.attempts.append(attempt)
    if injector is not None and injector.decide("solver-wrong", chaos_key):
        result = _corrupt_result(reduced, result)
    if result.is_optimal:
        repaired = _round_to_integral(problem, result)
        if repaired is not None:
            info.backend = "scipy"
            info.verified = True
            return repaired
        # Rounded point violates the model: never trust it — fall back.
        info.fallback = True
        return _solve_exact(problem, reduced, info, warm_start, timeout_s)
    if result.status is Status.UNBOUNDED:
        info.backend = "scipy"
        return result
    # A float INFEASIBLE is a *semantic* answer for threshold
    # identification (the function would be declared non-threshold), so it
    # is always re-proved by the exact solver — and that fallback result is
    # verified exactly like a first-class exact solve.
    info.fallback = True
    return _solve_exact(problem, reduced, info, warm_start, timeout_s)


def _corrupt_result(problem: IlpProblem, result: IlpResult) -> IlpResult:
    """Chaos ``solver-wrong``: the shapes of float-solver misbehaviour.

    An OPTIMAL becomes a (false) INFEASIBLE — which the chain re-proves
    with the exact solver; anything else becomes a bogus all-zero OPTIMAL —
    which the round-and-recheck verification rejects (or, on the rare model
    where the origin is feasible, accepts as a valid if suboptimal gate).
    """
    if result.is_optimal:
        return IlpResult(Status.INFEASIBLE)
    zeros = tuple(Fraction(0) for _ in range(problem.num_vars))
    return IlpResult(Status.OPTIMAL, Fraction(0), zeros)


def solve_ilp(
    problem: IlpProblem,
    backend: str = "auto",
    *,
    presolve: bool = True,
    warm_start: tuple[Fraction, ...] | None = None,
    timeout_s: float | None = None,
) -> IlpResult:
    """Solve an ILP with the chosen backend (telemetry discarded).

    ``auto`` uses HiGHS when present but never trusts a float answer: an
    OPTIMAL point is rounded to integers and re-checked against every
    constraint (with an exact-solver fallback on violation), and an
    INFEASIBLE is confirmed with the exact solver, since TELS interprets
    infeasibility as "not a threshold function" and a false negative would
    silently degrade synthesis quality (never correctness).
    """
    result, _ = solve_ilp_info(
        problem,
        backend,
        presolve=presolve,
        warm_start=warm_start,
        timeout_s=timeout_s,
    )
    return result
