"""HiGHS mixed-integer backend via :func:`scipy.optimize.milp`.

Float-based but fast; results are rationalized back to exact Fractions and
re-verified against the model, so a numerically sloppy answer can never leak
into the synthesis flow (an invalid point falls back to the exact solver at
the dispatch layer).
"""

from __future__ import annotations

from fractions import Fraction

from repro.ilp.model import IlpProblem, IlpResult, Sense, Status


def have_scipy() -> bool:
    """True when scipy.optimize.milp is importable."""
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:
        return False
    return True


def solve_scipy(
    problem: IlpProblem, time_limit_s: float | None = None
) -> IlpResult:
    """Solve with HiGHS; returns INFEASIBLE on any numerical doubt.

    ``time_limit_s`` maps to HiGHS's ``time_limit`` option; a run HiGHS
    reports as stopped by an iteration or time limit (status 1) comes back
    as ``timed_out`` INFEASIBLE — a declared answer the dispatch layer
    never trusts semantically (it falls back to the exact solver, whose own
    budget is governed by the caller's deadline).
    """
    import numpy as np
    from scipy.optimize import Bounds, LinearConstraint, milp

    c = np.array([float(v) for v in problem.objective])
    constraints = []
    for con in problem.constraints:
        row = np.array([[float(v) for v in con.coefficients]])
        rhs = float(con.rhs)
        if con.sense is Sense.LE:
            constraints.append(LinearConstraint(row, -np.inf, rhs))
        elif con.sense is Sense.GE:
            constraints.append(LinearConstraint(row, rhs, np.inf))
        else:
            constraints.append(LinearConstraint(row, rhs, rhs))
    integrality = np.array([1 if flag else 0 for flag in problem.integer])
    bounds = Bounds(lb=0.0, ub=np.inf)
    options = {}
    if time_limit_s is not None:
        options["time_limit"] = max(time_limit_s, 0.0)
    result = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if result.status == 2:  # infeasible
        return IlpResult(Status.INFEASIBLE)
    if result.status == 3:  # unbounded
        return IlpResult(Status.UNBOUNDED)
    if result.status == 1:  # iteration or time limit reached
        return IlpResult(Status.INFEASIBLE, limit_hit=True, timed_out=True)
    if not result.success or result.x is None:
        return IlpResult(Status.INFEASIBLE)
    values = []
    for j, x in enumerate(result.x):
        if problem.integer[j]:
            values.append(Fraction(round(x)))
        else:
            values.append(Fraction(x).limit_denominator(10**9))
    values_t = tuple(values)
    if not problem.is_feasible_point(values_t):
        # Rounding produced an invalid point; report infeasible so the
        # dispatcher can fall back to the exact solver.
        return IlpResult(Status.INFEASIBLE)
    return IlpResult(
        Status.OPTIMAL, problem.objective_value(values_t), values_t
    )
