"""Declarative (integer) linear program model.

An :class:`IlpProblem` is a minimization over non-negative variables with
linear constraints.  Coefficients may be ints, Fractions, or floats (floats
are converted to Fractions exactly).  The model is backend-agnostic: the
pure-Python simplex/branch-and-bound and the scipy/HiGHS backend both consume
it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from collections.abc import Sequence

from repro.errors import IlpError

Number = int | float | Fraction


class Sense(Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Status(Enum):
    """Solve outcome."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class Constraint:
    """``coefficients . x  (sense)  rhs``; coefficients are dense."""

    coefficients: tuple[Fraction, ...]
    sense: Sense
    rhs: Fraction

    def evaluate(self, x: Sequence[Fraction]) -> bool:
        lhs = sum(c * v for c, v in zip(self.coefficients, x))
        if self.sense is Sense.LE:
            return lhs <= self.rhs
        if self.sense is Sense.GE:
            return lhs >= self.rhs
        return lhs == self.rhs


@dataclass(frozen=True)
class IlpResult:
    """Solution of an (I)LP.

    ``limit_hit`` marks an INFEASIBLE (or incumbent-only OPTIMAL) answer
    produced because the branch-and-bound search exhausted its node budget
    rather than proving the claim — the paper's own LP_SOLVE integration
    behaves the same way ("if the optimal solution cannot be found in a
    reasonable amount of time, it declares the problem as infeasible",
    Section V-E); threshold identification treats it as "not threshold" and
    simply splits the node further.

    ``timed_out`` marks an answer cut short by a wall-clock limit rather
    than a node budget; like ``limit_hit`` it means the claim was declared,
    not proven, so the dispatch layer never treats it as semantic.
    """

    status: Status
    objective: Fraction | None = None
    values: tuple[Fraction, ...] | None = None
    limit_hit: bool = False
    timed_out: bool = False

    @property
    def is_optimal(self) -> bool:
        return self.status is Status.OPTIMAL

    def int_values(self) -> tuple[int, ...]:
        """Values as exact ints (raises if any value is fractional)."""
        if self.values is None:
            raise IlpError("no solution values available")
        out = []
        for v in self.values:
            if v.denominator != 1:
                raise IlpError(f"non-integral value {v} in integer solution")
            out.append(int(v))
        return tuple(out)


def _to_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**9)
    raise IlpError(f"bad coefficient type {type(value).__name__}")


@dataclass
class IlpProblem:
    """Minimize ``objective . x`` subject to linear constraints, ``x >= 0``.

    Attributes:
        num_vars: number of decision variables.
        objective: dense objective coefficients (minimization).
        constraints: list of :class:`Constraint`.
        integer: per-variable integrality flags (default: all integer).
        names: optional variable names for diagnostics.
    """

    num_vars: int
    objective: list[Fraction] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)
    integer: list[bool] = field(default_factory=list)
    names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_vars < 0:
            raise IlpError("num_vars must be non-negative")
        if not self.objective:
            self.objective = [Fraction(0)] * self.num_vars
        self.objective = [_to_fraction(c) for c in self.objective]
        if len(self.objective) != self.num_vars:
            raise IlpError("objective length != num_vars")
        if not self.integer:
            self.integer = [True] * self.num_vars
        if len(self.integer) != self.num_vars:
            raise IlpError("integer flags length != num_vars")
        if not self.names:
            self.names = [f"x{i}" for i in range(self.num_vars)]

    def add_constraint(
        self,
        coefficients: Sequence[Number],
        sense: Sense | str,
        rhs: Number,
    ) -> None:
        """Append a dense constraint row."""
        if len(coefficients) != self.num_vars:
            raise IlpError(
                f"constraint has {len(coefficients)} coefficients, "
                f"expected {self.num_vars}"
            )
        if isinstance(sense, str):
            sense = Sense(sense)
        self.constraints.append(
            Constraint(
                tuple(_to_fraction(c) for c in coefficients),
                sense,
                _to_fraction(rhs),
            )
        )

    def is_feasible_point(self, x: Sequence[Number]) -> bool:
        """Check a candidate point against every constraint and x >= 0."""
        xs = [_to_fraction(v) for v in x]
        if len(xs) != self.num_vars:
            raise IlpError("point has wrong dimension")
        if any(v < 0 for v in xs):
            return False
        return all(c.evaluate(xs) for c in self.constraints)

    def objective_value(self, x: Sequence[Number]) -> Fraction:
        xs = [_to_fraction(v) for v in x]
        return sum(c * v for c, v in zip(self.objective, xs))
