"""Exact two-phase primal simplex over rational arithmetic.

Solves ``min c.x  s.t.  A x (<=|>=|==) b,  x >= 0`` with
:class:`fractions.Fraction` coefficients throughout, so there are no
tolerances to tune and feasibility answers are exact — which matters because
TELS uses ILP *feasibility* as the definition of "is a threshold function".
Bland's anti-cycling rule guarantees termination.  The models this library
generates are tiny (one variable per fanin plus the threshold), so clarity
wins over sparse-matrix engineering.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import IlpError
from repro.ilp.model import Constraint, IlpProblem, IlpResult, Sense, Status

ZERO = Fraction(0)
ONE = Fraction(1)


def solve_lp(
    problem: IlpProblem,
    extra_constraints: list[Constraint] | None = None,
) -> IlpResult:
    """Solve the LP relaxation (integrality ignored) of ``problem``.

    ``extra_constraints`` lets branch & bound push bound cuts without
    mutating the shared problem object.
    """
    constraints = list(problem.constraints)
    if extra_constraints:
        constraints.extend(extra_constraints)
    tableau = _Tableau(problem.num_vars, constraints, problem.objective)
    return tableau.solve()


class _Tableau:
    """Dense rational simplex tableau with Bland's rule."""

    def __init__(
        self,
        num_vars: int,
        constraints: list[Constraint],
        objective: list[Fraction],
    ):
        self.n = num_vars
        self.objective = list(objective)
        rows: list[list[Fraction]] = []
        senses: list[Sense] = []
        rhs: list[Fraction] = []
        for con in constraints:
            coeffs = list(con.coefficients)
            sense, b = con.sense, con.rhs
            if b < 0:
                coeffs = [-c for c in coeffs]
                b = -b
                if sense is Sense.LE:
                    sense = Sense.GE
                elif sense is Sense.GE:
                    sense = Sense.LE
            rows.append(coeffs)
            senses.append(sense)
            rhs.append(b)
        self.m = len(rows)

        # Column layout: structural | slack/surplus | artificial.
        slack_count = sum(1 for s in senses if s is not Sense.EQ)
        self.num_slack = slack_count
        total = self.n + slack_count + self.m  # upper bound on artificials
        self.cols = total
        self.a: list[list[Fraction]] = []
        self.b: list[Fraction] = []
        self.basis: list[int] = []
        self.artificial: list[int] = []

        slack_index = self.n
        art_index = self.n + slack_count
        for i in range(self.m):
            row = [ZERO] * total
            for j, c in enumerate(rows[i]):
                row[j] = Fraction(c)
            if senses[i] is Sense.LE:
                row[slack_index] = ONE
                self.basis.append(slack_index)
                slack_index += 1
            elif senses[i] is Sense.GE:
                row[slack_index] = -ONE
                slack_index += 1
                row[art_index] = ONE
                self.basis.append(art_index)
                self.artificial.append(art_index)
                art_index += 1
            else:
                row[art_index] = ONE
                self.basis.append(art_index)
                self.artificial.append(art_index)
                art_index += 1
            self.a.append(row)
            self.b.append(Fraction(rhs[i]))
        self.used_cols = art_index

    # ------------------------------------------------------------------
    def solve(self) -> IlpResult:
        if self.artificial:
            status = self._phase(
                [ONE if j in set(self.artificial) else ZERO for j in range(self.cols)],
                phase_one=True,
            )
            if status == "unbounded":
                raise IlpError("phase-1 LP cannot be unbounded")
            infeasibility = self._phase_objective_value(
                [ONE if j in set(self.artificial) else ZERO for j in range(self.cols)]
            )
            if infeasibility > 0:
                return IlpResult(Status.INFEASIBLE)
            self._drive_out_artificials()
        cost = [ZERO] * self.cols
        for j in range(self.n):
            cost[j] = self.objective[j]
        status = self._phase(cost, phase_one=False)
        if status == "unbounded":
            return IlpResult(Status.UNBOUNDED)
        values = [ZERO] * self.n
        for i, var in enumerate(self.basis):
            if var < self.n:
                values[var] = self.b[i]
        objective = sum(
            c * v for c, v in zip(self.objective, values)
        )
        return IlpResult(Status.OPTIMAL, Fraction(objective), tuple(values))

    # ------------------------------------------------------------------
    def _reduced_costs(self, cost: list[Fraction]) -> list[Fraction]:
        # y = c_B B^{-1} is implicit: with an explicit tableau the reduced
        # cost of column j is c_j - sum_i c_{basis[i]} * a[i][j].
        reduced = list(cost)
        for i, var in enumerate(self.basis):
            cb = cost[var]
            if cb == 0:
                continue
            row = self.a[i]
            for j in range(self.used_cols):
                if row[j] != 0:
                    reduced[j] -= cb * row[j]
        return reduced

    def _phase_objective_value(self, cost: list[Fraction]) -> Fraction:
        return sum(cost[var] * self.b[i] for i, var in enumerate(self.basis))

    def _phase(self, cost: list[Fraction], phase_one: bool) -> str:
        forbidden = set() if phase_one else set(self.artificial)
        while True:
            reduced = self._reduced_costs(cost)
            entering = -1
            for j in range(self.used_cols):  # Bland: lowest index
                if j in forbidden:
                    continue
                if reduced[j] < 0:
                    entering = j
                    break
            if entering < 0:
                return "optimal"
            leaving = -1
            best_ratio: Fraction | None = None
            for i in range(self.m):
                coeff = self.a[i][entering]
                if coeff > 0:
                    ratio = self.b[i] / coeff
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[i] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return "unbounded"
            self._pivot(leaving, entering)

    def _pivot(self, row: int, col: int) -> None:
        pivot = self.a[row][col]
        inv = ONE / pivot
        self.a[row] = [v * inv for v in self.a[row]]
        self.b[row] *= inv
        for i in range(self.m):
            if i == row:
                continue
            factor = self.a[i][col]
            if factor == 0:
                continue
            pivot_row = self.a[row]
            self.a[i] = [
                v - factor * pv for v, pv in zip(self.a[i], pivot_row)
            ]
            self.b[i] -= factor * self.b[row]
        self.basis[row] = col

    def _drive_out_artificials(self) -> None:
        """Pivot basic artificial variables out (or mark rows redundant)."""
        art = set(self.artificial)
        for i in range(self.m):
            if self.basis[i] not in art:
                continue
            # b[i] must be 0 here (phase 1 optimal, feasible). Find any
            # non-artificial column with a nonzero coefficient to pivot in.
            pivot_col = -1
            for j in range(self.used_cols):
                if j in art:
                    continue
                if self.a[i][j] != 0:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                self._pivot(i, pivot_col)
            # Otherwise the row is all zeros over real columns: redundant
            # constraint; leave the artificial basic at value 0 (harmless —
            # phase 2 forbids artificial columns from entering).
