"""Presolve layer: model reductions applied before any backend runs.

Every reduction here is *exactness-preserving* for minimization over
``x >= 0``: the reduced problem has the same feasible set and the same
optimal objective as the input, so any backend may consume the reduced
model and its answer maps back unchanged.  Three reductions are applied:

* **duplicate elimination** — syntactically identical rows collapse to one;
* **dominated-constraint elimination** — over ``x >= 0``, a row
  ``a.x >= b`` is implied by ``a'.x >= b'`` whenever ``a >= a'``
  componentwise and ``b <= b'`` (and dually for ``<=`` rows); implied rows
  are dropped.  This is the generalization of the paper's "redundant
  constraint elimination" from the ON/OFF-cube level down to arbitrary
  rows;
* **bound consolidation** — all singleton rows on one variable (the
  ``max_weight`` box constraints of the threshold ILP) merge into the
  single tightest pair, and an empty box (``ub < lb`` or ``ub < 0``) is
  reported as infeasible without touching a solver.

On top of the row reductions, :func:`symmetry_classes` detects
*interchangeable variables* — columns whose swap maps the (objective,
constraint-multiset) pair onto itself.  Interchangeable inputs are
ubiquitous in the Fig. 6 ILPs (any symmetric pair of the underlying
function produces one).  :func:`collapse_symmetric` rewrites the model
with one weight variable per class (each row coefficient becomes the class
sum, which is exact when all members share one value), and
:func:`expand_solution` maps a reduced solution back to the full variable
space.  The collapsed model *restricts* the search to equal weights within
a class, so the solver stack uses its (verified) solution as a warm-start
incumbent rather than as the final answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.ilp.model import Constraint, IlpProblem, Sense


@dataclass(frozen=True)
class PresolveInfo:
    """What one presolve pass did to a model."""

    rows_in: int = 0
    rows_out: int = 0
    duplicates_removed: int = 0
    dominated_removed: int = 0
    bounds_merged: int = 0
    symmetry_classes: tuple[tuple[int, ...], ...] = ()
    infeasible: bool = False

    @property
    def rows_removed(self) -> int:
        return self.rows_in - self.rows_out

    @property
    def collapsible_vars(self) -> int:
        """Variables a symmetric collapse would eliminate."""
        return sum(len(c) - 1 for c in self.symmetry_classes)


@dataclass(frozen=True)
class SymmetryCollapse:
    """A collapsed model plus the map back to the full variable space."""

    problem: IlpProblem
    #: representative (reduced) variable index for each original variable.
    var_map: tuple[int, ...]
    num_original_vars: int


def _row_key(con: Constraint) -> tuple:
    return (con.coefficients, con.sense, con.rhs)


def _dominates(keeper: Constraint, candidate: Constraint) -> bool:
    """True when ``keeper`` implies ``candidate`` for every ``x >= 0``."""
    if keeper.sense is not candidate.sense:
        return False
    if keeper.sense is Sense.GE:
        # keeper: a'.x >= b'; candidate: a.x >= b with a >= a', b <= b'.
        return candidate.rhs <= keeper.rhs and all(
            c >= k for c, k in zip(candidate.coefficients, keeper.coefficients)
        )
    if keeper.sense is Sense.LE:
        return candidate.rhs >= keeper.rhs and all(
            c <= k for c, k in zip(candidate.coefficients, keeper.coefficients)
        )
    return False  # EQ rows are only deduplicated


def _singleton_var(con: Constraint) -> int | None:
    """The variable index of a single-nonzero-coefficient row, or None."""
    found = None
    for j, c in enumerate(con.coefficients):
        if c != 0:
            if found is not None:
                return None
            found = j
    return found


def presolve(problem: IlpProblem) -> tuple[IlpProblem, PresolveInfo]:
    """Reduce a model; returns the reduced problem and what was done.

    The reduced problem shares ``num_vars``/``objective``/``integer`` with
    the input — only the constraint list shrinks — so solutions need no
    re-mapping.  ``info.infeasible`` is set when a row (or a merged bound
    box) can never hold over ``x >= 0``; the constraint set is returned
    untouched in that case so an exact solver can still produce its own
    certificate if the caller prefers.
    """
    rows_in = len(problem.constraints)
    duplicates = 0
    dominated = 0
    bounds_merged = 0

    # 1. Trivial infeasibility: an all-zero row with an unsatisfiable rhs,
    #    or a row that cannot hold for any x >= 0.
    for con in problem.constraints:
        if all(c == 0 for c in con.coefficients):
            zero = Fraction(0)
            ok = con.evaluate([zero] * problem.num_vars)
            if not ok:
                return problem, PresolveInfo(
                    rows_in=rows_in, rows_out=rows_in, infeasible=True
                )
        elif con.sense is Sense.LE and con.rhs < 0 and all(
            c >= 0 for c in con.coefficients
        ):
            # Nonnegative combination of nonnegative variables <= negative.
            return problem, PresolveInfo(
                rows_in=rows_in, rows_out=rows_in, infeasible=True
            )

    # 2. Duplicate elimination (order-preserving).
    seen: set[tuple] = set()
    rows: list[Constraint] = []
    for con in problem.constraints:
        key = _row_key(con)
        if key in seen:
            duplicates += 1
            continue
        seen.add(key)
        rows.append(con)

    # 3. Singleton-bound consolidation: keep only the tightest upper and
    #    lower bound row per variable.
    best_ub: dict[int, Constraint] = {}
    best_lb: dict[int, Constraint] = {}
    others: list[Constraint] = []
    order: list[Constraint] = []
    for con in rows:
        var = _singleton_var(con)
        if var is None or con.sense is Sense.EQ:
            others.append(con)
            order.append(con)
            continue
        coef = con.coefficients[var]
        # Normalize to x_var (sense) rhs/coef; a negative coefficient flips
        # the sense, which the generic dominance pass below already handles —
        # keep those rows out of the merge to stay simple.
        if coef < 0:
            others.append(con)
            order.append(con)
            continue
        bound = con.rhs / coef
        if con.sense is Sense.LE:
            held = best_ub.get(var)
            if held is None:
                best_ub[var] = con
                order.append(con)
            else:
                bounds_merged += 1
                if bound < held.rhs / held.coefficients[var]:
                    best_ub[var] = con
                    order[order.index(held)] = con
        else:
            held = best_lb.get(var)
            if held is None:
                best_lb[var] = con
                order.append(con)
            else:
                bounds_merged += 1
                if bound > held.rhs / held.coefficients[var]:
                    best_lb[var] = con
                    order[order.index(held)] = con
    for var, ub_con in best_ub.items():
        ub = ub_con.rhs / ub_con.coefficients[var]
        if ub < 0:
            return problem, PresolveInfo(
                rows_in=rows_in, rows_out=rows_in, infeasible=True
            )
        lb_con = best_lb.get(var)
        if lb_con is not None:
            lb = lb_con.rhs / lb_con.coefficients[var]
            if lb > ub:
                return problem, PresolveInfo(
                    rows_in=rows_in, rows_out=rows_in, infeasible=True
                )
    rows = order

    # 4. Dominated-row elimination (quadratic scan; models here are small).
    kept: list[Constraint] = []
    for i, con in enumerate(rows):
        implied = False
        for k, other in enumerate(rows):
            if k == i or _row_key(other) == _row_key(con):
                continue
            if _dominates(other, con):
                # Break mutual-domination ties by keeping the earlier row.
                if _dominates(con, other) and k > i:
                    continue
                implied = True
                break
        if implied:
            dominated += 1
        else:
            kept.append(con)

    reduced = IlpProblem(
        num_vars=problem.num_vars,
        objective=list(problem.objective),
        constraints=kept,
        integer=list(problem.integer),
        names=list(problem.names),
    )
    info = PresolveInfo(
        rows_in=rows_in,
        rows_out=len(kept),
        duplicates_removed=duplicates,
        dominated_removed=dominated,
        bounds_merged=bounds_merged,
        symmetry_classes=symmetry_classes(reduced),
    )
    return reduced, info


def symmetry_classes(problem: IlpProblem) -> tuple[tuple[int, ...], ...]:
    """Classes of interchangeable variables (size >= 2 only).

    Variables *i* and *j* are interchangeable when swapping columns *i* and
    *j* maps the constraint multiset onto itself and fixes the objective —
    the model cannot tell the two variables apart, so any solution stays
    feasible under the swap.
    """
    n = problem.num_vars
    if n < 2:
        return ()
    rows = [
        (con.coefficients, con.sense, con.rhs) for con in problem.constraints
    ]
    # Cheap signature: a variable's multiset of (coefficient, rest-of-row
    # fingerprint ignoring the candidate pair) would be exact; sorting the
    # column alone is a sound pre-filter.
    column: list[tuple] = []
    for j in range(n):
        column.append(
            (
                problem.objective[j],
                problem.integer[j],
                tuple(sorted(coeffs[j] for coeffs, _, _ in rows)),
            )
        )
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def swapped_rows(i: int, j: int) -> list[tuple]:
        out = []
        for coeffs, sense, rhs in rows:
            swapped = list(coeffs)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            out.append((tuple(swapped), sense, rhs))
        return out

    row_multiset = sorted(rows, key=repr)
    for i in range(n):
        for j in range(i + 1, n):
            if column[i] != column[j]:
                continue
            if find(i) == find(j):
                continue
            if sorted(swapped_rows(i, j), key=repr) == row_multiset:
                parent[find(j)] = find(i)
    groups: dict[int, list[int]] = {}
    for j in range(n):
        groups.setdefault(find(j), []).append(j)
    return tuple(
        tuple(members) for members in groups.values() if len(members) >= 2
    )


def collapse_symmetric(
    problem: IlpProblem,
    classes: tuple[tuple[int, ...], ...] | None = None,
) -> SymmetryCollapse | None:
    """Collapse each interchangeable class into one weight variable.

    Returns None when there is nothing to collapse.  The collapsed model
    forces equal values within a class (each row coefficient for the class
    variable is the class sum), so it is a *restriction*: a collapsed
    optimum expands to a feasible point of the original model, but an
    asymmetric original optimum can in principle be smaller — which is why
    the solver stack treats the expansion as a warm-start incumbent.
    """
    if classes is None:
        classes = symmetry_classes(problem)
    if not classes:
        return None
    n = problem.num_vars
    rep_of: dict[int, int] = {}
    for members in classes:
        for m in members:
            rep_of[m] = members[0]
    reps = [j for j in range(n) if rep_of.get(j, j) == j]
    slot = {j: s for s, j in enumerate(reps)}
    var_map = tuple(slot[rep_of.get(j, j)] for j in range(n))

    def fold(values) -> list[Fraction]:
        out = [Fraction(0)] * len(reps)
        for j, value in enumerate(values):
            out[var_map[j]] += value
        return out

    reduced = IlpProblem(
        num_vars=len(reps),
        objective=fold(problem.objective),
        integer=[problem.integer[j] for j in reps],
        names=[problem.names[j] for j in reps],
    )
    for con in problem.constraints:
        reduced.add_constraint(fold(con.coefficients), con.sense, con.rhs)
    # Folding can create duplicate rows; drop them.
    reduced, _ = presolve(reduced)
    return SymmetryCollapse(
        problem=reduced, var_map=var_map, num_original_vars=n
    )


def expand_solution(
    collapse: SymmetryCollapse, values: tuple[Fraction, ...]
) -> tuple[Fraction, ...]:
    """Map a collapsed solution back to the full variable space."""
    return tuple(
        values[collapse.var_map[j]]
        for j in range(collapse.num_original_vars)
    )
