"""Chow-parameter fast path: resolve threshold checks without an LP.

Smaus–Schilling–Wenzelmann ("Implementations of two Algorithms for the
Threshold Synthesis Problem", arXiv:2301.03667) observe that most small
threshold-synthesis instances are settled by combinatorial reasoning alone.
This module implements that pre-pass for the Fig. 6 identification ILP, on
the *positive-unate minimized prime cover* (so every support variable is
essential):

1. **2-monotonicity screen.**  For every support pair ``(i, j)`` compare the
   cofactors ``f[i=1, j=0]`` and ``f[j=1, i=0]``.  Threshold functions are
   2-monotonic, so an incomparable pair proves the ILP infeasible: a feasible
   ``(w, T)`` would force both ``w_i < w_j`` and ``w_j < w_i`` (take a point
   true on one side and false on the other, in both directions).

2. **Chow-ordered weight enumeration.**  The Chow parameter of variable *i*
   is the number of true points with ``x_i = 1``.  For any vector feasible
   for the ON/OFF system, ``chow_i > chow_j`` implies ``w_i >= w_j`` (the
   swap argument), and after the screen, equal Chow parameters mean the pair
   is symmetric (either weight order works).  So enumerating only
   *non-increasing* weight tuples in Chow-descending order, by increasing
   weight sum ``S``, visits every realization up to symmetry.  Each support
   variable is essential, which pins ``w_i >= delta_on + delta_off``.  For a
   fixed tuple the feasible thresholds form the interval
   ``[max_off_dc_sum + delta_off, min_on_cube_sum - delta_on]``, so the
   tuple is checked against *all* ON/OFF inequalities in O(cubes) with no LP.
   The first feasible tuple at the smallest ``S`` (taking the smallest legal
   ``T``) minimizes ``sum(w) + T`` — the same objective the ILP minimizes —
   so a hit is *provably optimal*, not merely feasible.

Outcomes: ``HIT`` (optimal vector, ILP skipped), ``NOT_THRESHOLD`` (screen
failed, or the ``max_weight`` box was exhausted — ILP skipped), or
``UNDECIDED`` (support too wide, or enumeration budget exhausted — the best
feasible tuple found, if any, is handed to branch & bound as a warm-start
incumbent).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from collections.abc import Sequence

from repro.boolean import bitset
from repro.boolean.cover import Cover

#: All 2-monotonic functions of up to 8 variables are threshold functions,
#: so below this support size a screened-in function always enumerates to an
#: optimum (budget permitting); above it we don't try.
DEFAULT_MAX_SUPPORT = 8

#: Weight tuples examined before giving up and falling back to the ILP.
DEFAULT_BUDGET = 5_000


class FastpathStatus(Enum):
    HIT = "hit"  # optimal vector found, ILP skipped
    NOT_THRESHOLD = "not_threshold"  # proven infeasible, ILP skipped
    UNDECIDED = "undecided"  # fall back to the ILP


@dataclass(frozen=True)
class FastpathResult:
    """Outcome of one fast-path attempt.

    ``values`` (on HIT) and ``candidate`` (on UNDECIDED, when any feasible
    tuple was seen before the budget ran out) are laid out exactly like the
    Fig. 6 ILP solution vector: one weight per support variable in ascending
    variable order, then the threshold ``T`` in the last slot.
    """

    status: FastpathStatus
    values: tuple[int, ...] | None = None
    candidate: tuple[int, ...] | None = None
    tuples_tried: int = 0
    screened: bool = False

    @property
    def is_hit(self) -> bool:
        return self.status is FastpathStatus.HIT


def chow_parameters(cover: Cover) -> dict[int, int]:
    """Chow parameter per support variable: ``|{p : f(p), p_i = 1}|``.

    Counts are taken over the full variable space (the restricted cofactor
    leaves ``x_i`` free, doubling every count uniformly), which preserves
    the ordering the enumeration needs.
    """
    support = cover.support_vars()
    if cover.packable():
        return bitset.chow_from_table(
            cover.packed_table(), cover.nvars, support
        )
    return {
        var: cover.restrict(var, True).num_minterms() for var in support
    }


def chow_parameters_batch(covers: Sequence[Cover]) -> list[dict[int, int]]:
    """Chow parameters for many covers at once (bit-parallel when packed).

    Covers sharing a variable count are screened in one broadcast popcount
    pass; unpackable covers fall back to :func:`chow_parameters` per cover.
    """
    out: list[dict[int, int] | None] = [None] * len(covers)
    groups: dict[int, list[int]] = {}
    for idx, cover in enumerate(covers):
        if cover.packable() and cover.nvars > 0:
            groups.setdefault(cover.nvars, []).append(idx)
        else:
            out[idx] = chow_parameters(cover)
    for nvars, indices in groups.items():
        tables = [covers[i].packed_table() for i in indices]
        rows = bitset.chow_batch(tables, nvars)
        for i, row in zip(indices, rows):
            support = covers[i].support_vars()
            out[i] = {var: row[var] for var in support}
    return [row if row is not None else {} for row in out]


def two_monotonicity_violation(
    cover: Cover, support: list[int] | None = None
) -> tuple[int, int] | None:
    """The first support pair proving the function is not 2-monotonic.

    Returns None when every pair of cofactors ``f[i=1,j=0]`` / ``f[j=1,i=0]``
    is comparable (a necessary condition for thresholdness).
    """
    if support is None:
        support = cover.support_vars()
    if cover.packable():
        table = cover.packed_table()
        nvars = cover.nvars
        cof: dict[tuple[int, bool], bitset.BitVec] = {}

        def cofactor(var: int, value: bool) -> bitset.BitVec:
            key = (var, value)
            if key not in cof:
                cof[key] = bitset.cofactor_table(table, nvars, var, value)
            return cof[key]

        for a_pos, i in enumerate(support):
            for j in support[a_pos + 1 :]:
                fi = bitset.cofactor_table(cofactor(i, True), nvars, j, False)
                fj = bitset.cofactor_table(cofactor(j, True), nvars, i, False)
                if not fj.andnot(fi).is_zero() and not fi.andnot(fj).is_zero():
                    return (i, j)
        return None
    for a_pos, i in enumerate(support):
        for j in support[a_pos + 1 :]:
            fi = cover.restrict(i, True).restrict(j, False)
            fj = cover.restrict(j, True).restrict(i, False)
            if not fi.covers(fj) and not fj.covers(fi):
                return (i, j)
    return None


def screen_batch(
    covers: Sequence[Cover],
) -> list[tuple[int, int] | None]:
    """2-monotonicity screen over many covers (first violation or None)."""
    return [two_monotonicity_violation(cover) for cover in covers]


def fastpath_check(
    positive: Cover,
    off_cubes: Cover,
    *,
    delta_on: int = 0,
    delta_off: int = 1,
    max_weight: int | None = None,
    max_support: int = DEFAULT_MAX_SUPPORT,
    budget: int = DEFAULT_BUDGET,
) -> FastpathResult:
    """Try to settle a Fig. 6 instance combinatorially.

    Args:
        positive: the positive-unate *minimized prime* cover (every support
            variable essential — the caller gates on ``minimize_cover``).
        off_cubes: cubes of its complement (the maximal false points).
        delta_on / delta_off: the defect tolerances of the ILP.
        max_weight: the per-weight box bound, if any.  With a box, tuple
            exhaustion is a proof of infeasibility; without one the search
            can only HIT or give up.
        max_support: widest support attempted (see DEFAULT_MAX_SUPPORT).
        budget: weight tuples examined before declaring UNDECIDED.
    """
    undecided = FastpathResult(FastpathStatus.UNDECIDED)
    support = positive.support_vars()
    n = len(support)
    if n == 0 or n > max_support:
        return undecided
    if delta_on + delta_off <= 0:
        # Degenerate tolerances: a point with sum exactly T would satisfy
        # both sides, so neither the screen nor the essential-variable bound
        # below is sound.  Leave it to the ILP.
        return undecided
    if two_monotonicity_violation(positive, support) is not None:
        return FastpathResult(FastpathStatus.NOT_THRESHOLD, screened=True)

    # Chow-descending slot order (ties by variable index; after the screen,
    # equal-Chow pairs are symmetric so one tie order suffices).
    chow = chow_parameters(positive)
    order = sorted(support, key=lambda v: (-chow[v], v))
    pos_of = {var: k for k, var in enumerate(order)}

    # ON rows: positions (in `order`) of each cube's literals.
    on_rows = [
        tuple(pos_of[var] for var, _ in cube.literals())
        for cube in positive.cubes
    ]
    # OFF rows: positions of each complement cube's don't-care variables.
    off_rows = [
        tuple(pos_of[var] for var in support if not (cube.neg & (1 << var)))
        for cube in off_cubes.cubes
    ]
    if not on_rows or not off_rows:
        return undecided  # constants are the caller's business

    wmin = delta_on + delta_off
    t_floor = max(delta_off, 0)
    best_obj: int | None = None
    best: tuple[int, ...] | None = None  # weights in `order`, then T

    def pack(weights: tuple[int, ...], threshold: int) -> tuple[int, ...]:
        by_var = {var: weights[pos_of[var]] for var in support}
        return tuple(by_var[var] for var in support) + (threshold,)

    tried = 0
    s = n * wmin
    while True:
        if best_obj is not None and s + t_floor >= best_obj:
            assert best is not None
            return FastpathResult(
                FastpathStatus.HIT,
                values=pack(best[:-1], best[-1]),
                tuples_tried=tried,
            )
        if max_weight is not None and s > n * max_weight:
            # The whole [wmin, max_weight]^n box is exhausted: whatever was
            # found (if anything) is the optimum, since every realization up
            # to symmetry has been checked.
            if best is not None:
                return FastpathResult(
                    FastpathStatus.HIT,
                    values=pack(best[:-1], best[-1]),
                    tuples_tried=tried,
                )
            return FastpathResult(
                FastpathStatus.NOT_THRESHOLD, tuples_tried=tried
            )
        for weights in _weight_tuples(s, n, wmin, max_weight):
            tried += 1
            if tried > budget:
                return FastpathResult(
                    FastpathStatus.UNDECIDED,
                    candidate=(
                        pack(best[:-1], best[-1]) if best is not None else None
                    ),
                    tuples_tried=tried,
                )
            t_hi = min(sum(weights[k] for k in row) for row in on_rows)
            t_hi -= delta_on
            t_lo = max(
                max(sum(weights[k] for k in row) for row in off_rows)
                + delta_off,
                0,
            )
            if t_lo > t_hi:
                continue
            obj = s + t_lo
            if best_obj is None or obj < best_obj:
                best_obj = obj
                best = weights + (t_lo,)
        s += 1


def _weight_tuples(total: int, parts: int, lo: int, hi: int | None):
    """Non-increasing ``parts``-tuples in ``[lo, hi]`` summing to ``total``.

    Yielded with the largest leading weight first, so within one weight sum
    the enumeration (and therefore the returned optimum) is deterministic.
    """
    if hi is None:
        hi = total

    def rec(remaining: int, k: int, cap: int, prefix: list[int]):
        if k == 0:
            if remaining == 0:
                yield tuple(prefix)
            return
        top = min(cap, remaining - (k - 1) * lo)
        for v in range(top, lo - 1, -1):
            if v * k < remaining:
                break  # even k copies of v cannot reach the target
            prefix.append(v)
            yield from rec(remaining - v, k - 1, v, prefix)
            prefix.pop()

    yield from rec(total, parts, hi, [])
