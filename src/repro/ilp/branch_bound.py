"""Branch & bound integer programming on top of the exact simplex.

Depth-first search with best-incumbent pruning.  Branching adds simple bound
cuts (``x_j <= floor(v)`` / ``x_j >= ceil(v)``) as extra constraints, so the
base LP is never mutated.  All arithmetic is rational, so "integral" means
exactly integral — no epsilon rounding.
"""

from __future__ import annotations

import math
import time
from fractions import Fraction

from repro.errors import IlpError
from repro.ilp.model import Constraint, IlpProblem, IlpResult, Sense, Status
from repro.ilp.simplex import solve_lp

# Far above anything the threshold-identification ILPs need (they solve in
# tens of nodes), but low enough that an adversarial divisibility trap the
# GCD presolve cannot see (e.g. one encoded through inequalities) gives up
# in a couple of seconds rather than minutes.
DEFAULT_NODE_LIMIT = 1_000


def solve_bb(
    problem: IlpProblem,
    node_limit: int = DEFAULT_NODE_LIMIT,
    incumbent_values: tuple[Fraction, ...] | None = None,
    time_limit_s: float | None = None,
) -> IlpResult:
    """Solve an ILP by branch & bound; exact rational arithmetic.

    Mirrors the paper's practical stance on NP-completeness: if the search
    exceeds ``node_limit`` LP nodes the problem is declared infeasible (the
    synthesis flow then simply splits the node further).  ``time_limit_s``
    adds a wall-clock analogue, checked before every node: a blown budget
    returns the best incumbent (``timed_out=True``) or a declared — never
    proven — infeasibility, exactly like a node-limit hit.

    ``incumbent_values`` warm-starts the search with a known point (the
    Chow-parameter fast path or a symmetry-collapsed pre-solve supply one):
    if it is a feasible integral point it becomes the starting incumbent,
    so every node whose relaxation cannot beat it is pruned immediately.
    An infeasible or non-integral hint is silently ignored.
    """
    deadline_at = (
        None if time_limit_s is None else time.perf_counter() + time_limit_s
    )
    if _gcd_infeasible(problem):
        return IlpResult(Status.INFEASIBLE)
    root = solve_lp(problem)
    if root.status is Status.INFEASIBLE:
        return root
    if root.status is Status.UNBOUNDED:
        # The relaxation is unbounded.  With all-integer variables the ILP is
        # unbounded too (integral points exist arbitrarily far along the ray).
        return root

    incumbent: IlpResult | None = None
    if incumbent_values is not None:
        seeded = tuple(Fraction(v) for v in incumbent_values)
        if (
            len(seeded) == problem.num_vars
            and all(
                v.denominator == 1
                for v, flag in zip(seeded, problem.integer)
                if flag
            )
            and problem.is_feasible_point(seeded)
        ):
            incumbent = IlpResult(
                Status.OPTIMAL, problem.objective_value(seeded), seeded
            )
    nodes_used = 0
    # Each node carries per-variable integer bounds (lo, hi); branching
    # *tightens* a bound instead of stacking a new cut row, so the LP at
    # every node has at most 2 extra rows per variable regardless of depth.
    Bounds = dict[int, tuple[int | None, int | None]]
    stack: list[Bounds] = [{}]
    seen: set[tuple] = set()

    while stack:
        bounds = stack.pop()
        key = tuple(sorted(bounds.items()))
        if key in seen:
            continue
        seen.add(key)
        nodes_used += 1
        timed_out = (
            deadline_at is not None and time.perf_counter() > deadline_at
        )
        if nodes_used > node_limit or timed_out:
            if incumbent is not None:
                return IlpResult(
                    incumbent.status,
                    incumbent.objective,
                    incumbent.values,
                    limit_hit=True,
                    timed_out=timed_out,
                )
            return IlpResult(
                Status.INFEASIBLE, limit_hit=True, timed_out=timed_out
            )
        cuts = _bounds_to_cuts(problem.num_vars, bounds)
        relaxed = solve_lp(problem, cuts) if cuts else root
        if relaxed.status is not Status.OPTIMAL:
            continue
        assert relaxed.objective is not None and relaxed.values is not None
        if incumbent is not None and relaxed.objective >= incumbent.objective:
            continue  # bound: cannot beat the incumbent
        fractional = _first_fractional(problem, relaxed.values)
        if fractional is None:
            incumbent = relaxed
            continue
        j, value = fractional
        lo, hi = bounds.get(j, (None, None))
        floor_bounds = dict(bounds)
        floor_bounds[j] = (lo, math.floor(value))
        ceil_bounds = dict(bounds)
        ceil_bounds[j] = (math.ceil(value), hi)
        stack.append(floor_bounds)
        stack.append(ceil_bounds)

    if incumbent is None:
        return IlpResult(Status.INFEASIBLE)
    return incumbent


def _bounds_to_cuts(num_vars: int, bounds) -> list[Constraint]:
    cuts: list[Constraint] = []
    for var, (lo, hi) in bounds.items():
        if lo is not None:
            cuts.append(_bound_cut(num_vars, var, Sense.GE, lo))
        if hi is not None:
            cuts.append(_bound_cut(num_vars, var, Sense.LE, hi))
    return cuts


def _gcd_infeasible(problem: IlpProblem) -> bool:
    """Presolve: an equality over integer variables with integer
    coefficients is integrally infeasible when gcd(coefficients) does not
    divide the right-hand side.  Without this cut, branch & bound grinds to
    its node limit on such constraints (the LP stays feasible forever)."""
    for con in problem.constraints:
        if con.sense is not Sense.EQ:
            continue
        if any(
            c != 0 and not problem.integer[j]
            for j, c in enumerate(con.coefficients)
        ):
            continue
        # Scale to integers (coefficients are exact Fractions).
        denominators = [c.denominator for c in con.coefficients] + [
            con.rhs.denominator
        ]
        scale = 1
        for d in denominators:
            scale = scale * d // math.gcd(scale, d)
        coeffs = [int(c * scale) for c in con.coefficients]
        rhs = con.rhs * scale
        if rhs.denominator != 1:
            return True  # cannot happen after scaling, defensive
        g = 0
        for c in coeffs:
            g = math.gcd(g, abs(c))
        if g == 0:
            if rhs != 0:
                return True
            continue
        if int(rhs) % g != 0:
            return True
    return False


def _first_fractional(
    problem: IlpProblem, values: tuple[Fraction, ...]
) -> tuple[int, Fraction] | None:
    """Most-fractional integer variable, or None when integral."""
    best: tuple[int, Fraction] | None = None
    best_dist = Fraction(0)
    for j, value in enumerate(values):
        if not problem.integer[j]:
            continue
        frac = value - math.floor(value)
        if frac == 0:
            continue
        dist = min(frac, 1 - frac)
        if dist > best_dist:
            best_dist = dist
            best = (j, value)
    return best


def _bound_cut(num_vars: int, var: int, sense: Sense, bound: int) -> Constraint:
    coeffs = [Fraction(0)] * num_vars
    coeffs[var] = Fraction(1)
    return Constraint(tuple(coeffs), sense, Fraction(bound))


def verify_integral_solution(problem: IlpProblem, result: IlpResult) -> None:
    """Raise IlpError if an OPTIMAL result is not a feasible integral point."""
    if result.status is not Status.OPTIMAL:
        return
    assert result.values is not None
    for j, v in enumerate(result.values):
        if problem.integer[j] and v.denominator != 1:
            raise IlpError(f"variable {problem.names[j]} = {v} not integral")
    if not problem.is_feasible_point(result.values):
        raise IlpError("solution violates a constraint")
