"""Substrate micro-benchmarks: the operations the synthesis loop lives on.

Not tied to a paper artifact; these catch performance regressions in the
cover engine, simplex, simulation, and the script pipelines.
"""

from __future__ import annotations

import random

from repro.benchgen.mcnc import build_benchmark
from repro.boolean.cover import Cover
from repro.boolean.factor import factor
from repro.boolean.kernels import kernels
from repro.boolean.minimize import minimize
from repro.network.scripts import script_algebraic
from repro.network.simulate import random_pi_words, simulate_words


def _random_covers(count, nvars, cubes, seed=0):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        rows = [
            "".join(rng.choice("01-") for _ in range(nvars))
            for _ in range(cubes)
        ]
        out.append(Cover.from_strings(rows))
    return out


def test_benchmark_complement(benchmark):
    covers = _random_covers(30, 8, 8)

    def run():
        for cover in covers:
            cover.complement()

    benchmark(run)


def test_benchmark_tautology(benchmark):
    covers = _random_covers(50, 8, 10, seed=1)

    def run():
        for cover in covers:
            cover.is_tautology()

    benchmark(run)


def test_benchmark_minimize(benchmark):
    covers = _random_covers(20, 6, 8, seed=2)

    def run():
        for cover in covers:
            minimize(cover)

    benchmark(run)


def test_benchmark_kernels(benchmark):
    covers = _random_covers(20, 8, 10, seed=3)

    def run():
        for cover in covers:
            kernels(cover)

    benchmark(run)


def test_benchmark_factor(benchmark):
    covers = _random_covers(20, 8, 10, seed=4)

    def run():
        for cover in covers:
            factor(cover)

    benchmark(run)


def test_benchmark_bit_parallel_simulation(benchmark):
    net = build_benchmark("comp")
    rng = random.Random(0)
    words = random_pi_words(net, 4096, rng)
    benchmark(lambda: simulate_words(net, words, 4096))


def test_benchmark_script_algebraic(benchmark):
    source = build_benchmark("term1")
    benchmark(lambda: script_algebraic(source))
