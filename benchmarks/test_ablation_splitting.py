"""Ablation — splitting heuristic (DESIGN.md §6).

The paper motivates rule 3 (split on the *most frequent* variable) via
Theorem 1: fewer candidate literal replacements survive in the split halves,
so they are more likely to be threshold functions.  This ablation compares
the default heuristic against random-variable splitting across the suite.
"""

from __future__ import annotations

import pytest

from repro.benchgen.mcnc import benchmark_names, build_benchmark
from repro.core.area import network_stats
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.network.scripts import prepare_tels

NAMES = [n for n in benchmark_names(include_large=False)]


@pytest.fixture(scope="module")
def ablation_results():
    rows = []
    for name in NAMES:
        prepared = prepare_tels(build_benchmark(name))
        default = synthesize(
            prepared, SynthesisOptions(psi=3, split_on_most_frequent=True)
        )
        randomized = synthesize(
            prepared,
            SynthesisOptions(psi=3, split_on_most_frequent=False, seed=1),
        )
        rows.append(
            (name, network_stats(default).gates, network_stats(randomized).gates)
        )
    return rows


def test_print_ablation(ablation_results):
    print()
    print("Splitting heuristic ablation — TELS gate count")
    print(f"{'benchmark':10s} {'most-freq':>10s} {'random':>8s}")
    for name, default, randomized in ablation_results:
        print(f"{name:10s} {default:10d} {randomized:8d}")
    total_d = sum(r[1] for r in ablation_results)
    total_r = sum(r[2] for r in ablation_results)
    print(f"{'TOTAL':10s} {total_d:10d} {total_r:8d}")


def test_most_frequent_no_worse_overall(ablation_results):
    total_default = sum(r[1] for r in ablation_results)
    total_random = sum(r[2] for r in ablation_results)
    # The heuristic should not lose overall (small per-benchmark noise ok).
    assert total_default <= total_random * 1.05


def test_benchmark_default_split(benchmark):
    prepared = prepare_tels(build_benchmark("term1"))
    benchmark(
        lambda: synthesize(
            prepared, SynthesisOptions(psi=3, split_on_most_frequent=True)
        )
    )
