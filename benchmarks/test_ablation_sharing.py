"""Ablation — fanout-node (sharing) preservation on/off (DESIGN.md §6).

TELS stops collapsing at fanout nodes, so shared logic remains shared in the
threshold network (Section V-A: "the benefit is profound when the network
contains many fanout nodes").  Disabling preservation duplicates shared
cones into every reader.
"""

from __future__ import annotations

import pytest

from repro.benchgen.mcnc import benchmark_names, build_benchmark
from repro.core.area import network_stats
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.verify import verify_threshold_network
from repro.network.scripts import prepare_tels

NAMES = benchmark_names(include_large=False)


@pytest.fixture(scope="module")
def ablation_results():
    rows = []
    for name in NAMES:
        source = build_benchmark(name)
        prepared = prepare_tels(source)
        shared = synthesize(
            prepared, SynthesisOptions(psi=3, preserve_sharing=True)
        )
        duplicated = synthesize(
            prepared, SynthesisOptions(psi=3, preserve_sharing=False)
        )
        assert verify_threshold_network(source, shared, vectors=256)
        assert verify_threshold_network(source, duplicated, vectors=256)
        rows.append((name, network_stats(shared), network_stats(duplicated)))
    return rows


def test_print_ablation(ablation_results):
    print()
    print("Sharing preservation ablation — TELS gates (area)")
    print(f"{'benchmark':10s} {'preserved':>14s} {'duplicated':>14s}")
    for name, shared, duplicated in ablation_results:
        print(
            f"{name:10s} {shared.gates:6d} ({shared.area:5d}) "
            f"{duplicated.gates:6d} ({duplicated.area:5d})"
        )


def test_sharing_saves_gates_overall(ablation_results):
    total_shared = sum(r[1].gates for r in ablation_results)
    total_dup = sum(r[2].gates for r in ablation_results)
    assert total_shared <= total_dup


def test_benchmark_shared_synthesis(benchmark):
    prepared = prepare_tels(build_benchmark("term1"))
    benchmark(
        lambda: synthesize(
            prepared, SynthesisOptions(psi=3, preserve_sharing=True)
        )
    )
