"""Ablation — ILP formulation and backend (DESIGN.md §6).

Two studies:

1. **Redundant-constraint elimination** (the paper's Section V-B trick of
   skipping don't-care positions): constraint counts with and without it,
   taken from the checker's instrumentation.
2. **Backend**: pure-Python exact branch & bound vs scipy/HiGHS — identical
   feasibility answers, different speed.
"""

from __future__ import annotations

import random

import pytest

from repro.benchgen.mcnc import build_benchmark
from repro.boolean.cover import Cover
from repro.core.identify import ThresholdChecker
from repro.core.synthesis import SynthesisOptions, synthesize_with_report
from repro.ilp.scipy_backend import have_scipy
from repro.network.scripts import prepare_tels


@pytest.fixture(scope="module")
def constraint_stats():
    prepared = prepare_tels(build_benchmark("comp"))
    _, report = synthesize_with_report(prepared, SynthesisOptions(psi=3))
    return report.checker.stats


def test_print_constraint_elimination(constraint_stats):
    s = constraint_stats
    print()
    print("ILP constraint elimination (comp, psi=3)")
    print(f"  emitted constraints:      {s.constraints_emitted}")
    print(f"  without elimination:      {s.constraints_without_elimination}")
    print(f"  ILPs solved:              {s.ilp_solved}")
    print(f"  cache hits:               {s.cache_hits}")


def test_elimination_reduces_constraints(constraint_stats):
    s = constraint_stats
    assert s.constraints_emitted < s.constraints_without_elimination


def _random_unate_covers(count: int, seed: int = 0) -> list[Cover]:
    from repro.boolean.unate import syntactic_unateness

    rng = random.Random(seed)
    covers = []
    while len(covers) < count:
        n = rng.randint(2, 5)
        rows = [
            "".join(rng.choice("01-") for _ in range(n))
            for _ in range(rng.randint(1, 5))
        ]
        cover = Cover.from_strings(rows)
        if syntactic_unateness(cover).is_unate:
            covers.append(cover)
    return covers


def test_backends_agree_on_workload():
    covers = _random_unate_covers(150)
    exact = ThresholdChecker(backend="exact")
    auto = ThresholdChecker(backend="auto")
    for cover in covers:
        assert (exact.check(cover) is None) == (auto.check(cover) is None)


def test_benchmark_exact_backend(benchmark):
    covers = _random_unate_covers(40, seed=1)

    def run():
        checker = ThresholdChecker(backend="exact")
        for cover in covers:
            checker.check(cover)

    benchmark(run)


@pytest.mark.skipif(not have_scipy(), reason="scipy missing")
def test_benchmark_scipy_backend(benchmark):
    covers = _random_unate_covers(40, seed=1)

    def run():
        checker = ThresholdChecker(backend="scipy")
        for cover in covers:
            checker.check(cover)

    benchmark(run)


def test_benchmark_memoized_checks(benchmark):
    """Repeated identical checks: the cache path."""
    covers = _random_unate_covers(40, seed=1)
    checker = ThresholdChecker(backend="exact")
    for cover in covers:
        checker.check(cover)

    def run():
        for cover in covers:
            checker.check(cover)

    benchmark(run)
