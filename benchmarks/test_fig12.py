"""E4 — Fig. 12: failure rate and network area vs δ_on at v = 0.8.

The robustness/area tradeoff: raising the ON-side defect tolerance makes the
ILP leave a wider gap between true and false weighted sums, which costs RTD
area (Eq. 14) but cuts the failure rate.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig12 import format_fig12, run_fig12

DELTAS = (0, 1, 2, 3)


@pytest.fixture(scope="module")
def fig12_points(table1_names):
    names = [n for n in table1_names if n != "i10"]
    return run_fig12(names=names, delta_ons=DELTAS, v=0.8, trials=3, vectors=256)


def test_print_fig12(fig12_points):
    print()
    print(format_fig12(fig12_points))


def test_area_monotone_in_delta_on(fig12_points):
    areas = [p.total_area for p in fig12_points]
    assert areas == sorted(areas)


def test_failure_rate_decreases(fig12_points):
    first, last = fig12_points[0], fig12_points[-1]
    assert last.failure_rate_percent <= first.failure_rate_percent


def test_baseline_area_increase_zero(fig12_points):
    assert fig12_points[0].area_increase_percent == 0.0


def test_benchmark_robust_synthesis(benchmark):
    """Time TELS with a nonzero defect tolerance (bigger ILPs)."""
    from repro.benchgen.mcnc import build_benchmark
    from repro.core.synthesis import SynthesisOptions, synthesize
    from repro.network.scripts import prepare_tels

    prepared = prepare_tels(build_benchmark("cmb"))
    benchmark(
        lambda: synthesize(prepared, SynthesisOptions(psi=3, delta_on=3))
    )
