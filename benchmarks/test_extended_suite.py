"""Suite-wide sweep: the paper's "about 60 benchmarks" claim, scaled here
to 33 circuits (Table-I tier + extended tier, i10 excluded for runtime).

Asserts the aggregate story: TELS wins on the overwhelming majority of
circuits, never by accident (everything is verified), with the known
exceptions being wiring-dominated or parity-dominated fabrics.
"""

from __future__ import annotations

import pytest

from repro.benchgen.extended import all_benchmark_names
from repro.experiments.extended_suite import format_suite, run_suite

NAMES = [n for n in all_benchmark_names() if n != "i10"]


@pytest.fixture(scope="module")
def suite_summary():
    return run_suite(NAMES, psi=3)


def test_print_suite(suite_summary):
    print()
    print(format_suite(suite_summary))


def test_every_circuit_verified(suite_summary):
    assert all(row.verified for row in suite_summary.rows)
    assert len(suite_summary.rows) == len(NAMES)


def test_tels_wins_on_most_circuits(suite_summary):
    assert suite_summary.wins >= 0.7 * len(suite_summary.rows)


def test_mean_reduction_substantial(suite_summary):
    assert suite_summary.mean_reduction_percent > 25.0


def test_losses_are_minority(suite_summary):
    """The paper's Section VI-A observation: some Boolean functions need
    more threshold gates than Boolean gates — which is why the flow keeps
    the better of the two networks.  Losses must stay a small minority."""
    assert suite_summary.losses <= 0.2 * len(suite_summary.rows)


def test_delay_balance_claim(suite_summary):
    """The paper: "the synthesized networks are well-balanced, and hence
    delay-optimized" — TELS depth stays comparable to the one-to-one
    network's depth on average (it should not explode from splitting)."""
    assert (
        suite_summary.mean_tels_levels
        <= suite_summary.mean_one_to_one_levels * 1.25
    )


def test_benchmark_suite_member(benchmark):
    from repro.benchgen.extended import build_extended_benchmark
    from repro.core.synthesis import SynthesisOptions, synthesize
    from repro.network.scripts import prepare_tels

    prepared = prepare_tels(build_extended_benchmark("ttt2"))
    benchmark(lambda: synthesize(prepared, SynthesisOptions(psi=3)))
