"""Ablation — multi-level TELS vs the two-level (LSAT-style) comparator.

The paper's Section II positions TELS against 1960s-era two-level threshold
synthesis (it cites LSAT [11]).  This ablation makes the comparison
concrete: on shallow circuits the two-level flow is competitive (sometimes
minimal), while circuits with reconvergent depth either explode during
flattening or cost far more gates — the structural argument for multi-level
synthesis.
"""

from __future__ import annotations

import pytest

from repro.benchgen.extended import build_extended_benchmark
from repro.core.area import network_stats
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.core.twolevel import TwoLevelOptions, synthesize_two_level
from repro.core.verify import verify_threshold_network
from repro.errors import SynthesisError
from repro.network.scripts import prepare_tels

# Circuits shallow enough to flatten (two-level's home turf) plus deeper
# ones where flattening should fail or lose.
SHALLOW = ["majority", "cm138a", "decod", "z4ml", "cm152a"]
DEEP = ["cm85a", "cordic", "x2", "alu2"]


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for name in SHALLOW + DEEP:
        source = build_extended_benchmark(name)
        tels = synthesize(prepare_tels(source), SynthesisOptions(psi=8))
        assert verify_threshold_network(source, tels, vectors=256)
        try:
            two = synthesize_two_level(
                source, TwoLevelOptions(max_cubes=512)
            )
            assert verify_threshold_network(source, two, vectors=256)
            two_stats = network_stats(two)
        except SynthesisError:
            two_stats = None
        rows.append((name, network_stats(tels), two_stats))
    return rows


def test_print_comparison(comparison):
    print()
    print("TELS (psi=8) vs two-level LSAT-style synthesis")
    print(f"{'benchmark':10s} {'TELS g(l)':>12s} {'two-level g(l)':>16s}")
    for name, tels, two in comparison:
        two_text = f"{two.gates:6d} ({two.levels})" if two else "  flattening ∞"
        print(f"{name:10s} {tels.gates:7d} ({tels.levels:2d}) {two_text:>16s}")


def test_two_level_depth_bound(comparison):
    for name, _, two in comparison:
        if two is not None:
            assert two.levels <= 2, name


def test_two_level_feasible_on_shallow(comparison):
    by_name = {name: two for name, _, two in comparison}
    for name in SHALLOW:
        assert by_name[name] is not None, name


def test_multilevel_never_much_worse(comparison):
    """TELS gate count stays within a small factor of two-level even on
    two-level's best circuits (and wins where flattening explodes)."""
    for name, tels, two in comparison:
        if two is not None:
            assert tels.gates <= max(2 * two.gates, two.gates + 8), name


def test_benchmark_two_level(benchmark):
    source = build_extended_benchmark("cm152a")
    benchmark(
        lambda: synthesize_two_level(source, TwoLevelOptions(max_cubes=512))
    )
