"""E8 — Section VI-B: threshold-function counts among unate functions.

Reproduces the Muroga counts quoted in the paper: 5/5 (3 vars), 17/20
(4 vars), 92 threshold classes at 5 vars.  These numbers justify the
"fanin restriction of three to five" recommendation: the threshold fraction
collapses as fanin grows.
"""

from __future__ import annotations

import pytest

from repro.experiments.enumeration import (
    MEASURED_COUNTS,
    count_positive_unate_threshold,
    monotone_functions,
)


@pytest.fixture(scope="module")
def counts():
    return {n: count_positive_unate_threshold(n) for n in (1, 2, 3, 4)}


def test_print_counts(counts):
    print()
    print("Section VI-B — positive-unate vs threshold classes (full support)")
    for n, result in counts.items():
        print(
            f"  {n} vars: {result.threshold_classes}/"
            f"{result.positive_unate_classes} threshold"
        )


def test_counts_match_paper(counts):
    for n, result in counts.items():
        assert (
            result.positive_unate_classes,
            result.threshold_classes,
        ) == MEASURED_COUNTS[n]


def test_threshold_fraction_decreases(counts):
    fractions = [counts[n].fraction_threshold for n in (3, 4)]
    assert fractions[0] == 1.0
    assert fractions[1] < 1.0


def test_benchmark_enumeration_4vars(benchmark):
    benchmark(lambda: count_positive_unate_threshold(4))


def test_benchmark_dedekind_5(benchmark):
    monotone_functions.cache_clear()
    benchmark(lambda: len(monotone_functions(5)))
