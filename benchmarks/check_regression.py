"""Bench-regression gate: compare a fresh bench run against the baseline.

CI regenerates ``BENCH_synth.json`` on the PR's code and compares its
``large_corpus`` section against the checked-in baseline artifact.  Wall
times on shared CI runners are noisy, so latency comparisons use a
multiplicative tolerance; structural counters (circuits, cones, ILP
traffic, refutations) must not shrink at all — a drop there means the
corpus or the checker wiring changed, not the machine.

Run as a module::

    python -m benchmarks.check_regression --baseline BENCH_synth.json \
        --current /tmp/bench.json [--tolerance 3.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default multiplicative headroom for p50/p95 latency comparisons.  CI
#: runners vary widely; the gate exists to catch order-of-magnitude
#: regressions (a packed kernel silently falling back to a Python loop),
#: not single-digit-percent drift.
DEFAULT_TOLERANCE = 3.0

#: Counters that must not shrink relative to the baseline.
MONOTONE_KEYS = ("circuits", "cones", "ilp_solves", "fastpath_negatives")

#: Latency percentiles compared under the tolerance.
LATENCY_KEYS = ("cone_wall_ms_p50", "cone_wall_ms_p95")


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    base = baseline.get("large_corpus")
    cur = current.get("large_corpus")
    if base is None:
        # No corpus section in the baseline yet: nothing to regress against.
        return failures
    if cur is None:
        return ["current bench has no large_corpus section"]
    for key in MONOTONE_KEYS:
        if cur.get(key, 0) < base.get(key, 0):
            failures.append(
                f"large_corpus.{key} shrank: "
                f"{base.get(key)} -> {cur.get(key)}"
            )
    for key in LATENCY_KEYS:
        base_ms = float(base.get(key, 0.0))
        cur_ms = float(cur.get(key, 0.0))
        if base_ms > 0.0 and cur_ms > base_ms * tolerance:
            failures.append(
                f"large_corpus.{key} regressed beyond {tolerance}x: "
                f"{base_ms}ms -> {cur_ms}ms"
            )
    micro_base = baseline.get("substrate_microbench")
    micro_cur = current.get("substrate_microbench")
    if micro_base is not None:
        if micro_cur is None:
            failures.append("current bench has no substrate_microbench section")
        else:
            for key in ("cover_eval_speedup", "simulate_speedup"):
                if float(micro_cur.get(key, 0.0)) < 3.0:
                    failures.append(
                        f"substrate_microbench.{key} fell below 3x: "
                        f"{micro_cur.get(key)}"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_synth.json")
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    failures = compare(baseline, current, args.tolerance)
    for message in failures:
        print(f"FAIL: {message}")
    if failures:
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
