"""Shared configuration for the benchmark harness.

Each ``benchmarks/test_*.py`` module regenerates one table or figure of the
paper (or an ablation from DESIGN.md §6) and prints it, so
``pytest benchmarks/ --benchmark-only`` both times the pipelines and emits
the paper-vs-measured artifacts.  Set ``TELS_BENCH_FULL=1`` to include the
i10 benchmark in Table I (adds ~half a minute).
"""

from __future__ import annotations

import os

import pytest

from repro.benchgen.mcnc import benchmark_names


def selected_benchmarks() -> list[str]:
    """Benchmark list for the Table-I style runs."""
    include_large = os.environ.get("TELS_BENCH_FULL", "") == "1"
    return benchmark_names(include_large=include_large)


@pytest.fixture(scope="session")
def table1_names() -> list[str]:
    return selected_benchmarks()
