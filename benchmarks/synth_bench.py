"""Bench smoke for CI: time the engine on a Table-I subset.

Writes ``BENCH_synth.json`` with per-benchmark wall time, gate count, and
the store cache-hit rates for both a cold run and a warm re-run against the
same shared store — the number CI tracks to catch regressions in the
shared-result-store reuse.  Two further phases cover the axes the cold/warm
pair cannot: a delta phase re-synthesizes the subset at a bumped
``delta_on`` over the same store (only the analysis tier can answer, so its
hit rate proves the delta-independent checker split still works), and a
gate-model phase runs the ``parmix`` stressor once per ``repro.gates``
backend and asserts the model-specific outcomes (ILP traffic and fast-path
refutations under ``ltg``; strictly fewer gates under ``multi-threshold``).

With ``--corpus large`` (the default for the checked-in artifact) two more
sections are emitted: ``large_corpus`` synthesizes the dozens-of-circuits
corpus from :mod:`repro.benchgen.mcnc` — thousands of cones, including
stressors the Chow fast path must hand to the ILP or refute — and records
per-cone p50/p95 latency; ``substrate_microbench`` times the packed BitVec
kernels against reference per-point Python loops (cover evaluation and
network simulation) and records the speedups the substrate must sustain.

Run as a module::

    python -m benchmarks.synth_bench [-o BENCH_synth.json] [--jobs N]
        [--corpus small|large]

(or ``python benchmarks/synth_bench.py`` with ``src`` on ``PYTHONPATH``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: Small, fast Table-I subset — CI smoke, not the full suite.
DEFAULT_BENCHMARKS = ("cm152a", "cm85a", "cmb", "comp")


def run_bench(
    names: tuple[str, ...] = DEFAULT_BENCHMARKS,
    psi: int = 3,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict:
    from repro.benchgen.extended import build_extended_benchmark
    from repro.core.area import network_stats
    from repro.core.synthesis import SynthesisOptions, synthesize_with_report
    from repro.core.verify import verify_threshold_network
    from repro.engine.store import ResultStore
    from repro.network.scripts import prepare_tels

    from repro.core.identify import CheckStats

    store = ResultStore()
    options = SynthesisOptions(psi=psi, seed=seed)
    rows = []
    totals = CheckStats()
    degraded_cones = 0
    for name in names:
        source = build_extended_benchmark(name)
        prepared = prepare_tels(source)
        start = time.perf_counter()
        network, report = synthesize_with_report(
            prepared, options, jobs=jobs, store=store
        )
        wall = time.perf_counter() - start
        if not verify_threshold_network(source, network, vectors=256):
            raise SystemExit(f"bench verification failed on {name!r}")
        stats = network_stats(network)
        check = report.checker.stats
        rows.append(
            {
                "benchmark": name,
                "gates": stats.gates,
                "levels": stats.levels,
                "area": stats.area,
                "wall_s": round(wall, 4),
                "checker_calls": check.calls,
                "checker_cache_hit_rate": round(check.cache_hit_rate, 4),
                "ilp_solves": check.ilp_solved,
                "fastpath_hit_rate": round(check.fastpath_hit_rate, 4),
                "exact_solve_wall_s": round(check.exact_wall_s, 4),
                "scipy_solve_wall_s": round(check.scipy_wall_s, 4),
            }
        )
        totals.add(check)
        degraded_cones += report.degraded_cones

    # Warm re-run over the same store: near-total reuse is the invariant.
    # Preparation stays outside the clock so warm_wall_s is comparable to
    # the per-benchmark wall_s (which also times synthesis only).
    warm_nets = [prepare_tels(build_extended_benchmark(n)) for n in names]
    warm_before = store.stats.snapshot()
    start = time.perf_counter()
    for prepared in warm_nets:
        synthesize_with_report(prepared, options, jobs=jobs, store=store)
    warm_wall = time.perf_counter() - start
    warm = store.stats.since(warm_before)

    # Delta phase: re-synthesize the same subset with a bumped ``delta_on``
    # over the *same* store.  The tolerances change every ILP answer, so the
    # vector tier cannot help — but the delta-independent analysis half of
    # each check (cover minimization, unate rewrite, complement) is reused
    # from the analysis tier.  This is the traffic the always-zero per-row
    # analysis column used to pretend to measure: analysis hits only appear
    # when the *same* store answers checks under *different* tolerances.
    delta_options = SynthesisOptions(psi=psi, seed=seed, delta_on=1)
    delta_before = store.stats.snapshot()
    start = time.perf_counter()
    for prepared in warm_nets:
        synthesize_with_report(prepared, delta_options, jobs=jobs, store=store)
    delta_wall = time.perf_counter() - start
    delta = store.stats.since(delta_before)

    # Persistent-cache phases (when a cache directory is given): each phase
    # starts from a *fresh* in-memory store so every first-touch lookup has
    # to go through the on-disk tier.  The cold phase populates (or, on a
    # repeated bench invocation in the same workdir, reuses) the cache; the
    # warm phase must then answer every lookup from disk.
    persistent: dict = {}
    if cache_dir is not None:

        def _persistent_phase() -> tuple[float, "ResultStore"]:
            pstore = ResultStore.with_cache_dir(cache_dir)
            start = time.perf_counter()
            for prepared in warm_nets:
                synthesize_with_report(
                    prepared, options, jobs=jobs, store=pstore
                )
            return time.perf_counter() - start, pstore

        cold_wall_p, cold_store = _persistent_phase()
        warm_wall_p, warm_store = _persistent_phase()
        persistent = {
            "cache_dir": str(cache_dir),
            "persistent_cold_wall_s": round(cold_wall_p, 4),
            "persistent_warm_wall_s": round(warm_wall_p, 4),
            "persistent_cold_hits": cold_store.stats.persistent_hits,
            "persistent_cold_hit_rate": round(
                cold_store.stats.persistent_hit_rate, 4
            ),
            "persistent_warm_hits": warm_store.stats.persistent_hits,
            "persistent_warm_hit_rate": round(
                warm_store.stats.persistent_hit_rate, 4
            ),
            "persistent_transformed_hits": warm_store.stats.transformed_hits,
            "persistent_entries": len(warm_store.persistent),
        }

    # Gate-model phase: the parmix stressor (parity + wide-threshold +
    # non-threshold cones) synthesized once per registered backend at a
    # fanin bound that admits the 9-support cone whole.  Each model gets a
    # fresh store (the comparison measures the models, not cache reuse) and
    # sharing preservation is off so the parity cone collapses to primary
    # inputs, where the multi-threshold search can absorb it into a single
    # k-threshold gate.  The tracked invariants: under ``ltg`` the subset
    # exercises the ILP (9 support vars defeat the Chow fast path) and the
    # two-monotonicity refutation; under ``multi-threshold`` the same
    # circuit needs strictly fewer gates than under ``ltg``.
    from repro.gates import model_names

    gate_models: dict = {}
    gm_source = build_extended_benchmark("parmix")
    gm_prepared = prepare_tels(build_extended_benchmark("parmix"))
    for model in model_names():
        gm_options = SynthesisOptions(
            psi=9, seed=seed, gate_model=model, preserve_sharing=False
        )
        start = time.perf_counter()
        gm_net, gm_report = synthesize_with_report(
            gm_prepared, gm_options, jobs=jobs, store=ResultStore()
        )
        gm_wall = time.perf_counter() - start
        if not verify_threshold_network(gm_source, gm_net, vectors=256):
            raise SystemExit(
                f"gate-model bench verification failed under {model!r}"
            )
        gm_stats = network_stats(gm_net)
        gm_check = gm_report.checker.stats
        gate_models[model] = {
            "benchmark": "parmix",
            "gates": gm_stats.gates,
            "levels": gm_stats.levels,
            "area": gm_stats.area,
            "wall_s": round(gm_wall, 4),
            "ilp_solves": gm_check.ilp_solved,
            "fastpath_negatives": gm_check.fastpath_negatives,
            "multithreshold_hits": gm_check.multithreshold_hits,
            "flash_requantized": gm_check.flash_requantized,
        }
        degraded_cones += gm_report.degraded_cones

    # Lint smoke phase: the full rule set re-linted over every synthesized
    # network.  Every violation here is a synthesis bug, so the tracked
    # invariant is a flat zero; the wall time watches for rule-cost creep.
    from repro.lint.diagnostics import LintOptions
    from repro.lint.runner import run_lint

    lint_violations = 0
    start = time.perf_counter()
    for name in names:
        source = build_extended_benchmark(name)
        network, _ = synthesize_with_report(
            prepare_tels(source), options, jobs=jobs, store=store
        )
        lint_report = run_lint(network, LintOptions(psi=psi), source=source)
        lint_violations += lint_report.violations
    lint_wall = time.perf_counter() - start

    analysis = run_analysis_phase(names, psi=psi, seed=seed, jobs=jobs)
    distributed = run_distributed_phase(names, psi=psi, seed=seed)

    return {
        "analysis": analysis,
        "distributed": distributed,
        "psi": psi,
        "seed": seed,
        "jobs": jobs,
        **persistent,
        "lint_wall_s": round(lint_wall, 4),
        "lint_violations": lint_violations,
        "degraded_cones": degraded_cones,
        "benchmarks": rows,
        "cold_wall_s": round(sum(r["wall_s"] for r in rows), 4),
        "warm_wall_s": round(warm_wall, 4),
        "warm_vector_hit_rate": round(warm.vector_hit_rate, 4),
        "warm_analysis_hit_rate": round(warm.analysis_hit_rate, 4),
        "delta_wall_s": round(delta_wall, 4),
        "delta_analysis_hits": delta.analysis_hits,
        "delta_analysis_hit_rate": round(delta.analysis_hit_rate, 4),
        "gate_models": gate_models,
        "store_entries": len(store),
        "ilp_solves_total": totals.ilp_solved,
        "fastpath_hit_rate": round(totals.fastpath_hit_rate, 4),
        "fastpath_hits": totals.fastpath_hits,
        "fastpath_negatives": totals.fastpath_negatives,
        "fastpath_misses": totals.fastpath_misses,
        "exact_solves": totals.exact_solves,
        "scipy_solves": totals.scipy_solves,
        "exact_solve_wall_s": round(totals.exact_wall_s, 4),
        "scipy_solve_wall_s": round(totals.scipy_wall_s, 4),
        "presolve_rows_removed": totals.presolve_rows_removed,
    }


def _analysis_stressor():
    """Hand-built network with known-redundant structure for the analyzer.

    ``g1 = <2,1;2>(a, b)`` fires iff ``a`` does (the weight-1 fanin ``b``
    can never bridge the threshold gap alone), so ``b`` is a redundant
    fanin; ``g2 = <1,1;0>(a, c)`` is satisfied by the empty assignment and
    therefore a constant-1 gate.  Both must be found, verified by packed
    equivalence, and removable without changing the network's function.
    """
    from repro.core.threshold import (
        ThresholdGate,
        ThresholdNetwork,
        WeightThresholdVector,
    )

    net = ThresholdNetwork("analysis_stressor")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_gate(
        ThresholdGate("g1", ("a", "b"), WeightThresholdVector((2, 1), 2))
    )
    net.add_gate(
        ThresholdGate("g2", ("a", "c"), WeightThresholdVector((1, 1), 0))
    )
    net.add_output("g1")
    net.add_output("g2")
    return net


def run_analysis_phase(
    names: tuple[str, ...],
    psi: int = 3,
    seed: int = 0,
    jobs: int = 1,
) -> dict:
    """Dataflow-analysis phase: certificates per gate model + a stressor.

    Two invariants feed the FAIL gates in :func:`main`:

    * the hand-built stressor must yield at least one *verified* removal
      (a redundant fanin and a constant gate are planted), and applying
      the removals must leave the network packed-equivalent to the
      original — a failed re-verification would be a false positive;
    * across every analyzed network the unverified-candidate count must
      be zero: each suggestion the analyzer reports on synthesized output
      has to survive its own equivalence check.

    The gate-model sub-section re-synthesizes the ``parmix`` stressor once
    per registered backend (same configuration as the gate-model phase)
    and records the robustness-certificate margin statistics — ``ltg``
    margins are structural, ``flash`` margins absorb the drift floor, and
    ``multi-threshold`` gates are skipped from enumeration-based
    certification only when their fanin exceeds the enumeration bound.
    """
    from repro.analysis import (
        AnalysisOptions,
        analyze_threshold_network,
        apply_removals,
    )
    from repro.benchgen.extended import build_extended_benchmark
    from repro.core.synthesis import SynthesisOptions, synthesize_with_report
    from repro.engine.store import ResultStore
    from repro.gates import model_names
    from repro.network.scripts import prepare_tels
    from repro.network.simulate import equivalent_threshold_networks

    def _bound(value: float) -> float | None:
        return None if value == float("inf") else round(value, 4)

    verified_total = 0
    unverified_total = 0

    # Stressor: planted redundancies the analyzer must find and verify.
    stressor = _analysis_stressor()
    start = time.perf_counter()
    s_result = analyze_threshold_network(stressor, AnalysisOptions(seed=seed))
    s_wall = time.perf_counter() - start
    rewritten, applied = apply_removals(
        stressor, s_result.verified_findings, seed=seed
    )
    equivalent = equivalent_threshold_networks(stressor, rewritten, seed=seed)
    verified_total += len(s_result.verified_findings)
    unverified_total += len(s_result.unverified_findings)
    stressor_row = {
        "findings": len(s_result.findings),
        "verified_findings": len(s_result.verified_findings),
        "unverified_findings": len(s_result.unverified_findings),
        "applied": len(applied),
        "gates_before": sum(1 for _ in stressor.gates()),
        "gates_after": sum(1 for _ in rewritten.gates()),
        "equivalent_after_apply": equivalent,
        "wall_s": round(s_wall, 4),
    }

    # Certificate margins for every registered gate model on parmix.
    gate_models: dict = {}
    gm_prepared = prepare_tels(build_extended_benchmark("parmix"))
    for model in model_names():
        gm_options = SynthesisOptions(
            psi=9, seed=seed, gate_model=model, preserve_sharing=False
        )
        gm_net, _ = synthesize_with_report(
            gm_prepared, gm_options, jobs=jobs, store=ResultStore()
        )
        start = time.perf_counter()
        result = analyze_threshold_network(
            gm_net, AnalysisOptions(gate_model=model, seed=seed)
        )
        wall = time.perf_counter() - start
        cert = result.certificate
        verified_total += len(result.verified_findings)
        unverified_total += len(result.unverified_findings)
        gate_models[model] = {
            "benchmark": "parmix",
            "gates": sum(1 for _ in gm_net.gates()),
            "certified_gates": len(cert.gates),
            "skipped_gates": len(cert.skipped),
            "min_slack": cert.min_slack,
            "perturbation_bound": _bound(cert.perturbation_bound),
            "meets_tolerances": cert.meets_tolerances,
            "constant_gates": len(result.interval.constant_gates),
            "verified_findings": len(result.verified_findings),
            "unverified_findings": len(result.unverified_findings),
            "wall_s": round(wall, 4),
        }

    # Subset sweep: the analyzer over every synthesized smoke benchmark.
    # Synthesized output should carry no unverified suggestions at all.
    subset_rows = []
    options = SynthesisOptions(psi=psi, seed=seed)
    store = ResultStore()
    for name in names:
        prepared = prepare_tels(build_extended_benchmark(name))
        network, _ = synthesize_with_report(
            prepared, options, jobs=jobs, store=store
        )
        result = analyze_threshold_network(
            network, AnalysisOptions(seed=seed)
        )
        cert = result.certificate
        verified_total += len(result.verified_findings)
        unverified_total += len(result.unverified_findings)
        subset_rows.append(
            {
                "benchmark": name,
                "gates": sum(1 for _ in network.gates()),
                "min_slack": cert.min_slack,
                "perturbation_bound": _bound(cert.perturbation_bound),
                "verified_findings": len(result.verified_findings),
                "unverified_findings": len(result.unverified_findings),
            }
        )

    return {
        "stressor": stressor_row,
        "gate_models": gate_models,
        "benchmarks": subset_rows,
        "verified_removals": verified_total,
        "unverified_findings": unverified_total,
    }


def run_distributed_phase(
    names: tuple[str, ...],
    psi: int = 3,
    seed: int = 0,
    workers: int = 2,
) -> dict:
    """Distributed phase: the subset farmed to in-process remote workers.

    Boots an in-process daemon (:class:`repro.serve.app.ServeApp`) plus
    ``workers`` worker threads and re-synthesizes every benchmark with
    ``distribute=<url>``, against a serial baseline of the same subset.
    The tracked invariant is byte-identity: distribution may only change
    *where* a cone runs, never what the assembled network looks like —
    the ``identical`` flag feeds a FAIL gate in :func:`main`.  Alongside
    wall times the phase records the resilience counters (expired leases,
    re-enqueued cones, cones that fell back to the local executor) and the
    daemon's network-cache traffic, so regressions in the distributed
    path's sharing or retry behaviour show up in the artifact.
    """
    from repro.benchgen.extended import build_extended_benchmark
    from repro.core.synthesis import SynthesisOptions
    from repro.engine.scheduler import run_synthesis
    from repro.io.thblif import to_thblif
    from repro.network.scripts import prepare_tels
    from repro.serve.app import ServeApp
    from repro.serve.worker import start_worker_thread

    options = SynthesisOptions(psi=psi, seed=seed)
    prepared = [prepare_tels(build_extended_benchmark(n)) for n in names]

    serial_texts = []
    start = time.perf_counter()
    for network in prepared:
        serial_texts.append(to_thblif(run_synthesis(network, options).network))
    serial_wall = time.perf_counter() - start

    app = ServeApp(port=0)
    app.start_background()
    handles = [
        start_worker_thread(app.url, worker_id=f"bench-w{i}")
        for i in range(workers)
    ]
    identical = True
    workers_seen = 0
    lease_expirations = requeues = fallback_tasks = 0
    try:
        start = time.perf_counter()
        for network, expected in zip(prepared, serial_texts):
            outcome = run_synthesis(network, options, distribute=app.url)
            identical &= to_thblif(outcome.network) == expected
            trace = outcome.trace
            workers_seen = max(workers_seen, trace.remote_workers)
            lease_expirations += trace.lease_expirations
            requeues += trace.requeues
            fallback_tasks += trace.remote_fallback_tasks
        distributed_wall = time.perf_counter() - start
        network_cache = dict(app.manager.stats()["network_cache"])
        duplicate_results = app.manager.broker.duplicate_results
    finally:
        for _thread, stop in handles:
            stop.set()
        for thread, _stop in handles:
            thread.join(timeout=5.0)
        app.shutdown()

    return {
        "workers": workers,
        "workers_seen": workers_seen,
        "serial_wall_s": round(serial_wall, 4),
        "distributed_wall_s": round(distributed_wall, 4),
        "speedup": round(serial_wall / max(distributed_wall, 1e-9), 4),
        "identical": identical,
        "lease_expirations": lease_expirations,
        "requeues": requeues,
        "fallback_tasks": fallback_tasks,
        "duplicate_results": duplicate_results,
        "network_cache": network_cache,
    }


def _percentile_ms(sorted_walls: list[float], q: float) -> float:
    """Nearest-rank percentile of a sorted wall-time list, in ms."""
    if not sorted_walls:
        return 0.0
    rank = min(len(sorted_walls) - 1, int(q * (len(sorted_walls) - 1) + 0.5))
    return round(sorted_walls[rank] * 1000.0, 4)


def run_large_corpus(
    psi: int = 3,
    seed: int = 0,
    jobs: int = 1,
    limit: int | None = None,
) -> dict:
    """Synthesize the large corpus and distill per-cone latency stats.

    Bulk circuits run at the default ``psi``; the stressor circuits run at
    ``CORPUS_STRESSOR_PSI`` with sharing preservation off so their
    9-support cone reaches the checker whole (forcing ILP traffic) and
    their non-threshold cone exercises the 2-monotonicity refutation.
    """
    from repro.benchgen.mcnc import (
        CORPUS_STRESSOR_PSI,
        build_corpus_circuit,
        corpus_names,
        is_corpus_stressor,
    )
    from repro.core.identify import CheckStats
    from repro.core.synthesis import SynthesisOptions, synthesize_with_report
    from repro.core.verify import verify_threshold_network
    from repro.engine.store import ResultStore
    from repro.network.scripts import prepare_tels

    names = corpus_names()
    if limit is not None:
        # Keep the stressors: they carry the ILP/refutation invariants.
        bulk = [n for n in names if not is_corpus_stressor(n)][:limit]
        names = bulk + [n for n in names if is_corpus_stressor(n)]
    store = ResultStore()
    totals = CheckStats()
    cone_walls: list[float] = []
    circuits = 0
    cones = 0
    gates = 0
    area = 0
    start = time.perf_counter()
    for name in names:
        source = build_corpus_circuit(name)
        prepared = prepare_tels(source)
        if is_corpus_stressor(name):
            options = SynthesisOptions(
                psi=CORPUS_STRESSOR_PSI, seed=seed, preserve_sharing=False
            )
        else:
            options = SynthesisOptions(psi=psi, seed=seed)
        network, report = synthesize_with_report(
            prepared, options, jobs=jobs, store=store
        )
        if not verify_threshold_network(source, network, vectors=128):
            raise SystemExit(f"corpus verification failed on {name!r}")
        circuits += 1
        from repro.core.area import network_stats

        stats = network_stats(network)
        gates += stats.gates
        area += stats.area
        totals.add(report.checker.stats)
        if report.trace is not None:
            cones += len(report.trace.tasks)
            cone_walls.extend(m.wall_s for m in report.trace.tasks)
    wall = time.perf_counter() - start
    cone_walls.sort()
    return {
        "circuits": circuits,
        "cones": cones,
        "gates": gates,
        "area": area,
        "wall_s": round(wall, 4),
        "ilp_solves": totals.ilp_solved,
        "fastpath_hits": totals.fastpath_hits,
        "fastpath_negatives": totals.fastpath_negatives,
        "fastpath_hit_rate": round(totals.fastpath_hit_rate, 4),
        "checker_calls": totals.calls,
        "cone_wall_ms_p50": _percentile_ms(cone_walls, 0.50),
        "cone_wall_ms_p95": _percentile_ms(cone_walls, 0.95),
    }


def run_substrate_microbench(repeats: int = 3) -> dict:
    """Packed-kernel speedups over reference per-point Python loops.

    Two microbenchmarks, each run ``repeats`` times keeping the best wall
    per side:

    * **cover evaluation** — full truth tables of a batch of random
      12-variable covers, per-cube/per-point loop vs ``bitset.key_table``;
    * **network simulation** — 4096-vector sweep of a random logic
      network, per-point ``BooleanNetwork.evaluate`` vs the packed
      ``simulate_vectors``.
    """
    import random as _random

    from repro.boolean import bitset
    from repro.boolean.cover import Cover
    from repro.boolean.cube import Cube
    from repro.benchgen.random_logic import random_logic_network
    from repro.network.simulate import random_pi_vectors, simulate_vectors

    rng = _random.Random(1234)
    nvars = 12
    covers = []
    for _ in range(24):
        cubes = []
        for _ in range(16):
            pos = 0
            neg = 0
            for var in rng.sample(range(nvars), rng.randint(2, 5)):
                if rng.random() < 0.5:
                    pos |= 1 << var
                else:
                    neg |= 1 << var
            cubes.append(Cube(pos, neg, nvars))
        covers.append(Cover(cubes, nvars))

    def legacy_tables() -> list[list[int]]:
        out = []
        for cover in covers:
            out.append(
                [
                    int(any(c.evaluate(p) for c in cover.cubes))
                    for p in range(1 << nvars)
                ]
            )
        return out

    def packed_tables() -> list[list[int]]:
        return [
            bitset.key_table(
                (nvars, tuple((c.pos, c.neg) for c in cover.cubes))
            ).to_bits()
            for cover in covers
        ]

    def best_wall(fn) -> float:
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            t1 = time.perf_counter()
            if best is None or t1 - t0 < best:
                best = t1 - t0
        return best

    if legacy_tables() != packed_tables():
        raise SystemExit("substrate microbench: packed tables disagree")
    eval_legacy = best_wall(legacy_tables)
    eval_packed = best_wall(packed_tables)

    network = random_logic_network(
        "microbench",
        num_inputs=16,
        num_outputs=8,
        num_nodes=48,
        seed=77,
        max_fanin=3,
        max_cubes=3,
        locality=12,
    )
    width = 4096
    vecs = random_pi_vectors(network, width, _random.Random(5))

    def legacy_sim() -> list[int]:
        sigs = []
        for k in range(width):
            assignment = {
                name: vecs[name].test(k) for name in network.inputs
            }
            out = network.evaluate(assignment)
            sigs.append(sum(1 for o in network.outputs if out[o]))
        return sigs

    def packed_sim() -> list[int]:
        sim = simulate_vectors(network, vecs, width)
        counts = [0] * width
        for o in network.outputs:
            for k, bit in enumerate(sim[o].to_bits()):
                counts[k] += bit
        return counts

    if legacy_sim() != packed_sim():
        raise SystemExit("substrate microbench: simulations disagree")
    sim_legacy = best_wall(legacy_sim)
    sim_packed = best_wall(packed_sim)

    return {
        "backend": bitset.active_backend(),
        "cover_eval_legacy_s": round(eval_legacy, 4),
        "cover_eval_packed_s": round(eval_packed, 4),
        "cover_eval_speedup": round(eval_legacy / max(eval_packed, 1e-9), 1),
        "simulate_legacy_s": round(sim_legacy, 4),
        "simulate_packed_s": round(sim_packed, 4),
        "simulate_speedup": round(sim_legacy / max(sim_packed, 1e-9), 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_synth.json")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--benchmarks", nargs="*", default=list(DEFAULT_BENCHMARKS)
    )
    parser.add_argument(
        "--cache",
        default=".tels-cache",
        help="persistent cache directory for the cold/warm phases",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent-cache phases",
    )
    parser.add_argument(
        "--corpus",
        choices=("small", "large"),
        default="large",
        help="'large' adds the large-corpus and substrate-microbench "
        "sections; 'small' keeps the historical smoke phases only",
    )
    parser.add_argument(
        "--corpus-limit",
        type=int,
        default=None,
        help="cap the number of bulk corpus circuits (stressors always run)",
    )
    args = parser.parse_args(argv)
    cache_dir = None if args.no_cache else args.cache
    result = run_bench(
        tuple(args.benchmarks), jobs=args.jobs, cache_dir=cache_dir
    )
    if args.corpus == "large":
        result["large_corpus"] = run_large_corpus(
            jobs=args.jobs, limit=args.corpus_limit
        )
        result["substrate_microbench"] = run_substrate_microbench()
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    # A vector-tier hit short-circuits the whole check, so the warm run's
    # analysis tier sees no traffic at all; the reuse invariant is that the
    # vector tier answers every warm lookup.
    if result["warm_vector_hit_rate"] < 1.0:
        print("FAIL: warm re-run did not fully reuse the result store")
        return 1
    # The persistent warm phase starts from an empty in-memory store, so
    # every first-touch lookup must be answered by the on-disk tier.
    if cache_dir is not None and result["persistent_warm_hit_rate"] < 1.0:
        print("FAIL: persistent warm phase missed the on-disk cache")
        return 1
    # The tolerance bump invalidates every vector-tier entry, so reuse in
    # the delta phase can only come from the analysis tier; zero hits there
    # means the delta-independent split of the checker regressed.
    if result["delta_analysis_hit_rate"] <= 0.0:
        print("FAIL: delta re-synthesis reused nothing from the analysis tier")
        return 1
    # The gate-model stressor must hit the paths it was built to hit:
    # a 9-support cone the fast path cannot decide (ILP traffic) and a
    # unate non-threshold cone the two-monotonicity screen refutes.
    gm = result["gate_models"]
    if gm["ltg"]["ilp_solves"] <= 0:
        print("FAIL: gate-model phase never reached the ILP under ltg")
        return 1
    if gm["ltg"]["fastpath_negatives"] <= 0:
        print("FAIL: gate-model phase never refuted a cone under ltg")
        return 1
    # The point of the multi-threshold backend: the parity cone collapses
    # into a single k-threshold gate, so parmix must come out strictly
    # smaller than the single-threshold result.
    if gm["multi-threshold"]["gates"] >= gm["ltg"]["gates"]:
        print("FAIL: multi-threshold did not beat ltg on parmix")
        return 1
    # The analysis stressor plants a redundant fanin and a constant gate;
    # the analyzer must find them, verify them by packed equivalence, and
    # the applied rewrite must stay equivalent to the original network.
    analysis = result["analysis"]
    if analysis["verified_removals"] < 1:
        print("FAIL: analysis phase found no verified removal candidates")
        return 1
    if analysis["stressor"]["verified_findings"] < 2:
        print("FAIL: analysis stressor missed a planted redundancy")
        return 1
    if not analysis["stressor"]["equivalent_after_apply"]:
        print("FAIL: applying analysis removals changed the stressor")
        return 1
    # An unverified suggestion on synthesized output is a false positive:
    # every candidate the analyzer reports must survive its own packed
    # equivalence check.
    if analysis["unverified_findings"] != 0:
        print("FAIL: analysis phase reported unverified removal candidates")
        return 1
    # Certificate margin stats must cover every registered gate model.
    for model in ("ltg", "multi-threshold", "flash"):
        if model not in analysis["gate_models"]:
            print(f"FAIL: analysis phase missing gate model {model!r}")
            return 1
    # Every synthesized network must come out of the engine lint-clean.
    if result["lint_violations"] != 0:
        print("FAIL: lint smoke phase found violations in synthesized output")
        return 1
    # Without fault injection the resilience layer must stay invisible:
    # a degraded cone here means a deadline/retry bug, not a real fault.
    if result["degraded_cones"] != 0:
        print("FAIL: cones degraded without fault injection")
        return 1
    # Distribution may change where a cone runs, never the output: the
    # remote run must assemble byte-identical networks, on real workers
    # (a silent fallback to the local executor would mask a broken
    # distributed path while keeping the bytes right).
    distributed = result["distributed"]
    if not distributed["identical"]:
        print("FAIL: distributed phase diverged from the serial baseline")
        return 1
    if distributed["workers_seen"] < 1:
        print("FAIL: distributed phase never saw a live worker")
        return 1
    if distributed["fallback_tasks"] != 0:
        print("FAIL: distributed phase fell back to the local executor")
        return 1
    if args.corpus == "large":
        corpus = result["large_corpus"]
        # The corpus stressors exist to force real ILP traffic and real
        # fast-path refutations at scale; zeros mean the stressor cones
        # were split before reaching the checker whole.
        if corpus["ilp_solves"] <= 0:
            print("FAIL: large corpus never reached the ILP")
            return 1
        if corpus["fastpath_negatives"] <= 0:
            print("FAIL: large corpus never refuted a cone combinatorially")
            return 1
        if corpus["cones"] < 1000:
            print("FAIL: large corpus shrank below a thousand cones")
            return 1
        # The substrate's reason to exist: packed kernels must stay well
        # clear of the per-point Python loops they replaced.
        micro = result["substrate_microbench"]
        if micro["cover_eval_speedup"] < 3.0:
            print("FAIL: packed cover evaluation lost its >=3x speedup")
            return 1
        if micro["simulate_speedup"] < 3.0:
            print("FAIL: packed simulation lost its >=3x speedup")
            return 1
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
